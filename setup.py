"""Setup shim for offline environments without the ``wheel`` package.

``pip install -e .`` needs PEP 660 editable-wheel support, which requires
``wheel``; this shim lets ``pip install -e . --no-use-pep517`` (or plain
``pip install -e .`` with older pip) fall back to the legacy develop path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
