"""Tests for the bus/DRAM and hash-engine timing models."""

import pytest

from repro.common import BusConfig, HashEngineConfig
from repro.common.config import DramConfig
from repro.dram import MainMemoryTiming
from repro.hashengine import HashEngineTiming


def make_memory():
    return MainMemoryTiming(BusConfig(), DramConfig())


class TestMainMemoryTiming:
    def test_read_latency_includes_dram_and_transfer(self):
        memory = make_memory()
        done = memory.read(0, 64)
        assert done == 80 + 40  # DRAM latency + 8 beats * 5 core cycles

    def test_back_to_back_reads_are_bus_limited(self):
        memory = make_memory()
        first = memory.read(0, 64)
        second = memory.read(0, 64)
        assert second - first == 40  # transfers pipeline behind one another

    def test_writes_consume_bus(self):
        memory = make_memory()
        memory.write(0, 64)
        done = memory.read(0, 64)
        # the read's data phase waits behind the posted write
        assert done >= 40 + 40

    def test_byte_accounting_by_kind(self):
        memory = make_memory()
        memory.read(0, 64, kind="data")
        memory.read(0, 64, kind="hash")
        memory.write(0, 64, kind="writeback")
        assert memory.stats["read_bytes_data"] == 64
        assert memory.stats["read_bytes_hash"] == 64
        assert memory.stats["write_bytes_writeback"] == 64
        assert memory.stats["bytes_total"] == 192

    def test_bandwidth_utilization(self):
        memory = make_memory()
        memory.read(0, 64)
        assert memory.bandwidth_utilization(80) == 0.5
        assert memory.bandwidth_utilization(0) == 0.0

    def test_timing_disabled_is_free(self):
        memory = make_memory()
        memory.timing_enabled = False
        assert memory.read(123, 64) == 123
        assert memory.write(123, 64) == 123
        assert memory.stats["bytes_total"] == 0


class TestHashEngineTiming:
    def test_single_hash_latency(self):
        engine = HashEngineTiming(HashEngineConfig())
        # 64 bytes at 3.2 GB/s: 20 cycles occupancy + 80 latency
        assert engine.hash_op(0, 64) == 100

    def test_throughput_limits_pipeline(self):
        engine = HashEngineTiming(HashEngineConfig())
        first = engine.hash_op(0, 64)
        second = engine.hash_op(0, 64)
        assert second - first == 20  # one hash per 20 cycles

    def test_higher_throughput_shrinks_gap(self):
        engine = HashEngineTiming(HashEngineConfig(throughput_gb_per_s=6.4))
        first = engine.hash_op(0, 64)
        second = engine.hash_op(0, 64)
        assert second - first == 10

    def test_read_buffer_blocks_when_full(self):
        config = HashEngineConfig(read_buffer_entries=2)
        engine = HashEngineTiming(config)
        slot_a, start_a = engine.begin_check(0)
        slot_b, start_b = engine.begin_check(0)
        engine.finish_check(slot_a, 500)
        engine.finish_check(slot_b, 700)
        _, start_c = engine.begin_check(0)
        assert start_c == 500  # waits for the earliest slot to free
        assert engine.stats["read_buffer_stalls"] == 1

    def test_write_buffer_independent_of_read_buffer(self):
        config = HashEngineConfig(read_buffer_entries=1, write_buffer_entries=1)
        engine = HashEngineTiming(config)
        slot, _ = engine.begin_check(0)
        engine.finish_check(slot, 1000)
        _, start = engine.begin_writeback(0)
        assert start == 0

    def test_timing_disabled_is_free(self):
        engine = HashEngineTiming(HashEngineConfig())
        engine.timing_enabled = False
        assert engine.hash_op(42, 64) == 42
        assert engine.begin_check(42) == (0, 42)
        engine.finish_check(0, 10**9)
        engine.timing_enabled = True
        _, start = engine.begin_check(0)
        assert start == 0  # the disabled finish_check left no residue
