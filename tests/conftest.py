"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.hashtree import (
    CachedHashTree,
    HashTree,
    IncrementalMacTree,
    MultiBlockHashTree,
    TreeLayout,
)
from repro.memory import UntrustedMemory

#: Small protected segment used across tree tests: 64 chunks of 64 bytes.
SMALL_DATA_BYTES = 64 * 64


def make_layout(chunk_bytes: int = 64, data_bytes: int = SMALL_DATA_BYTES) -> TreeLayout:
    return TreeLayout(data_bytes, chunk_bytes, 16)


def make_naive(data_bytes: int = SMALL_DATA_BYTES):
    layout = make_layout(data_bytes=data_bytes)
    memory = UntrustedMemory(layout.physical_bytes)
    tree = HashTree(memory, layout)
    tree.build()
    return memory, tree


def make_chash(capacity: int = 8, data_bytes: int = SMALL_DATA_BYTES):
    layout = make_layout(data_bytes=data_bytes)
    memory = UntrustedMemory(layout.physical_bytes)
    tree = CachedHashTree(memory, layout, capacity_chunks=capacity)
    tree.initialize_by_touch()
    return memory, tree


def make_mhash(capacity: int = 16, blocks_per_chunk: int = 2,
               data_bytes: int = SMALL_DATA_BYTES):
    layout = make_layout(chunk_bytes=64 * blocks_per_chunk, data_bytes=data_bytes)
    memory = UntrustedMemory(layout.physical_bytes)
    tree = MultiBlockHashTree(
        memory, layout, blocks_per_chunk=blocks_per_chunk, capacity_blocks=capacity
    )
    tree.initialize_from_memory()
    return memory, tree


def make_ihash(capacity: int = 16, blocks_per_chunk: int = 2,
               use_timestamps: bool = True, data_bytes: int = SMALL_DATA_BYTES):
    layout = make_layout(chunk_bytes=64 * blocks_per_chunk, data_bytes=data_bytes)
    memory = UntrustedMemory(layout.physical_bytes)
    tree = IncrementalMacTree(
        memory,
        layout,
        blocks_per_chunk=blocks_per_chunk,
        capacity_blocks=capacity,
        use_timestamps=use_timestamps,
    )
    tree.initialize_from_memory()
    return memory, tree


ALL_TREE_FACTORIES = {
    "naive": make_naive,
    "chash": make_chash,
    "mhash": make_mhash,
    "ihash": make_ihash,
}


@pytest.fixture(params=sorted(ALL_TREE_FACTORIES))
def any_tree(request):
    """Parametrized fixture yielding (name, memory, tree) for all four schemes."""
    name = request.param
    memory, tree = ALL_TREE_FACTORIES[name]()
    return name, memory, tree


def random_bytes(rng: random.Random, n: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(n))
