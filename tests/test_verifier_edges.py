"""Edge cases of the MemoryVerifier surface not covered elsewhere."""

import pytest

from repro.common import SecureModeError
from repro.hashtree import MemoryVerifier
from repro.memory import UntrustedMemory

DATA = 64 * 64


def fresh(scheme="chash", size=1 << 18):
    memory = UntrustedMemory(size)
    verifier = MemoryVerifier(memory, DATA, scheme=scheme, cache_chunks=8)
    verifier.initialize()
    return memory, verifier


class TestBoundaryAccesses:
    def test_last_byte(self):
        _, verifier = fresh()
        verifier.write(DATA - 1, b"\x7f")
        assert verifier.read(DATA - 1, 1) == b"\x7f"

    def test_read_crossing_end_rejected(self):
        _, verifier = fresh()
        with pytest.raises(SecureModeError):
            verifier.read(DATA - 4, 8)

    def test_zero_length_rejected(self):
        _, verifier = fresh()
        with pytest.raises(ValueError):
            verifier.read(0, 0)

    def test_whole_segment_write(self):
        _, verifier = fresh()
        payload = bytes(range(256)) * (DATA // 256)
        verifier.write(0, payload)
        assert verifier.read(0, DATA) == payload


class TestUnprotectLifecycle:
    def test_unprotect_is_chunk_granular(self):
        _, verifier = fresh()
        verifier.unprotect_range(10, 4)  # inside chunk 0
        with pytest.raises(SecureModeError):
            verifier.read(0, 4)          # whole chunk is unprotected
        verifier.read(64, 4)             # neighbouring chunk unaffected

    def test_double_unprotect_is_idempotent(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        verifier.unprotect_range(0, 64)
        verifier.rebuild_range(0, 64)
        verifier.read(0, 4)

    def test_partial_rebuild_leaves_rest_unprotected(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 128)  # two chunks
        verifier.rebuild_range(0, 64)
        verifier.read(0, 4)
        with pytest.raises(SecureModeError):
            verifier.read(64, 4)

    def test_writes_refused_on_unprotected_chunks(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        with pytest.raises(SecureModeError):
            verifier.write(0, b"x")

    def test_write_without_checking_into_unprotected_chunk(self):
        memory, verifier = fresh()
        verifier.unprotect_range(0, 64)
        verifier.write_without_checking(0, b"dma payload")
        assert verifier.read_without_checking(0, 11) == b"dma payload"
        verifier.rebuild_range(0, 64)
        assert verifier.read(0, 11) == b"dma payload"


class TestUnprotectedWindow:
    def test_window_size_matches_headroom(self):
        memory, verifier = fresh(size=1 << 18)
        expected = (1 << 18) - verifier.layout.physical_bytes
        assert len(verifier.unprotected_window) == expected

    def test_no_window_when_memory_exact(self):
        from repro.hashtree import TreeLayout
        layout = TreeLayout(DATA, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        verifier = MemoryVerifier(memory, DATA)
        assert len(verifier.unprotected_window) == 0

    def test_window_read_out_of_bounds(self):
        _, verifier = fresh()
        window = verifier.unprotected_window
        with pytest.raises((IndexError, SecureModeError)):
            verifier.read_without_checking(window.stop, 1)


class TestSchemesShareSurface:
    @pytest.mark.parametrize("scheme", ["naive", "chash", "mhash", "ihash"])
    def test_unprotect_rebuild_works_everywhere(self, scheme):
        memory, verifier = fresh(scheme=scheme)
        chunk = verifier.layout.chunk_bytes
        verifier.write(0, b"before")
        verifier.flush()
        verifier.unprotect_range(0, chunk)
        physical = verifier.physical_address(0)
        memory.poke(physical, b"DMA!")
        verifier.rebuild_range(0, chunk)
        assert verifier.read(0, 4) == b"DMA!"
