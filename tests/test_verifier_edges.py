"""Edge cases of the MemoryVerifier surface not covered elsewhere."""

import pytest

from repro.common import SecureModeError
from repro.hashtree import MemoryVerifier
from repro.memory import UntrustedMemory

DATA = 64 * 64


def fresh(scheme="chash", size=1 << 18):
    memory = UntrustedMemory(size)
    verifier = MemoryVerifier(memory, DATA, scheme=scheme, cache_chunks=8)
    verifier.initialize()
    return memory, verifier


class TestBoundaryAccesses:
    def test_last_byte(self):
        _, verifier = fresh()
        verifier.write(DATA - 1, b"\x7f")
        assert verifier.read(DATA - 1, 1) == b"\x7f"

    def test_read_crossing_end_rejected(self):
        _, verifier = fresh()
        with pytest.raises(SecureModeError):
            verifier.read(DATA - 4, 8)

    def test_zero_length_rejected(self):
        _, verifier = fresh()
        with pytest.raises(ValueError):
            verifier.read(0, 0)

    def test_whole_segment_write(self):
        _, verifier = fresh()
        payload = bytes(range(256)) * (DATA // 256)
        verifier.write(0, payload)
        assert verifier.read(0, DATA) == payload


class TestExactBoundaries:
    """Regression tests for span arithmetic at the segment edges."""

    def test_zero_length_write_rejected(self):
        _, verifier = fresh()
        with pytest.raises(ValueError):
            verifier.write(0, b"")

    def test_zero_length_unchecked_read_rejected(self):
        _, verifier = fresh()
        with pytest.raises(ValueError):
            verifier.read_without_checking(0, 0)

    def test_zero_length_unchecked_write_rejected(self):
        # used to probe address - 1 (the byte *before* the span) and
        # decide based on an unrelated chunk's protection state
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        with pytest.raises(ValueError):
            verifier.write_without_checking(64, b"")
        with pytest.raises(ValueError):
            verifier.write_without_checking(0, b"")

    def test_zero_length_unprotect_rejected(self):
        _, verifier = fresh()
        with pytest.raises(ValueError):
            verifier.unprotect_range(0, 0)
        with pytest.raises(ValueError):
            verifier.rebuild_range(0, 0)

    def test_span_ending_exactly_at_data_bytes(self):
        _, verifier = fresh()
        chunk = verifier.layout.chunk_bytes
        verifier.unprotect_range(DATA - chunk, chunk)
        verifier.write_without_checking(DATA - 4, b"edge")
        verifier.rebuild_range(DATA - chunk, chunk)
        assert verifier.read(DATA - 4, 4) == b"edge"

    def test_unprotect_crossing_end_is_secure_mode_error(self):
        _, verifier = fresh()
        with pytest.raises(SecureModeError):
            verifier.unprotect_range(DATA - 4, 8)
        # nothing was unprotected by the failed call
        assert verifier.read(DATA - 4, 4)

    def test_rebuild_crossing_end_is_secure_mode_error(self):
        _, verifier = fresh()
        with pytest.raises(SecureModeError):
            verifier.rebuild_range(DATA - 4, 8)

    def test_negative_address_unprotect_rejected(self):
        _, verifier = fresh()
        with pytest.raises(SecureModeError):
            verifier.unprotect_range(-64, 64)

    def test_rebuild_partially_covered_is_atomic(self):
        # span covers one unprotected and one protected chunk: the call
        # must fail without rebuilding (re-protecting) the first chunk
        memory, verifier = fresh()
        chunk = verifier.layout.chunk_bytes
        verifier.unprotect_range(0, chunk)  # chunk 0 only
        memory.poke(verifier.physical_address(0), b"DMA!")
        with pytest.raises(SecureModeError):
            verifier.rebuild_range(0, 2 * chunk)
        # chunk 0 is still unprotected — the failed rebuild touched nothing
        with pytest.raises(SecureModeError):
            verifier.read(0, 4)
        verifier.rebuild_range(0, chunk)
        assert verifier.read(0, 4) == b"DMA!"

    def test_unchecked_window_read_at_exact_start(self):
        _, verifier = fresh()
        window = verifier.unprotected_window
        verifier.write_without_checking(window.start, b"w")
        assert verifier.read_without_checking(window.start, 1) == b"w"

    def test_unchecked_read_spanning_protection_boundary_rejected(self):
        _, verifier = fresh()
        verifier.unprotect_range(DATA - 64, 64)
        with pytest.raises(SecureModeError):
            verifier.read_without_checking(DATA - 4, 8)


class TestReadMany:
    def test_batched_reads_match_sequential(self):
        _, verifier = fresh()
        payload = bytes(range(256)) * (DATA // 256)
        verifier.write(0, payload)
        spans = [(0, 4), (2, 8), (60, 10), (DATA - 5, 5), (100, 1)]
        batched = verifier.read_many(spans)
        assert batched == [verifier.read(a, n) for a, n in spans]

    def test_overlap_amortizes_walks(self):
        _, verifier = fresh()
        before = verifier.walk_counters()
        verifier.read_many([(0, 4), (8, 4), (16, 4), (24, 4)])  # one chunk
        after = verifier.walk_counters()
        assert after["requested"] - before["requested"] == 4
        assert after["performed"] - before["performed"] == 1

    def test_bad_span_fails_whole_batch(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        with pytest.raises(SecureModeError):
            verifier.read_many([(128, 4), (0, 4)])
        with pytest.raises(ValueError):
            verifier.read_many([(128, 4), (256, 0)])

    @pytest.mark.parametrize("scheme", ["naive", "chash", "mhash", "ihash"])
    def test_read_many_all_schemes(self, scheme):
        _, verifier = fresh(scheme=scheme)
        verifier.write(0, b"abcdefgh" * 32)
        spans = [(0, 8), (4, 8), (250, 10)]
        assert verifier.read_many(spans) == [
            verifier.read(a, n) for a, n in spans
        ]


class TestUnprotectLifecycle:
    def test_unprotect_is_chunk_granular(self):
        _, verifier = fresh()
        verifier.unprotect_range(10, 4)  # inside chunk 0
        with pytest.raises(SecureModeError):
            verifier.read(0, 4)          # whole chunk is unprotected
        verifier.read(64, 4)             # neighbouring chunk unaffected

    def test_double_unprotect_is_idempotent(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        verifier.unprotect_range(0, 64)
        verifier.rebuild_range(0, 64)
        verifier.read(0, 4)

    def test_partial_rebuild_leaves_rest_unprotected(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 128)  # two chunks
        verifier.rebuild_range(0, 64)
        verifier.read(0, 4)
        with pytest.raises(SecureModeError):
            verifier.read(64, 4)

    def test_writes_refused_on_unprotected_chunks(self):
        _, verifier = fresh()
        verifier.unprotect_range(0, 64)
        with pytest.raises(SecureModeError):
            verifier.write(0, b"x")

    def test_write_without_checking_into_unprotected_chunk(self):
        memory, verifier = fresh()
        verifier.unprotect_range(0, 64)
        verifier.write_without_checking(0, b"dma payload")
        assert verifier.read_without_checking(0, 11) == b"dma payload"
        verifier.rebuild_range(0, 64)
        assert verifier.read(0, 11) == b"dma payload"


class TestUnprotectedWindow:
    def test_window_size_matches_headroom(self):
        memory, verifier = fresh(size=1 << 18)
        expected = (1 << 18) - verifier.layout.physical_bytes
        assert len(verifier.unprotected_window) == expected

    def test_no_window_when_memory_exact(self):
        from repro.hashtree import TreeLayout
        layout = TreeLayout(DATA, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        verifier = MemoryVerifier(memory, DATA)
        assert len(verifier.unprotected_window) == 0

    def test_window_read_out_of_bounds(self):
        _, verifier = fresh()
        window = verifier.unprotected_window
        with pytest.raises((IndexError, SecureModeError)):
            verifier.read_without_checking(window.stop, 1)


class TestSchemesShareSurface:
    @pytest.mark.parametrize("scheme", ["naive", "chash", "mhash", "ihash"])
    def test_unprotect_rebuild_works_everywhere(self, scheme):
        memory, verifier = fresh(scheme=scheme)
        chunk = verifier.layout.chunk_bytes
        verifier.write(0, b"before")
        verifier.flush()
        verifier.unprotect_range(0, chunk)
        physical = verifier.physical_address(0)
        memory.poke(physical, b"DMA!")
        verifier.rebuild_range(0, chunk)
        assert verifier.read(0, 4) == b"DMA!"
