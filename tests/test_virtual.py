"""Tests for the Section 5.6 extension: per-program virtual verification."""

import pytest

from repro.common import ConfigurationError, IntegrityError, SecureModeError
from repro.hashtree.virtual import MultiProgramVerifier, VerifiedContext
from repro.memory import UntrustedMemory

PAGE = 4096


@pytest.fixture
def system():
    memory = UntrustedMemory(1 << 20)
    return memory, MultiProgramVerifier(memory, page_bytes=PAGE)


class TestContextBasics:
    def test_mapped_page_round_trip(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=4)
        context.map_page(0)
        context.write(100, b"per-program data")
        assert context.read(100, 16) == b"per-program data"

    def test_cross_page_access(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=4)
        context.map_page(0)
        context.map_page(1)
        data = bytes(range(200))
        context.write(PAGE - 100, data)
        assert context.read(PAGE - 100, 200) == data

    def test_unmapped_page_faults(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        with pytest.raises(SecureModeError):
            context.read(0, 4)

    def test_double_map_rejected(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        context.map_page(0)
        with pytest.raises(SecureModeError):
            context.map_page(0)

    def test_frame_exhaustion(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=1)
        context.map_page(0)
        with pytest.raises(SecureModeError):
            context.map_page(1)

    def test_os_cannot_map_foreign_frame(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        with pytest.raises(SecureModeError):
            context.map_page(0, frame=99)  # outside the context's tree


class TestIsolation:
    def test_contexts_have_disjoint_memory(self, system):
        _, mpv = system
        alice = mpv.create_context("alice", n_pages=2)
        bob = mpv.create_context("bob", n_pages=2)
        alice.map_page(0, frame=0)
        bob.map_page(0, frame=0)  # same *frame number*, different carve-out
        alice.write(0, b"alice-secret")
        bob.write(0, b"bob-data....")
        assert alice.read(0, 12) == b"alice-secret"
        assert bob.read(0, 12) == b"bob-data...."

    def test_contexts_have_independent_roots(self, system):
        memory, mpv = system
        alice = mpv.create_context("alice", n_pages=2)
        bob = mpv.create_context("bob", n_pages=2)
        assert (alice.verifier.tree.secure_store
                is not bob.verifier.tree.secure_store)

    def test_tampering_one_context_leaves_other_usable(self, system):
        memory, mpv = system
        alice = mpv.create_context("alice", n_pages=2)
        bob = mpv.create_context("bob", n_pages=2)
        alice.map_page(0, frame=0)
        bob.map_page(0)
        alice.write(0, b"AAAA")
        bob.write(0, b"BBBB")
        alice.verifier.flush()
        # physically corrupt alice's carve-out (page 0 pinned to frame 0)
        physical = alice.verifier.memory.base + alice.verifier.physical_address(0)
        memory.poke(physical, b"X")
        for chunk in range(alice.verifier.layout.total_chunks):
            alice.verifier.tree.invalidate_chunk(chunk)
        with pytest.raises(IntegrityError):
            alice.read(0, 4)
        assert bob.read(0, 4) == b"BBBB"  # unaffected

    def test_physical_exhaustion(self):
        memory = UntrustedMemory(64 * 1024)
        mpv = MultiProgramVerifier(memory, page_bytes=PAGE)
        with pytest.raises(ConfigurationError):
            for i in range(100):
                mpv.create_context(f"ctx{i}", n_pages=4)

    def test_duplicate_name_rejected(self, system):
        _, mpv = system
        mpv.create_context("alice", n_pages=1)
        with pytest.raises(ConfigurationError):
            mpv.create_context("alice", n_pages=1)


class TestSwapping:
    def test_swap_out_and_in(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        context.map_page(0)
        context.write(0, b"resident data")
        contents = context.swap_out(0)
        with pytest.raises(SecureModeError):
            context.read(0, 4)  # page fault while swapped
        context.swap_in(0, contents)
        assert context.read(0, 13) == b"resident data"

    def test_swap_in_to_different_frame(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=3)
        context.map_page(0, frame=0)
        context.write(0, b"movable")
        contents = context.swap_out(0)
        context.swap_in(0, contents, frame=2)
        assert context.read(0, 7) == b"movable"

    def test_os_cannot_substitute_swap_contents(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        context.map_page(0)
        context.write(0, b"genuine page")
        contents = bytearray(context.swap_out(0))
        contents[0] ^= 0xFF  # the OS tampers with the swapped page
        with pytest.raises(SecureModeError):
            context.swap_in(0, bytes(contents))

    def test_swap_in_requires_swapped_page(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=2)
        context.map_page(0)
        with pytest.raises(SecureModeError):
            context.swap_in(0, bytes(PAGE))

    def test_swap_frees_the_frame(self, system):
        _, mpv = system
        context = mpv.create_context("alice", n_pages=1)
        context.map_page(0)
        context.write(0, b"page zero")
        contents = context.swap_out(0)
        context.map_page(1)         # reuses the freed frame
        context.write(PAGE, b"page one")
        with pytest.raises(SecureModeError):
            context.swap_in(0, contents)  # no free frame now
