"""The ``REPRO_TSAN=1`` runtime sanitizer: instrumented locks and
guarded containers.

Two halves, mirroring the acceptance criteria:

* **armed and biting** — an injected guard violation (mutating a
  guarded dict without its lock) and an injected lock inversion (ABBA
  across two instrumented locks) are both recorded, at the right names;
* **real path clean** — the full :class:`LeaseBoard` protocol cycle
  (seed / claim / heartbeat / done / status) runs under instrumentation
  with zero violations.  The ``REPRO_TSAN=1`` CI leg re-runs
  ``test_dispatch.py`` and ``test_sweep.py`` to extend that claim to
  the HTTP protocol suite, the stores, and the worker integration
  tests.

Without the environment variable the factories return the plain
``threading`` primitives and builtin containers — zero overhead on the
production path.
"""

import threading

import pytest

from repro.checks.tsan import (
    GuardError,
    GuardedDict,
    GuardedList,
    InstrumentedLock,
    LockOrderError,
    guarded_dict,
    guarded_list,
    new_lock,
    new_rlock,
    reset,
    tsan_enabled,
    violations,
)
from repro.common import SchemeKind
from repro.sim.sweep import (
    CellSpec,
    LeaseBoard,
    cell_fingerprint,
    spec_to_dict,
)


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_TSAN", "1")
    monkeypatch.delenv("REPRO_TSAN_RAISE", raising=False)
    reset()
    yield
    reset()


@pytest.fixture
def raising(monkeypatch):
    monkeypatch.setenv("REPRO_TSAN", "1")
    monkeypatch.setenv("REPRO_TSAN_RAISE", "1")
    reset()
    yield
    reset()


class TestDisabled:
    def test_factories_return_plain_primitives(self, monkeypatch):
        monkeypatch.delenv("REPRO_TSAN", raising=False)
        assert not tsan_enabled()
        lock = new_lock("t.lock")
        assert not isinstance(lock, InstrumentedLock)
        assert type(lock) is type(threading.Lock())
        assert type(new_rlock("t.rlock")) is type(threading.RLock())
        d = guarded_dict(lock, "t.d", {"a": 1})
        ls = guarded_list(lock, "t.l", [1, 2])
        assert type(d) is dict and d == {"a": 1}
        assert type(ls) is list and ls == [1, 2]


class TestGuardViolations:
    def test_unguarded_dict_write_detected(self, armed):
        lock = new_lock("t.lock")
        d = guarded_dict(lock, "t.shared")
        assert isinstance(d, GuardedDict)
        d["k"] = 1  # no lock held: the injected violation
        recorded = violations()
        assert len(recorded) == 1
        assert isinstance(recorded[0], GuardError)
        assert "t.shared" in str(recorded[0])

    def test_guarded_write_is_clean(self, armed):
        lock = new_lock("t.lock")
        d = guarded_dict(lock, "t.shared")
        with lock:
            d["k"] = 1
            d.setdefault("j", 2)
            del d["j"]
        assert violations() == []
        assert d == {"k": 1}

    def test_unguarded_list_append_detected(self, armed):
        lock = new_lock("t.lock")
        ls = guarded_list(lock, "t.log")
        assert isinstance(ls, GuardedList)
        ls.append(1)
        recorded = violations()
        assert len(recorded) == 1
        assert "t.log" in str(recorded[0])

    def test_reads_never_checked(self, armed):
        lock = new_lock("t.lock")
        d = guarded_dict(lock, "t.shared")
        with lock:
            d["k"] = 1
        assert d.get("k") == 1 and list(d) == ["k"]
        assert violations() == []

    def test_raise_mode_raises(self, raising):
        lock = new_lock("t.lock")
        d = guarded_dict(lock, "t.shared")
        with pytest.raises(GuardError):
            d["k"] = 1


class TestLockOrder:
    def test_inversion_detected(self, armed):
        a = new_lock("t.a")
        b = new_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with a:  # the injected inversion
                pass
        recorded = violations()
        assert len(recorded) == 1
        assert isinstance(recorded[0], LockOrderError)
        assert "t.a" in str(recorded[0]) and "t.b" in str(recorded[0])

    def test_consistent_order_is_clean(self, armed):
        a = new_lock("t.a")
        b = new_lock("t.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert violations() == []

    def test_rlock_reentry_is_clean(self, armed):
        lock = new_rlock("t.r")
        with lock:
            with lock:
                pass
        assert violations() == []

    def test_raise_mode_raises_on_inversion(self, raising):
        a = new_lock("t.a")
        b = new_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                with a:
                    pass


def _wire_cells():
    spec = CellSpec("gzip", SchemeKind.CHASH,
                    instructions=400, warmup=300).normalized()
    return [{"fingerprint": cell_fingerprint(spec),
             "spec": spec_to_dict(spec)}]


class TestLeaseBoardUnderTsan:
    def test_board_is_instrumented_when_armed(self, armed):
        board = LeaseBoard(clock=lambda: 0.0)
        assert isinstance(board._lock, InstrumentedLock)
        assert isinstance(board._leases, GuardedDict)
        assert isinstance(board._pending, GuardedDict)
        assert isinstance(board._done, GuardedDict)
        assert isinstance(board._starving, GuardedDict)
        assert isinstance(board.workers, GuardedDict)
        assert isinstance(board._outcomes, GuardedList)

    def test_full_protocol_cycle_is_clean(self, armed):
        board = LeaseBoard(lease_ttl_s=30.0, clock=lambda: 0.0)
        board.seed([_wire_cells()])
        leased = board.claim("w1")
        assert leased["status"] == "lease"
        lease = leased["lease"]
        assert board.heartbeat(lease["id"], "w1")["ok"]
        rows = [{"fingerprint": cell["fingerprint"], "stored": True,
                 "elapsed_s": 0.1, "label": "t", "backend": "py"}
                for cell in lease["cells"]]
        retired = board.done(lease["id"], "w1", rows)
        assert retired["retired"] and retired["accepted"] == 1
        status = board.status()
        assert status["drained"]
        assert board.claim("w1")["status"] == "empty"
        assert violations() == []

    def test_board_stays_plain_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TSAN", raising=False)
        board = LeaseBoard(clock=lambda: 0.0)
        assert type(board._lock) is type(threading.Lock())
        assert type(board._leases) is dict
        assert type(board._outcomes) is list
