"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "tampering detected" in out

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "FORGED" in out and "detected" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_bench(self, capsys):
        assert main(["bench", "gzip", "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "IPC" in out

    def test_bench_with_l2_override(self, capsys):
        assert main(["bench", "gzip", "--l2-kb", "256", "--block", "128",
                     "--instructions", "1500"]) == 0

    def test_compare(self, capsys):
        assert main(["compare", "gzip", "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        for scheme in ("base", "chash", "naive", "mhash", "ihash"):
            assert scheme in out

    def test_bench_ratchet(self, capsys, tmp_path, monkeypatch):
        # shrink the ratchet cells so the gate runs in milliseconds; the
        # geometry travels inside each row, so nothing real is disturbed
        import repro.analysis.perf as perf
        monkeypatch.setattr(perf, "RATCHET_CELLS",
                            {"chash/gzip": {"instructions": 400,
                                            "warmup": 300}})
        trajectory = tmp_path / "traj.json"
        argv = ["bench", "--ratchet", "--trajectory", str(trajectory)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "perf ratchet" in out
        assert "new baseline" in out
        assert "PASS" in out
        assert trajectory.exists()
        # second run gates against (and extends) the committed row; the
        # huge tolerance keeps millisecond-cell timing noise from flaking
        assert main(argv + ["--tolerance", "100"]) == 0
        out = capsys.readouterr().out
        assert "new baseline" not in out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["bench", "linpack"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "md5" in out and "adder" in out

    def test_trace(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main(["trace", "gzip", path, "-n", "200"]) == 0
        from repro.workloads import load_trace
        assert len(load_trace(path)) == 200

    def test_loadgen(self, capsys, tmp_path):
        output = tmp_path / "BENCH_serve.json"
        assert main(["loadgen", "--tenants", "2", "--threads", "2",
                     "--requests", "60", "--spans", "6",
                     "--data-kb", "8", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "amortization" in out
        assert "direct-verifier diff: OK" in out
        assert output.exists()

    def test_loadgen_no_output_writes_nothing(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["loadgen", "--tenants", "1", "--threads", "2",
                     "--requests", "40", "--no-output"]) == 0
        assert not (tmp_path / "BENCH_serve.json").exists()

    def test_loadgen_rejects_bad_geometry(self, capsys):
        assert main(["loadgen", "--threads", "64", "--data-kb", "1",
                     "--no-output"]) == 2
        assert "data_bytes too small" in capsys.readouterr().err


class TestCheckCLI:
    VIOLATION = (
        "class Leaky:\n"
        "    def __init__(self):\n"
        "        self._seen = 0\n"
        "    def warm_access(self, address):\n"
        "        self._seen += 1\n"
        "    def snapshot(self):\n"
        "        return ()\n"
    )

    def test_check_clean_tree(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_selftest(self, capsys):
        assert main(["check", "--selftest"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        from repro.checks import RULES
        for rule in RULES:
            assert rule in out

    def test_check_flags_violation_file(self, capsys, tmp_path):
        path = tmp_path / "leaky.py"
        path.write_text(self.VIOLATION)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "snap-missing-field" in out and "_seen" in out

    def test_check_github_format(self, capsys, tmp_path):
        path = tmp_path / "leaky.py"
        path.write_text(self.VIOLATION)
        assert main(["check", "--format", "github", str(path)]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=snap-missing-field" in out
