"""Tests for the analysis tables and the experiment registry."""

from repro.analysis import (
    EXPERIMENTS,
    experiment_index_markdown,
    format_table,
    ipc_table,
    metric_table,
    relative_ipc_table,
)
from repro.common import SchemeKind, table1_config
from repro.sim.results import SimResult


def fake_result(benchmark, scheme, ipc):
    cycles = 1000
    return SimResult(
        benchmark=benchmark,
        scheme=scheme,
        config=table1_config(SchemeKind(scheme) if scheme != "base"
                             else SchemeKind.BASE),
        instructions=int(ipc * cycles),
        cycles=cycles,
        stats={"l2.data_accesses": 100, "l2.data_misses": 10,
               "memory.reads": 20, "memory.bytes_total": 1280,
               "memory.read_bytes_data": 640},
    )


def fake_grid(benchmarks=("gzip", "mcf")):
    grid = {}
    for bench in benchmarks:
        grid[(bench, "base", "")] = fake_result(bench, "base", 2.0)
        grid[(bench, "chash", "")] = fake_result(bench, "chash", 1.8)
    return grid


class TestFormatTable:
    def test_contains_all_cells(self):
        text = format_table("T", ["a", "b"], [("row1", [1.0, 2.0])])
        assert "T" in text
        assert "row1" in text
        assert "1.000" in text and "2.000" in text

    def test_custom_format(self):
        text = format_table("T", ["a"], [("r", [0.123456])],
                            value_format="{:8.1f}")
        assert "0.1" in text


class TestGridTables:
    def test_ipc_table(self):
        text = ipc_table(fake_grid(), ["base", "chash"],
                         benchmarks=["gzip", "mcf"])
        assert "gzip" in text and "mcf" in text
        assert "2.000" in text and "1.800" in text

    def test_relative_table_normalizes(self):
        text = relative_ipc_table(fake_grid(), ["chash"],
                                  benchmarks=["gzip"])
        assert "0.900" in text

    def test_metric_table(self):
        text = metric_table(fake_grid(), ["base"],
                            metric=lambda r: r.l2_data_miss_rate,
                            benchmarks=["gzip"])
        assert "0.100" in text


class TestSimResultMetrics:
    def test_ipc(self):
        assert fake_result("gzip", "base", 2.0).ipc == 2.0

    def test_miss_rate(self):
        assert fake_result("gzip", "base", 2.0).l2_data_miss_rate == 0.1

    def test_extra_reads_per_miss(self):
        result = fake_result("gzip", "chash", 1.0)
        # 20 reads total, 10 of them data (640/64), 10 misses -> 1 extra
        assert result.extra_reads_per_miss == 1.0

    def test_slowdown_and_overhead(self):
        base = fake_result("gzip", "base", 2.0)
        slow = fake_result("gzip", "chash", 1.0)
        assert slow.slowdown(base) == 2.0
        assert slow.overhead_percent(base) == 50.0

    def test_normalized_bandwidth(self):
        base = fake_result("gzip", "base", 2.0)
        other = fake_result("gzip", "chash", 1.0)
        other.stats["memory.bytes_total"] = 2560
        assert other.normalized_bandwidth(base) == 2.0

    def test_zero_division_guards(self):
        result = fake_result("gzip", "base", 2.0)
        result.stats = {}
        assert result.l2_data_miss_rate == 0.0
        assert result.extra_reads_per_miss == 0.0


class TestExperimentRegistry:
    def test_every_figure_present(self):
        for key in ("table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert key in EXPERIMENTS

    def test_bench_targets_exist(self):
        import os
        root = os.path.join(os.path.dirname(__file__), "..")
        for experiment in EXPERIMENTS.values():
            target = experiment.bench_target
            if target == "benchmarks/test_ablations.py":
                continue
            assert os.path.exists(os.path.join(root, target)), target

    def test_markdown_index(self):
        text = experiment_index_markdown()
        assert "Figure 3" in text
        assert "| Key |" in text
