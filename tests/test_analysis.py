"""Tests for the analysis tables and the experiment registry."""

from repro.analysis import (
    EXPERIMENTS,
    experiment_index_markdown,
    format_table,
    ipc_table,
    metric_table,
    relative_ipc_table,
)
from repro.common import SchemeKind, table1_config
from repro.sim.results import SimResult


def fake_result(benchmark, scheme, ipc):
    cycles = 1000
    return SimResult(
        benchmark=benchmark,
        scheme=scheme,
        config=table1_config(SchemeKind(scheme) if scheme != "base"
                             else SchemeKind.BASE),
        instructions=int(ipc * cycles),
        cycles=cycles,
        stats={"l2.data_accesses": 100, "l2.data_misses": 10,
               "memory.reads": 20, "memory.bytes_total": 1280,
               "memory.read_bytes_data": 640},
    )


def fake_grid(benchmarks=("gzip", "mcf")):
    grid = {}
    for bench in benchmarks:
        grid[(bench, "base", "")] = fake_result(bench, "base", 2.0)
        grid[(bench, "chash", "")] = fake_result(bench, "chash", 1.8)
    return grid


class TestFormatTable:
    def test_contains_all_cells(self):
        text = format_table("T", ["a", "b"], [("row1", [1.0, 2.0])])
        assert "T" in text
        assert "row1" in text
        assert "1.000" in text and "2.000" in text

    def test_custom_format(self):
        text = format_table("T", ["a"], [("r", [0.123456])],
                            value_format="{:8.1f}")
        assert "0.1" in text


class TestGridTables:
    def test_ipc_table(self):
        text = ipc_table(fake_grid(), ["base", "chash"],
                         benchmarks=["gzip", "mcf"])
        assert "gzip" in text and "mcf" in text
        assert "2.000" in text and "1.800" in text

    def test_relative_table_normalizes(self):
        text = relative_ipc_table(fake_grid(), ["chash"],
                                  benchmarks=["gzip"])
        assert "0.900" in text

    def test_metric_table(self):
        text = metric_table(fake_grid(), ["base"],
                            metric=lambda r: r.l2_data_miss_rate,
                            benchmarks=["gzip"])
        assert "0.100" in text


class TestSimResultMetrics:
    def test_ipc(self):
        assert fake_result("gzip", "base", 2.0).ipc == 2.0

    def test_miss_rate(self):
        assert fake_result("gzip", "base", 2.0).l2_data_miss_rate == 0.1

    def test_extra_reads_per_miss(self):
        result = fake_result("gzip", "chash", 1.0)
        # 20 reads total, 10 of them data (640/64), 10 misses -> 1 extra
        assert result.extra_reads_per_miss == 1.0

    def test_slowdown_and_overhead(self):
        base = fake_result("gzip", "base", 2.0)
        slow = fake_result("gzip", "chash", 1.0)
        assert slow.slowdown(base) == 2.0
        assert slow.overhead_percent(base) == 50.0

    def test_normalized_bandwidth(self):
        base = fake_result("gzip", "base", 2.0)
        other = fake_result("gzip", "chash", 1.0)
        other.stats["memory.bytes_total"] = 2560
        assert other.normalized_bandwidth(base) == 2.0

    def test_zero_division_guards(self):
        result = fake_result("gzip", "base", 2.0)
        result.stats = {}
        assert result.l2_data_miss_rate == 0.0
        assert result.extra_reads_per_miss == 0.0


class TestExperimentRegistry:
    def test_every_figure_present(self):
        for key in ("table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert key in EXPERIMENTS

    def test_bench_targets_exist(self):
        import os
        root = os.path.join(os.path.dirname(__file__), "..")
        for experiment in EXPERIMENTS.values():
            target = experiment.bench_target
            if target == "benchmarks/test_ablations.py":
                continue
            assert os.path.exists(os.path.join(root, target)), target

    def test_markdown_index(self):
        text = experiment_index_markdown()
        assert "Figure 3" in text
        assert "| Key |" in text


# --------------------------------------------------------------------------
# the perf trajectory and its ratchet
# --------------------------------------------------------------------------

class TestPerfTrajectory:
    #: tiny measurement geometry so ratchet tests run in milliseconds
    CELLS = {"chash/gzip": {"instructions": 400, "warmup": 300}}

    def test_host_fingerprint_is_short_and_stable(self):
        from repro.analysis import host_fingerprint
        first = host_fingerprint()
        assert first == host_fingerprint()
        assert len(first) == 12
        assert all(c in "0123456789abcdef" for c in first)

    def test_append_and_load_roundtrip(self, tmp_path):
        from repro.analysis import append_trajectory_row, load_trajectory
        path = str(tmp_path / "traj.json")
        row = append_trajectory_row(
            path, {"chash/gzip": {"instructions": 400, "warmup": 300,
                                  "seconds": 0.5}},
            backend="fallback", host="aaaa", git_sha="sha1")
        assert row["backend"] == "fallback"
        rows = load_trajectory(path)
        assert len(rows) == 1
        assert rows[0]["cells"]["chash/gzip"]["seconds"] == 0.5
        append_trajectory_row(path, {}, backend="numpy", host="bbbb")
        assert len(load_trajectory(path)) == 2

    def test_unreadable_trajectory_is_empty(self, tmp_path):
        from repro.analysis import load_trajectory
        assert load_trajectory(str(tmp_path / "missing.json")) == []
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        assert load_trajectory(str(bad)) == []

    def test_baseline_filters_host_backend_and_geometry(self):
        from repro.analysis import trajectory_baseline
        cells = {"chash/gzip": {"instructions": 400, "warmup": 300}}
        mk = lambda host, backend, seconds, instructions=400: {
            "host": host, "backend": backend,
            "cells": {"chash/gzip": {"instructions": instructions,
                                     "warmup": 300, "seconds": seconds}}}
        rows = [
            mk("me", "numpy", 2.0),
            mk("me", "numpy", 1.0),           # the best matching row
            mk("me", "numpy", 0.1, 800),      # wrong geometry: ignored
            mk("me", "fallback", 0.2),        # wrong backend: ignored
            mk("other", "numpy", 0.3),        # wrong host: ignored
        ]
        best = trajectory_baseline(rows, "me", "numpy", cells)
        assert best == {"chash/gzip": 1.0}
        assert trajectory_baseline(rows, "nobody", "numpy", cells) == {}

    def test_ratchet_seeds_a_fresh_trajectory(self, tmp_path):
        from repro.analysis import load_trajectory, ratchet_bench
        path = str(tmp_path / "traj.json")
        lines, ok = ratchet_bench(path, cells=self.CELLS, repeats=1)
        assert ok
        text = "\n".join(lines)
        assert "new baseline" in text
        assert "PASS" in text
        rows = load_trajectory(path)
        assert len(rows) == 1
        assert rows[0]["cells"]["chash/gzip"]["seconds"] > 0

    def test_ratchet_passes_against_a_slow_floor(self, tmp_path):
        from repro.analysis import (append_trajectory_row, host_fingerprint,
                                    load_trajectory, ratchet_bench)
        from repro.kernels import resolve_kernels
        path = str(tmp_path / "traj.json")
        append_trajectory_row(
            path, {"chash/gzip": {"instructions": 400, "warmup": 300,
                                  "seconds": 1000.0}},
            backend=resolve_kernels(None), host=host_fingerprint())
        lines, ok = ratchet_bench(path, cells=self.CELLS, repeats=1)
        assert ok
        assert "improved" in "\n".join(lines)
        # the run appended its own (much faster) row: the new floor
        assert len(load_trajectory(path)) == 2

    def test_ratchet_fails_on_regression(self, tmp_path):
        from repro.analysis import (append_trajectory_row, host_fingerprint,
                                    ratchet_bench)
        from repro.kernels import resolve_kernels
        path = str(tmp_path / "traj.json")
        append_trajectory_row(
            path, {"chash/gzip": {"instructions": 400, "warmup": 300,
                                  "seconds": 1e-9}},
            backend=resolve_kernels(None), host=host_fingerprint())
        lines, ok = ratchet_bench(path, cells=self.CELLS, repeats=1)
        assert not ok
        text = "\n".join(lines)
        assert "REGRESSION" in text
        assert "FAIL" in text

    def test_ratchet_record_false_leaves_file_alone(self, tmp_path):
        from repro.analysis import load_trajectory, ratchet_bench
        path = str(tmp_path / "traj.json")
        _lines, ok = ratchet_bench(path, cells=self.CELLS, repeats=1,
                                   record=False)
        assert ok
        assert load_trajectory(path) == []

    def test_other_hosts_rows_are_kept_not_compared(self, tmp_path):
        from repro.analysis import append_trajectory_row, ratchet_bench
        path = str(tmp_path / "traj.json")
        # a blazing row from a different machine class must not gate us
        append_trajectory_row(
            path, {"chash/gzip": {"instructions": 400, "warmup": 300,
                                  "seconds": 1e-9}},
            backend="numpy", host="somewhere-else")
        lines, ok = ratchet_bench(path, cells=self.CELLS, repeats=1)
        assert ok
        assert "new baseline" in "\n".join(lines)
