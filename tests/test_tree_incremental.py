"""Tests for the incremental-MAC tree (ihash, Section 5.4.1)."""

import pytest

from repro.common import IntegrityError
from repro.hashtree import IncrementalMacTree, TreeLayout
from repro.memory import UntrustedMemory

from tests.conftest import SMALL_DATA_BYTES, make_ihash


class TestReadWrite:
    def test_read_after_write(self):
        _, tree = make_ihash()
        tree.write(0, b"hello")
        assert tree.read(0, 5) == b"hello"

    def test_data_survives_flush(self):
        _, tree = make_ihash(capacity=8)
        tree.write(900, b"persist")
        tree.flush()
        assert tree.read(900, 7) == b"persist"

    def test_many_write_back_cycles(self):
        """Timestamps flip on every write-back; many cycles must stay sound."""
        _, tree = make_ihash(capacity=4)
        for round_number in range(12):
            payload = bytes([round_number]) * 8
            tree.write(0, payload)
            tree.flush()
            assert tree.read(0, 8) == payload


class TestIncrementalWriteBack:
    def test_write_back_skips_chunk_assembly(self):
        """ihash's advantage: write-back does not re-read chunk-mates from
        memory beyond the one unchecked old-value read."""
        _, tree = make_ihash(capacity=64)
        tree.write(0, b"A")
        tree.stats.reset()
        block = tree.layout.first_leaf * tree.blocks_per_chunk
        data = bytes(tree.cache.peek(block))
        tree.cache.mark_clean(block)
        tree.write_back(block, data)
        assert tree.stats["unchecked_old_reads"] == 1
        assert tree.stats["mac_updates"] == 1
        # no full-chunk verification was triggered by the write-back itself
        assert tree.stats.get("memory_block_reads", 0) <= 1

    def test_timestamp_bit_flips_on_write_back(self):
        _, tree = make_ihash(capacity=4)
        leaf = tree.layout.first_leaf
        tree.write(0, b"x")
        tree.flush()
        entry = tree._load_entry(leaf)
        _, bits_after_first = tree._unpack_entry(entry)
        tree.write(0, b"y")
        tree.flush()
        entry = tree._load_entry(leaf)
        _, bits_after_second = tree._unpack_entry(entry)
        assert (bits_after_first ^ bits_after_second) & 1 == 1


class TestTamperDetection:
    def test_detects_corruption(self):
        memory, tree = make_ihash(capacity=4)
        tree.write(0, b"secret")
        tree.flush()
        for i in range(4, 16):
            tree.read(i * 128, 1)
        memory.poke(tree.layout.chunk_address(tree.layout.first_leaf), b"\xff")
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_detects_stale_replay_of_block(self):
        """Replaying an old (block, entry-unchanged) pair is caught because
        the MAC in the parent was updated at write-back."""
        memory, tree = make_ihash(capacity=4)
        tree.write(0, b"version-1")
        tree.flush()
        base = tree.layout.chunk_address(tree.layout.first_leaf)
        stale = memory.peek(base, 64)
        tree.write(0, b"version-2")
        tree.flush()
        memory.poke(base, stale)  # put the old block back
        for i in range(4, 16):
            tree.read(i * 128, 1)
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_detects_cross_chunk_splice(self):
        """Global block indices bind position: copying block+nothing else
        from another chunk fails, as does copying data between chunks."""
        memory, tree = make_ihash(capacity=4)
        tree.write(0, b"A" * 64)
        tree.write(128, b"B" * 64)
        tree.flush()
        a = tree.layout.chunk_address(tree.layout.first_leaf)
        b = tree.layout.chunk_address(tree.layout.first_leaf + 1)
        memory.poke(a, memory.peek(b, 64))
        for i in range(4, 16):
            tree.read(i * 128, 1)
        with pytest.raises(IntegrityError):
            tree.read(0, 1)


class TestVulnerableVariant:
    def test_timestampless_variant_still_works_normally(self):
        _, tree = make_ihash(use_timestamps=False)
        tree.write(0, b"normal operation")
        tree.flush()
        assert tree.read(0, 16) == b"normal operation"

    def test_timestampless_write_back_keeps_bits_stable(self):
        _, tree = make_ihash(use_timestamps=False, capacity=4)
        leaf = tree.layout.first_leaf
        tree.write(0, b"x")
        tree.flush()
        _, bits_a = tree._unpack_entry(tree._load_entry(leaf))
        tree.write(0, b"y")
        tree.flush()
        _, bits_b = tree._unpack_entry(tree._load_entry(leaf))
        assert bits_a == bits_b == 0


class TestConstruction:
    def test_rejects_too_many_blocks(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 1024, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        with pytest.raises(ValueError):
            IncrementalMacTree(memory, layout, blocks_per_chunk=16)

    def test_different_keys_are_incompatible(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 128, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = IncrementalMacTree(memory, layout, mac_key=b"key-one",
                                  capacity_blocks=16)
        tree.initialize_from_memory()
        tree.write(0, b"data")
        tree.flush()
        other = IncrementalMacTree(memory, layout, mac_key=b"key-two",
                                   capacity_blocks=16)
        other.secure_store = list(tree.secure_store)
        with pytest.raises(IntegrityError):
            other.read(0, 4)
