"""The sweep engine: cells, fingerprints, disk cache, parallel runner.

Every test here runs tiny cells (hundreds of instructions, short warm-up)
so the whole file is a fast smoke path through the real engine — cold run,
cache write, warm run, parallel fan-out — on every pytest invocation.
"""

import dataclasses
import json

import pytest

from repro.common import KB, MB, SchemeKind, SystemConfig
from repro.sim.sweep import (
    CACHE_SCHEMA_VERSION,
    CELL_PARAMS,
    CellSpec,
    DiskCellCache,
    cell_fingerprint,
    cell_param_defaults,
    config_from_dict,
    config_to_dict,
    execute_cell,
    execute_group,
    figure_cells,
    result_from_dict,
    result_to_dict,
    results_grid,
    run_cells,
    warm_fingerprint,
)
from repro.sim.sweep.runner import _balance_groups

# small enough that a cell takes tens of milliseconds
TINY = dict(instructions=400, warmup=300)


def tiny(benchmark="gzip", scheme=SchemeKind.CHASH, **overrides):
    params = {**TINY, **overrides}
    return CellSpec(benchmark, scheme, **params)


def assert_same_result(a, b):
    assert a.cycles == b.cycles
    assert a.stats == b.stats
    assert a.instructions == b.instructions
    assert a.benchmark == b.benchmark
    assert a.scheme == b.scheme


# --------------------------------------------------------------------------
# CellSpec normalization — the shared defaults table
# --------------------------------------------------------------------------

class TestNormalization:
    def test_defaults_table_matches_config(self):
        base = SystemConfig()
        defaults = cell_param_defaults()
        assert defaults["l2_size"] == base.l2.size_bytes
        assert defaults["l2_block"] == base.l2.block_bytes
        assert defaults["l1i_block"] == base.l1i.block_bytes
        assert defaults["hash_throughput"] == base.hash_engine.throughput_gb_per_s
        assert defaults["buffer_entries"] == base.hash_engine.read_buffer_entries
        assert defaults["blocks_per_chunk"] == base.blocks_per_chunk
        assert defaults["write_allocate_valid_bits"] == base.write_allocate_valid_bits
        assert set(defaults) == set(CELL_PARAMS)

    @pytest.mark.parametrize("param", CELL_PARAMS)
    def test_explicit_default_collapses_for_every_param(self, param):
        # the old benchmark-harness normalization only covered three of the
        # six parameters; the shared table must cover them all
        value = cell_param_defaults()[param]
        spec = tiny(**{param: value})
        assert spec.normalized() == tiny()
        assert spec.key() == tiny().key()

    def test_false_valued_default_would_collapse_symmetrically(self):
        # regression guard for the `is True` asymmetry: normalization must
        # key off the *table*, not a hard-coded truthy sentinel
        default = cell_param_defaults()["write_allocate_valid_bits"]
        spec = tiny(write_allocate_valid_bits=default)
        assert spec.normalized().write_allocate_valid_bits is None
        other = tiny(write_allocate_valid_bits=not default)
        assert other.normalized().write_allocate_valid_bits == (not default)

    def test_non_default_values_survive(self):
        spec = tiny(l2_size=256 * KB, blocks_per_chunk=4)
        normalized = spec.normalized()
        assert normalized.l2_size == 256 * KB
        assert normalized.blocks_per_chunk == 4

    def test_build_config_equal_for_equivalent_spellings(self):
        explicit = tiny(l2_size=cell_param_defaults()["l2_size"])
        assert explicit.build_config() == tiny().build_config()

    def test_l1i_block_reaches_the_built_config(self):
        config = tiny(l1i_block=64).build_config()
        assert config.l1i.block_bytes == 64
        base = tiny().build_config()
        assert config.l1i.size_bytes == base.l1i.size_bytes
        assert config.l1i.associativity == base.l1i.associativity

    def test_label_is_compact(self):
        spec = tiny(l2_size=256 * KB, l2_block=128)
        assert spec.label() == "gzip/chash/l2=256K/blk=128"


# --------------------------------------------------------------------------
# fingerprints
# --------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_calls(self):
        assert cell_fingerprint(tiny()) == cell_fingerprint(tiny())

    def test_equivalent_spellings_hash_identically(self):
        defaults = cell_param_defaults()
        explicit = tiny(l2_size=defaults["l2_size"],
                        hash_throughput=defaults["hash_throughput"])
        assert cell_fingerprint(explicit) == cell_fingerprint(tiny())

    @pytest.mark.parametrize("change", [
        dict(benchmark="twolf"),
        dict(scheme=SchemeKind.BASE),
        dict(l2_size=256 * KB),
        dict(l2_block=128),
        dict(l1i_block=64),
        dict(hash_throughput=0.8),
        dict(buffer_entries=4),
        dict(blocks_per_chunk=4),
        dict(write_allocate_valid_bits=False),
        dict(instructions=401),
        dict(warmup=301),
        dict(seed=1),
    ])
    def test_any_parameter_change_changes_fingerprint(self, change):
        base = tiny()
        benchmark = change.pop("benchmark", base.benchmark)
        scheme = change.pop("scheme", base.scheme)
        changed = dataclasses.replace(
            base, benchmark=benchmark, scheme=scheme, **change
        )
        assert cell_fingerprint(changed) != cell_fingerprint(base)

    def test_config_roundtrips_through_dict(self):
        config = tiny(l2_size=256 * KB, blocks_per_chunk=2,
                      scheme=SchemeKind.MHASH).build_config()
        assert config_from_dict(config_to_dict(config)) == config


# --------------------------------------------------------------------------
# the warm fingerprint — which cells may share a warm-up
# --------------------------------------------------------------------------

class TestWarmFingerprint:
    def test_stable_and_spelling_insensitive(self):
        defaults = cell_param_defaults()
        explicit = tiny(l2_size=defaults["l2_size"],
                        hash_throughput=defaults["hash_throughput"])
        assert warm_fingerprint(tiny()) == warm_fingerprint(tiny())
        assert warm_fingerprint(explicit) == warm_fingerprint(tiny())

    @pytest.mark.parametrize("change", [
        dict(hash_throughput=0.8),
        dict(buffer_entries=4),
        dict(instructions=800),
    ])
    def test_timing_only_changes_share_a_warm_key(self, change):
        # fig6 (throughput), fig7 (buffer depth) and measurement-window
        # sweeps redo identical warm-ups — that is the whole point
        assert (warm_fingerprint(dataclasses.replace(tiny(), **change))
                == warm_fingerprint(tiny()))

    @pytest.mark.parametrize("change", [
        dict(benchmark="twolf"),
        dict(scheme=SchemeKind.BASE),
        dict(l2_size=256 * KB),
        dict(l2_block=128),
        dict(l1i_block=64),
        dict(write_allocate_valid_bits=False),
        dict(warmup=301),
        dict(seed=1),
    ])
    def test_state_affecting_changes_split_warm_keys(self, change):
        base = tiny()
        benchmark = change.pop("benchmark", base.benchmark)
        scheme = change.pop("scheme", base.scheme)
        changed = dataclasses.replace(
            base, benchmark=benchmark, scheme=scheme, **change
        )
        assert warm_fingerprint(changed) != warm_fingerprint(base)

    def test_blocks_per_chunk_matters_only_when_tree_uses_it(self):
        # mhash's tree layout depends on the chunk geometry; chash ignores
        # blocks_per_chunk entirely, and base has no tree at all
        for scheme in (SchemeKind.CHASH, SchemeKind.BASE):
            assert (warm_fingerprint(tiny(scheme=scheme, blocks_per_chunk=4))
                    == warm_fingerprint(tiny(scheme=scheme)))
        assert (warm_fingerprint(tiny(scheme=SchemeKind.MHASH,
                                      blocks_per_chunk=4))
                != warm_fingerprint(tiny(scheme=SchemeKind.MHASH)))

    def test_default_warmup_resolves_before_hashing(self):
        # warmup=None and the explicitly resolved count must collide
        from repro.sim.system import default_warmup
        resolved = default_warmup(tiny().build_config())
        assert (warm_fingerprint(tiny(warmup=None))
                == warm_fingerprint(tiny(warmup=resolved)))


# --------------------------------------------------------------------------
# the disk cache
# --------------------------------------------------------------------------

class TestDiskCache:
    def test_roundtrip_returns_equal_result(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        result = execute_cell(spec)
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, result, 0.05)
        restored = cache.get(fingerprint)
        assert_same_result(restored, result)
        assert restored.config == result.config
        assert cache.hits == 1 and len(cache) == 1

    def test_result_serialization_roundtrip(self):
        result = execute_cell(tiny())
        assert_same_result(result_from_dict(result_to_dict(result)), result)

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_logged_miss(self, tmp_path, caplog):
        cache = DiskCellCache(tmp_path)
        fingerprint = cell_fingerprint(tiny())
        cache.path_for(fingerprint).parent.mkdir(exist_ok=True)
        cache.path_for(fingerprint).write_text("{not json at all")
        with caplog.at_level("WARNING"):
            assert cache.get(fingerprint) is None
        assert "unreadable cache entry" in caplog.text

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = cache.path_for(fingerprint)
        path.write_text(path.read_text()[: 40])
        assert cache.get(fingerprint) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = cache.path_for(fingerprint)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(fingerprint) is None

    def test_embedded_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        other = "f" * 64
        cache.path_for(fingerprint).rename(cache.path_for(other))
        assert cache.get(other) is None


# --------------------------------------------------------------------------
# the runner — the engine's fast smoke path, exercised on every test run
# --------------------------------------------------------------------------

class TestRunner:
    CELLS = [
        tiny("gzip", SchemeKind.BASE),
        tiny("gzip", SchemeKind.CHASH),
        tiny("twolf", SchemeKind.CHASH, l2_size=256 * KB),
    ]

    def test_cold_then_warm_sweep(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cold = run_cells(self.CELLS, cache=cache)
        assert len(cold.ran) == 3 and not cold.cached and not cold.failed
        warm = run_cells(self.CELLS, cache=cache)
        assert len(warm.cached) == 3 and not warm.ran
        for spec in cold.results:
            assert_same_result(warm.results[spec], cold.results[spec])
        assert "3 cached" in warm.summary()

    def test_fresh_bypasses_reads_but_overwrites(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        run_cells(self.CELLS, cache=cache)
        fresh = run_cells(self.CELLS, cache=cache, fresh=True)
        assert len(fresh.ran) == 3 and not fresh.cached
        warm = run_cells(self.CELLS, cache=cache)
        assert len(warm.cached) == 3

    def test_no_cache_runs_everything(self, tmp_path):
        report = run_cells(self.CELLS, cache=None)
        assert len(report.ran) == 3
        assert not list(tmp_path.iterdir())

    def test_duplicate_and_equivalent_cells_run_once(self):
        default_l2 = cell_param_defaults()["l2_size"]
        cells = [tiny(), tiny(), tiny(l2_size=default_l2)]
        report = run_cells(cells)
        assert len(report.outcomes) == 1

    def test_parallel_matches_sequential_bit_for_bit(self):
        sequential = run_cells(self.CELLS, jobs=1)
        parallel = run_cells(self.CELLS, jobs=4)
        assert sequential.results.keys() == parallel.results.keys()
        for spec in sequential.results:
            assert_same_result(parallel.results[spec],
                               sequential.results[spec])

    def test_failed_cell_is_isolated(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cells = [tiny(), tiny(benchmark="no-such-benchmark")]
        report = run_cells(cells, cache=cache)
        assert len(report.ran) == 1
        assert len(report.failed) == 1
        assert report.failed[0].error
        assert "FAILED" in report.summary()
        # the failure is not cached
        assert len(cache) == 1

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_cells(self.CELLS, progress=lambda outcome: seen.append(outcome))
        assert len(seen) == 3

    def test_results_grid_keys(self):
        report = run_cells(self.CELLS)
        grid = results_grid(report, variant_params=("l2_size",))
        assert ("gzip", "base", None) in grid
        assert ("twolf", "chash", 256 * KB) in grid


# --------------------------------------------------------------------------
# warm-state sharing in the runner
# --------------------------------------------------------------------------

class TestWarmSharing:
    #: a fig6/fig7-style slice: one warm key, four timing variants
    TIMING_CELLS = [
        tiny(),
        tiny(hash_throughput=0.8),
        tiny(buffer_entries=4),
        tiny(hash_throughput=1.6, buffer_entries=2),
    ]

    def test_shared_matches_unshared_bit_for_bit(self):
        shared = run_cells(self.TIMING_CELLS, share_warm=True)
        unshared = run_cells(self.TIMING_CELLS, share_warm=False)
        assert shared.warm_groups == 1
        assert unshared.warm_groups == 0
        assert shared.results.keys() == unshared.results.keys()
        for spec in shared.results:
            assert_same_result(shared.results[spec], unshared.results[spec])

    def test_shared_parallel_matches_sequential(self):
        sequential = run_cells(self.TIMING_CELLS, jobs=1)
        parallel = run_cells(self.TIMING_CELLS, jobs=4)
        # jobs=4 splits the single warm group to keep workers busy...
        assert parallel.warm_groups > sequential.warm_groups
        # ...without changing a single bit of any result
        for spec in sequential.results:
            assert_same_result(parallel.results[spec],
                               sequential.results[spec])

    def test_exactly_one_warm_per_group(self):
        report = run_cells(self.TIMING_CELLS, share_warm=True)
        warmed = [o for o in report.ran if o.warm_s > 0]
        assert len(warmed) == 1
        assert all(o.measure_s > 0 for o in report.ran)
        assert "warm-up" in report.summary()
        assert "1 shared group" in report.summary()

    def test_execute_group_rows_match_execute_cell(self):
        rows = execute_group(self.TIMING_CELLS)
        assert [spec for spec, *_ in rows] == self.TIMING_CELLS
        for spec, result, _elapsed, _warm, _measure, backend, error in rows:
            assert error is None
            assert backend is not None
            assert_same_result(result, execute_cell(spec))

    def test_group_warm_failure_fails_every_cell(self):
        rows = execute_group([tiny(benchmark="no-such-benchmark"),
                              tiny(benchmark="also-missing")])
        assert all(result is None for _spec, result, *_rest in rows)
        assert all(row[-1] for row in rows)

    def test_failed_cell_isolated_within_group(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cells = [tiny(), tiny(benchmark="no-such-benchmark")]
        report = run_cells(cells, cache=cache)
        assert len(report.ran) == 1 and len(report.failed) == 1
        assert len(cache) == 1

    def test_balance_splits_largest_groups_first(self):
        groups = _balance_groups([self.TIMING_CELLS, [tiny(seed=9)]], jobs=4)
        assert len(groups) == 4
        flattened = [spec for group in groups for spec in group]
        assert sorted(flattened, key=str) == sorted(
            self.TIMING_CELLS + [tiny(seed=9)], key=str)
        assert all(groups)  # no empty group

    def test_balance_never_exceeds_cells_or_splits_singletons(self):
        groups = _balance_groups([[tiny()], [tiny(seed=1)]], jobs=8)
        assert len(groups) == 2
        assert _balance_groups([], jobs=4) == []


# --------------------------------------------------------------------------
# figure grids
# --------------------------------------------------------------------------

class TestFigures:
    def test_fig3_shape(self):
        cells = figure_cells("fig3", benchmarks=["gzip"])
        assert len(cells) == 3 * 2 * 3  # sizes x blocks x schemes
        assert all(cell.benchmark == "gzip" for cell in cells)

    def test_full_grid_counts(self):
        # 9 benchmarks each: fig3=18, fig4=4, fig5=3, fig6=4, fig7=6, fig8=5
        for figure, per_bench in [("fig3", 18), ("fig4", 4), ("fig5", 3),
                                  ("fig6", 4), ("fig7", 6), ("fig8", 5)]:
            assert len(figure_cells(figure)) == per_bench * 9, figure

    def test_figures_share_cells_after_dedupe(self):
        cells = figure_cells("all", benchmarks=["gzip"])
        unique = {cell.normalized() for cell in cells}
        # fig4 and fig5 are pure fig3 subsets; fig6/7/8 share their 1MB
        # chash column with fig3
        assert len(unique) < len(cells)

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError, match="unknown figure"):
            figure_cells("fig99")


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

class TestCli:
    def test_sweep_command(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fig5: IPC" in out
        assert "3 run, 0 cached" in out
        # warm re-run hits the cache for every cell
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 run, 3 cached" in out

    def test_sweep_reports_warm_measure_split(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # per-cell lines carry the split; the summary totals it
        assert "warm" in out and "measure" in out
        assert "shared group" in out

    def test_sweep_no_warm_share_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path),
                "--no-warm-share"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 run, 0 cached" in out
        assert "shared group" not in out
