"""The sweep engine: cells, fingerprints, disk cache, parallel runner.

Every test here runs tiny cells (hundreds of instructions, short warm-up)
so the whole file is a fast smoke path through the real engine — cold run,
cache write, warm run, parallel fan-out — on every pytest invocation.
"""

import dataclasses
import json
import multiprocessing
import os
import threading

import pytest

from repro.common import KB, MB, SchemeKind, SystemConfig
from repro.sim.sweep import (
    CACHE_SCHEMA_VERSION,
    CELL_PARAMS,
    CellSpec,
    CostModel,
    DirectoryStore,
    DiskCellCache,
    HttpStore,
    TieredStore,
    WorkQueue,
    cell_fingerprint,
    cell_param_defaults,
    config_from_dict,
    config_to_dict,
    execute_cell,
    execute_group,
    figure_cells,
    make_store_server,
    open_store,
    resolve_jobs,
    result_from_dict,
    result_to_dict,
    results_grid,
    run_cells,
    warm_fingerprint,
)
from repro.sim.sweep.runner import _balance_groups
from repro.sim.sweep.store import entry_for

# small enough that a cell takes tens of milliseconds
TINY = dict(instructions=400, warmup=300)


def tiny(benchmark="gzip", scheme=SchemeKind.CHASH, **overrides):
    params = {**TINY, **overrides}
    return CellSpec(benchmark, scheme, **params)


def assert_same_result(a, b):
    assert a.cycles == b.cycles
    assert a.stats == b.stats
    assert a.instructions == b.instructions
    assert a.benchmark == b.benchmark
    assert a.scheme == b.scheme


# --------------------------------------------------------------------------
# CellSpec normalization — the shared defaults table
# --------------------------------------------------------------------------

class TestNormalization:
    def test_defaults_table_matches_config(self):
        base = SystemConfig()
        defaults = cell_param_defaults()
        assert defaults["l2_size"] == base.l2.size_bytes
        assert defaults["l2_block"] == base.l2.block_bytes
        assert defaults["l1i_block"] == base.l1i.block_bytes
        assert defaults["hash_throughput"] == base.hash_engine.throughput_gb_per_s
        assert defaults["buffer_entries"] == base.hash_engine.read_buffer_entries
        assert defaults["blocks_per_chunk"] == base.blocks_per_chunk
        assert defaults["write_allocate_valid_bits"] == base.write_allocate_valid_bits
        assert set(defaults) == set(CELL_PARAMS)

    @pytest.mark.parametrize("param", CELL_PARAMS)
    def test_explicit_default_collapses_for_every_param(self, param):
        # the old benchmark-harness normalization only covered three of the
        # six parameters; the shared table must cover them all
        value = cell_param_defaults()[param]
        spec = tiny(**{param: value})
        assert spec.normalized() == tiny()
        assert spec.key() == tiny().key()

    def test_false_valued_default_would_collapse_symmetrically(self):
        # regression guard for the `is True` asymmetry: normalization must
        # key off the *table*, not a hard-coded truthy sentinel
        default = cell_param_defaults()["write_allocate_valid_bits"]
        spec = tiny(write_allocate_valid_bits=default)
        assert spec.normalized().write_allocate_valid_bits is None
        other = tiny(write_allocate_valid_bits=not default)
        assert other.normalized().write_allocate_valid_bits == (not default)

    def test_non_default_values_survive(self):
        spec = tiny(l2_size=256 * KB, blocks_per_chunk=4)
        normalized = spec.normalized()
        assert normalized.l2_size == 256 * KB
        assert normalized.blocks_per_chunk == 4

    def test_build_config_equal_for_equivalent_spellings(self):
        explicit = tiny(l2_size=cell_param_defaults()["l2_size"])
        assert explicit.build_config() == tiny().build_config()

    def test_l1i_block_reaches_the_built_config(self):
        config = tiny(l1i_block=64).build_config()
        assert config.l1i.block_bytes == 64
        base = tiny().build_config()
        assert config.l1i.size_bytes == base.l1i.size_bytes
        assert config.l1i.associativity == base.l1i.associativity

    def test_label_is_compact(self):
        spec = tiny(l2_size=256 * KB, l2_block=128)
        assert spec.label() == "gzip/chash/l2=256K/blk=128"


# --------------------------------------------------------------------------
# fingerprints
# --------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_calls(self):
        assert cell_fingerprint(tiny()) == cell_fingerprint(tiny())

    def test_equivalent_spellings_hash_identically(self):
        defaults = cell_param_defaults()
        explicit = tiny(l2_size=defaults["l2_size"],
                        hash_throughput=defaults["hash_throughput"])
        assert cell_fingerprint(explicit) == cell_fingerprint(tiny())

    @pytest.mark.parametrize("change", [
        dict(benchmark="twolf"),
        dict(scheme=SchemeKind.BASE),
        dict(l2_size=256 * KB),
        dict(l2_block=128),
        dict(l1i_block=64),
        dict(hash_throughput=0.8),
        dict(buffer_entries=4),
        dict(blocks_per_chunk=4),
        dict(write_allocate_valid_bits=False),
        dict(instructions=401),
        dict(warmup=301),
        dict(seed=1),
    ])
    def test_any_parameter_change_changes_fingerprint(self, change):
        base = tiny()
        benchmark = change.pop("benchmark", base.benchmark)
        scheme = change.pop("scheme", base.scheme)
        changed = dataclasses.replace(
            base, benchmark=benchmark, scheme=scheme, **change
        )
        assert cell_fingerprint(changed) != cell_fingerprint(base)

    def test_config_roundtrips_through_dict(self):
        config = tiny(l2_size=256 * KB, blocks_per_chunk=2,
                      scheme=SchemeKind.MHASH).build_config()
        assert config_from_dict(config_to_dict(config)) == config


# --------------------------------------------------------------------------
# the warm fingerprint — which cells may share a warm-up
# --------------------------------------------------------------------------

class TestWarmFingerprint:
    def test_stable_and_spelling_insensitive(self):
        defaults = cell_param_defaults()
        explicit = tiny(l2_size=defaults["l2_size"],
                        hash_throughput=defaults["hash_throughput"])
        assert warm_fingerprint(tiny()) == warm_fingerprint(tiny())
        assert warm_fingerprint(explicit) == warm_fingerprint(tiny())

    @pytest.mark.parametrize("change", [
        dict(hash_throughput=0.8),
        dict(buffer_entries=4),
        dict(instructions=800),
    ])
    def test_timing_only_changes_share_a_warm_key(self, change):
        # fig6 (throughput), fig7 (buffer depth) and measurement-window
        # sweeps redo identical warm-ups — that is the whole point
        assert (warm_fingerprint(dataclasses.replace(tiny(), **change))
                == warm_fingerprint(tiny()))

    @pytest.mark.parametrize("change", [
        dict(benchmark="twolf"),
        dict(scheme=SchemeKind.BASE),
        dict(l2_size=256 * KB),
        dict(l2_block=128),
        dict(l1i_block=64),
        dict(write_allocate_valid_bits=False),
        dict(warmup=301),
        dict(seed=1),
    ])
    def test_state_affecting_changes_split_warm_keys(self, change):
        base = tiny()
        benchmark = change.pop("benchmark", base.benchmark)
        scheme = change.pop("scheme", base.scheme)
        changed = dataclasses.replace(
            base, benchmark=benchmark, scheme=scheme, **change
        )
        assert warm_fingerprint(changed) != warm_fingerprint(base)

    def test_blocks_per_chunk_matters_only_when_tree_uses_it(self):
        # mhash's tree layout depends on the chunk geometry; chash ignores
        # blocks_per_chunk entirely, and base has no tree at all
        for scheme in (SchemeKind.CHASH, SchemeKind.BASE):
            assert (warm_fingerprint(tiny(scheme=scheme, blocks_per_chunk=4))
                    == warm_fingerprint(tiny(scheme=scheme)))
        assert (warm_fingerprint(tiny(scheme=SchemeKind.MHASH,
                                      blocks_per_chunk=4))
                != warm_fingerprint(tiny(scheme=SchemeKind.MHASH)))

    def test_default_warmup_resolves_before_hashing(self):
        # warmup=None and the explicitly resolved count must collide
        from repro.sim.system import default_warmup
        resolved = default_warmup(tiny().build_config())
        assert (warm_fingerprint(tiny(warmup=None))
                == warm_fingerprint(tiny(warmup=resolved)))


# --------------------------------------------------------------------------
# the disk cache
# --------------------------------------------------------------------------

class TestDiskCache:
    def test_roundtrip_returns_equal_result(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        result = execute_cell(spec)
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, result, 0.05)
        restored = cache.get(fingerprint)
        assert_same_result(restored, result)
        assert restored.config == result.config
        assert cache.hits == 1 and len(cache) == 1

    def test_result_serialization_roundtrip(self):
        result = execute_cell(tiny())
        assert_same_result(result_from_dict(result_to_dict(result)), result)

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_logged_miss(self, tmp_path, caplog):
        cache = DiskCellCache(tmp_path)
        fingerprint = cell_fingerprint(tiny())
        cache.path_for(fingerprint).parent.mkdir(exist_ok=True)
        cache.path_for(fingerprint).write_text("{not json at all")
        with caplog.at_level("WARNING"):
            assert cache.get(fingerprint) is None
        assert "unreadable cache entry" in caplog.text

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = cache.path_for(fingerprint)
        path.write_text(path.read_text()[: 40])
        assert cache.get(fingerprint) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = cache.path_for(fingerprint)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(fingerprint) is None

    def test_embedded_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        cache.put(fingerprint, spec, execute_cell(spec), 0.0)
        other = "f" * 64
        cache.path_for(fingerprint).rename(cache.path_for(other))
        assert cache.get(other) is None


# --------------------------------------------------------------------------
# the runner — the engine's fast smoke path, exercised on every test run
# --------------------------------------------------------------------------

class TestRunner:
    CELLS = [
        tiny("gzip", SchemeKind.BASE),
        tiny("gzip", SchemeKind.CHASH),
        tiny("twolf", SchemeKind.CHASH, l2_size=256 * KB),
    ]

    def test_cold_then_warm_sweep(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cold = run_cells(self.CELLS, cache=cache)
        assert len(cold.ran) == 3 and not cold.cached and not cold.failed
        warm = run_cells(self.CELLS, cache=cache)
        assert len(warm.cached) == 3 and not warm.ran
        for spec in cold.results:
            assert_same_result(warm.results[spec], cold.results[spec])
        assert "3 cached" in warm.summary()

    def test_fresh_bypasses_reads_but_overwrites(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        run_cells(self.CELLS, cache=cache)
        fresh = run_cells(self.CELLS, cache=cache, fresh=True)
        assert len(fresh.ran) == 3 and not fresh.cached
        warm = run_cells(self.CELLS, cache=cache)
        assert len(warm.cached) == 3

    def test_no_cache_runs_everything(self, tmp_path):
        report = run_cells(self.CELLS, cache=None)
        assert len(report.ran) == 3
        assert not list(tmp_path.iterdir())

    def test_duplicate_and_equivalent_cells_run_once(self):
        default_l2 = cell_param_defaults()["l2_size"]
        cells = [tiny(), tiny(), tiny(l2_size=default_l2)]
        report = run_cells(cells)
        assert len(report.outcomes) == 1

    def test_parallel_matches_sequential_bit_for_bit(self):
        sequential = run_cells(self.CELLS, jobs=1)
        parallel = run_cells(self.CELLS, jobs=4)
        assert sequential.results.keys() == parallel.results.keys()
        for spec in sequential.results:
            assert_same_result(parallel.results[spec],
                               sequential.results[spec])

    def test_failed_cell_is_isolated(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cells = [tiny(), tiny(benchmark="no-such-benchmark")]
        report = run_cells(cells, cache=cache)
        assert len(report.ran) == 1
        assert len(report.failed) == 1
        assert report.failed[0].error
        assert "FAILED" in report.summary()
        # the failure is not cached
        assert len(cache) == 1

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_cells(self.CELLS, progress=lambda outcome: seen.append(outcome))
        assert len(seen) == 3

    def test_results_grid_keys(self):
        report = run_cells(self.CELLS)
        grid = results_grid(report, variant_params=("l2_size",))
        assert ("gzip", "base", None) in grid
        assert ("twolf", "chash", 256 * KB) in grid


# --------------------------------------------------------------------------
# warm-state sharing in the runner
# --------------------------------------------------------------------------

class TestWarmSharing:
    #: a fig6/fig7-style slice: one warm key, four timing variants
    TIMING_CELLS = [
        tiny(),
        tiny(hash_throughput=0.8),
        tiny(buffer_entries=4),
        tiny(hash_throughput=1.6, buffer_entries=2),
    ]

    def test_shared_matches_unshared_bit_for_bit(self):
        shared = run_cells(self.TIMING_CELLS, share_warm=True)
        unshared = run_cells(self.TIMING_CELLS, share_warm=False)
        assert shared.warm_groups == 1
        assert unshared.warm_groups == 0
        assert shared.results.keys() == unshared.results.keys()
        for spec in shared.results:
            assert_same_result(shared.results[spec], unshared.results[spec])

    def test_shared_parallel_matches_sequential(self):
        sequential = run_cells(self.TIMING_CELLS, jobs=1)
        parallel = run_cells(self.TIMING_CELLS, jobs=4)
        # jobs=4 splits the single warm group to keep workers busy...
        assert parallel.warm_groups > sequential.warm_groups
        # ...without changing a single bit of any result
        for spec in sequential.results:
            assert_same_result(parallel.results[spec],
                               sequential.results[spec])

    def test_exactly_one_warm_per_group(self):
        report = run_cells(self.TIMING_CELLS, share_warm=True)
        warmed = [o for o in report.ran if o.warm_s > 0]
        assert len(warmed) == 1
        assert all(o.measure_s > 0 for o in report.ran)
        assert "warm-up" in report.summary()
        assert "1 shared group" in report.summary()

    def test_execute_group_rows_match_execute_cell(self):
        rows = execute_group(self.TIMING_CELLS)
        assert [spec for spec, *_ in rows] == self.TIMING_CELLS
        for spec, result, _elapsed, _warm, _measure, backend, error in rows:
            assert error is None
            assert backend is not None
            assert_same_result(result, execute_cell(spec))

    def test_group_warm_failure_fails_every_cell(self):
        rows = execute_group([tiny(benchmark="no-such-benchmark"),
                              tiny(benchmark="also-missing")])
        assert all(result is None for _spec, result, *_rest in rows)
        assert all(row[-1] for row in rows)

    def test_failed_cell_isolated_within_group(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        cells = [tiny(), tiny(benchmark="no-such-benchmark")]
        report = run_cells(cells, cache=cache)
        assert len(report.ran) == 1 and len(report.failed) == 1
        assert len(cache) == 1

    def test_balance_splits_largest_groups_first(self):
        groups = _balance_groups([self.TIMING_CELLS, [tiny(seed=9)]], jobs=4)
        assert len(groups) == 4
        flattened = [spec for group in groups for spec in group]
        assert sorted(flattened, key=str) == sorted(
            self.TIMING_CELLS + [tiny(seed=9)], key=str)
        assert all(groups)  # no empty group

    def test_balance_never_exceeds_cells_or_splits_singletons(self):
        groups = _balance_groups([[tiny()], [tiny(seed=1)]], jobs=8)
        assert len(groups) == 2
        assert _balance_groups([], jobs=4) == []


# --------------------------------------------------------------------------
# figure grids
# --------------------------------------------------------------------------

class TestFigures:
    def test_fig3_shape(self):
        cells = figure_cells("fig3", benchmarks=["gzip"])
        assert len(cells) == 3 * 2 * 3  # sizes x blocks x schemes
        assert all(cell.benchmark == "gzip" for cell in cells)

    def test_full_grid_counts(self):
        # 9 benchmarks each: fig3=18, fig4=4, fig5=3, fig6=4, fig7=6, fig8=5
        for figure, per_bench in [("fig3", 18), ("fig4", 4), ("fig5", 3),
                                  ("fig6", 4), ("fig7", 6), ("fig8", 5)]:
            assert len(figure_cells(figure)) == per_bench * 9, figure

    def test_figures_share_cells_after_dedupe(self):
        cells = figure_cells("all", benchmarks=["gzip"])
        unique = {cell.normalized() for cell in cells}
        # fig4 and fig5 are pure fig3 subsets; fig6/7/8 share their 1MB
        # chash column with fig3
        assert len(unique) < len(cells)

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError, match="unknown figure"):
            figure_cells("fig99")


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

class TestCli:
    def test_sweep_command(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fig5: IPC" in out
        assert "3 run, 0 cached" in out
        # warm re-run hits the cache for every cell
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 run, 3 cached" in out

    def test_sweep_reports_warm_measure_split(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # per-cell lines carry the split; the summary totals it
        assert "warm" in out and "measure" in out
        assert "shared group" in out

    def test_sweep_no_warm_share_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path),
                "--no-warm-share"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 run, 0 cached" in out
        assert "shared group" not in out


# --------------------------------------------------------------------------
# the tiered store — local L1, shared L2
# --------------------------------------------------------------------------

def tiered(tmp_path):
    """A fresh TieredStore with distinct local and shared directories."""
    local = DirectoryStore(tmp_path / "local")
    shared = DirectoryStore(tmp_path / "shared", label="shared")
    return TieredStore(local, shared)


class TestTieredStore:
    def test_put_writes_both_tiers(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        store.put(cell_fingerprint(spec), spec, execute_cell(spec), 0.05)
        assert len(store.local) == 1
        assert len(store.shared) == 1

    def test_l2_hit_hydrates_l1(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        result = execute_cell(spec)
        # populate only the shared tier, as another host would have
        store.shared.put(fingerprint, spec, result, 0.05)
        assert len(store.local) == 0
        fetched = store.fetch(fingerprint)
        assert fetched.tier == "shared"
        assert_same_result(fetched.result, result)
        # the hit was hydrated: the next fetch never leaves this host
        assert len(store.local) == 1
        assert store.fetch(fingerprint).tier == "local"

    def test_corrupt_shared_entry_degrades_to_miss(self, tmp_path, caplog):
        store = tiered(tmp_path)
        fingerprint = cell_fingerprint(tiny())
        store.shared.root.mkdir(parents=True)
        store.shared.path_for(fingerprint).write_text("{not json at all")
        with caplog.at_level("WARNING"):
            assert store.get(fingerprint) is None
        assert "unreadable cache entry" in caplog.text
        assert store.misses == 1
        assert len(store.local) == 0  # nothing bad was hydrated

    def test_truncated_shared_entry_degrades_to_miss(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        store.shared.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = store.shared.path_for(fingerprint)
        path.write_text(path.read_text()[: 40])
        assert store.get(fingerprint) is None
        assert len(store.local) == 0

    def test_schema_mismatched_shared_entry_degrades_to_miss(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        store.shared.put(fingerprint, spec, execute_cell(spec), 0.0)
        path = store.shared.path_for(fingerprint)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(fingerprint) is None

    def test_second_sweep_against_populated_shared_runs_nothing(self,
                                                                tmp_path):
        cells = TestRunner.CELLS
        # host A populates the shared store...
        host_a = tiered(tmp_path / "a")
        shared_root = host_a.shared.root
        cold = run_cells(cells, cache=host_a)
        assert len(cold.ran) == 3
        # ...host B (cold local cache, same shared store) runs zero cells
        host_b = TieredStore(DirectoryStore(tmp_path / "b-local"),
                             DirectoryStore(shared_root, label="shared"))
        warm = run_cells(cells, cache=host_b)
        assert not warm.ran and len(warm.cached) == 3
        assert warm.cached_by_tier() == {"shared": 3}
        for spec in cold.results:
            assert_same_result(warm.results[spec], cold.results[spec])
        # every hit was hydrated into B's local tier...
        assert len(host_b.local) == 3
        # ...so a third sweep is pure L1
        third = run_cells(cells, cache=host_b)
        assert third.cached_by_tier() == {"local": 3}

    def test_bit_identity_across_tiers_and_jobs(self, tmp_path):
        cells = TestRunner.CELLS + TestWarmSharing.TIMING_CELLS
        baseline = run_cells(cells, jobs=1,
                             cache=DiskCellCache(tmp_path / "plain"))
        stolen = run_cells(cells, jobs=4, cache=tiered(tmp_path))
        assert baseline.results.keys() == stolen.results.keys()
        for spec in baseline.results:
            assert_same_result(stolen.results[spec], baseline.results[spec])

    def test_summary_reports_tier_split(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        store.shared.put(cell_fingerprint(spec), spec, execute_cell(spec),
                         0.05)
        report = run_cells([spec, tiny(seed=9)], cache=store)
        summary = report.summary()
        assert "0 local (L1) hits" in summary
        assert "1 shared (L2) hits" in summary
        assert "1 misses" in summary

    def test_cost_history_merges_tiers(self, tmp_path):
        store = tiered(tmp_path)
        spec = tiny()
        store.put(cell_fingerprint(spec), spec, execute_cell(spec), 2.0)
        merged = store.cost_history()
        # the same cell was costed in both tiers; the merge sums them
        assert merged["gzip/chash"]["cells"] == 2
        assert merged["gzip/chash"]["total_s"] == pytest.approx(4.0)

    def test_open_store_picks_transport(self, tmp_path):
        assert isinstance(open_store(str(tmp_path)), DirectoryStore)
        assert isinstance(open_store("http://127.0.0.1:1"), HttpStore)
        assert isinstance(open_store("https://example.test/x"), HttpStore)


# --------------------------------------------------------------------------
# concurrent writers and failure cleanup
# --------------------------------------------------------------------------

def _hammer_store(root, fingerprint, entry, start, rounds=25):
    """Child-process body: race ``rounds`` writes of the same entry."""
    store = DirectoryStore(root)
    start.wait(timeout=10)
    for _ in range(rounds):
        store.write_entry(fingerprint, entry)


class TestConcurrentWriters:
    def test_racing_puts_leave_a_valid_entry(self, tmp_path):
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        result = execute_cell(spec)
        entry = entry_for(fingerprint, spec, result, 0.05)
        context = multiprocessing.get_context("fork")
        start = context.Event()
        writers = [
            context.Process(target=_hammer_store,
                            args=(tmp_path, fingerprint, entry, start))
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        start.set()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        # both writers survived and a reader sees one valid entry...
        store = DirectoryStore(tmp_path)
        assert_same_result(store.get(fingerprint), result)
        assert len(store) == 1
        # ...with no half-written temporary droppings left behind
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_failed_replace_cleans_up_tmp(self, tmp_path, monkeypatch,
                                          caplog):
        store = DirectoryStore(tmp_path)
        spec = tiny()

        def refuse(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", refuse)
        with caplog.at_level("WARNING"):
            store.put(cell_fingerprint(spec), spec, execute_cell(spec), 0.0)
        assert "could not write cache entry" in caplog.text
        monkeypatch.undo()
        # neither the entry nor its temporary file exists afterwards
        assert list(tmp_path.iterdir()) == []

    def test_tmp_names_are_unique_per_write(self, tmp_path, monkeypatch):
        store = DirectoryStore(tmp_path)
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        spec = tiny()
        result = execute_cell(spec)
        for _ in range(3):
            store.put(cell_fingerprint(spec), spec, result, 0.0)
        tmp_names = [name for name in seen if ".tmp-" in name]
        assert len(tmp_names) >= 3
        assert len(set(tmp_names)) == len(tmp_names)


# --------------------------------------------------------------------------
# pruning
# --------------------------------------------------------------------------

class TestPrune:
    def _populate(self, root):
        store = DirectoryStore(root)
        spec = tiny()
        store.put(cell_fingerprint(spec), spec, execute_cell(spec), 0.0)
        # a dropping from a killed writer, and a corrupt entry
        (root / ("e" * 64 + ".json.tmp-deadhost-1-0")).write_text("partial")
        (root / ("f" * 64 + ".json")).write_text("{broken")
        return store

    def test_prune_removes_droppings_and_bad_entries(self, tmp_path):
        store = self._populate(tmp_path)
        report = store.prune()
        assert report.removed == 2
        assert report.kept == 1
        assert report.reclaimed_bytes > 0
        assert "pruned 2 file(s)" in report.summary()
        # the good entry survived and still reads back
        assert len(store) == 1
        assert store.get(cell_fingerprint(tiny())) is not None

    def test_tmp_only_prune_keeps_bad_entries(self, tmp_path):
        store = self._populate(tmp_path)
        report = store.prune(remove_entries=False)
        assert report.removed == 1  # just the dropping
        assert (tmp_path / ("f" * 64 + ".json")).exists()
        assert not list(tmp_path.glob("*.tmp*"))
        assert report.kept == 2

    def test_costs_sidecar_is_not_an_entry(self, tmp_path):
        store = DirectoryStore(tmp_path)
        spec = tiny()
        store.put(cell_fingerprint(spec), spec, execute_cell(spec), 1.5)
        assert (tmp_path / "_costs.json").exists()
        # the sidecar is neither counted nor pruned
        assert len(store) == 1
        store.prune()
        assert (tmp_path / "_costs.json").exists()


# --------------------------------------------------------------------------
# the HTTP store pair — stdlib coordinator + client
# --------------------------------------------------------------------------

@pytest.fixture()
def store_server(tmp_path):
    server = make_store_server(tmp_path / "served", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestHttpStore:
    def test_roundtrip_and_miss(self, store_server):
        client = HttpStore(store_server)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        assert client.get(fingerprint) is None
        assert client.misses == 1
        result = execute_cell(spec)
        client.put(fingerprint, spec, result, 0.05)
        assert_same_result(client.get(fingerprint), result)
        assert client.hits == 1

    def test_tiered_sweep_over_http(self, tmp_path, store_server):
        cells = TestRunner.CELLS
        host_a = TieredStore(DirectoryStore(tmp_path / "a"),
                             HttpStore(store_server))
        cold = run_cells(cells, cache=host_a)
        assert len(cold.ran) == 3
        host_b = TieredStore(DirectoryStore(tmp_path / "b"),
                             HttpStore(store_server))
        warm = run_cells(cells, cache=host_b)
        assert not warm.ran and warm.cached_by_tier() == {"shared": 3}
        for spec in cold.results:
            assert_same_result(warm.results[spec], cold.results[spec])

    def test_server_rejects_invalid_put(self, store_server, caplog):
        client = HttpStore(store_server)
        fingerprint = cell_fingerprint(tiny())
        bad = {"schema": CACHE_SCHEMA_VERSION + 1, "fingerprint": fingerprint}
        with caplog.at_level("WARNING"):
            client.submit_entry(fingerprint, bad)  # logged, never raised
        assert "could not write cache entry" in caplog.text
        assert client.get(fingerprint) is None  # nothing was poisoned

    def test_cost_history_over_http(self, store_server):
        client = HttpStore(store_server)
        spec = tiny()
        client.put(cell_fingerprint(spec), spec, execute_cell(spec), 2.5)
        history = client.cost_history()
        assert history["gzip/chash"]["cells"] == 1
        assert history["gzip/chash"]["total_s"] == pytest.approx(2.5)

    def test_unreachable_server_is_a_miss(self, caplog):
        client = HttpStore("http://127.0.0.1:9", timeout=0.5)
        spec = tiny()
        with caplog.at_level("WARNING"):
            assert client.get(cell_fingerprint(spec)) is None
        assert client.misses == 1
        assert "unreadable cache entry" in caplog.text
        # writes degrade the same way: logged, not raised
        client.put(cell_fingerprint(spec), spec, execute_cell(spec), 0.0)


# --------------------------------------------------------------------------
# cost model + work-stealing queue
# --------------------------------------------------------------------------

class TestSchedule:
    HISTORY = {
        "gzip/chash": {"total_s": 4.0, "cells": 2},    # 2.0 s/cell
        "twolf/chash": {"total_s": 12.0, "cells": 2},  # 6.0 s/cell
    }

    def test_cost_model_averages_history(self):
        model = CostModel(self.HISTORY)
        assert model.cell_cost(tiny()) == pytest.approx(2.0)
        assert model.cell_cost(tiny("twolf")) == pytest.approx(6.0)
        # unseen families get the global mean, in this machine's units
        assert model.cell_cost(tiny("mcf")) == pytest.approx(4.0)

    def test_cost_model_without_history_is_uniform(self):
        model = CostModel()
        assert model.cell_cost(tiny()) == model.cell_cost(tiny("twolf"))

    def test_cost_model_from_store_after_a_sweep(self, tmp_path):
        cache = DiskCellCache(tmp_path)
        run_cells(TestRunner.CELLS, cache=cache)
        model = CostModel.from_store(cache)
        assert "gzip/base" in model.history
        assert "gzip/chash" in model.history
        assert all(cost > 0 for cost in model.history.values())

    def test_queue_dispatches_costliest_group_first(self):
        cheap, costly = [tiny()], [tiny("twolf")]
        queue = WorkQueue([cheap, costly], CostModel(self.HISTORY))
        assert queue.take(1) == costly
        assert queue.take(1) == cheap
        assert queue.take(1) is None
        assert queue.dispatched == 2 and queue.splits == 0

    def test_queue_splits_to_feed_idle_workers(self):
        cells = TestWarmSharing.TIMING_CELLS
        queue = WorkQueue([list(cells)])
        first = queue.take(4)  # 4 idle workers, 1 group: must split
        assert queue.splits >= 1
        dispatched = list(first)
        while True:
            group = queue.take(4)
            if group is None:
                break
            dispatched.extend(group)
        # splits shuffle grouping, never membership
        assert sorted(dispatched, key=str) == sorted(cells, key=str)

    def test_queue_never_splits_singletons(self):
        queue = WorkQueue([[tiny()], [tiny(seed=1)]])
        assert queue.take(8) is not None
        assert queue.take(8) is not None
        assert queue.take(8) is None
        assert queue.splits == 0

    def test_queue_dispatch_is_deterministic(self):
        def labels():
            queue = WorkQueue([list(TestWarmSharing.TIMING_CELLS),
                               [tiny(seed=9)], [tiny("twolf")]],
                              CostModel(self.HISTORY))
            sequence = []
            while True:
                group = queue.take(3)
                if group is None:
                    return sequence
                sequence.append([spec.label() for spec in group])
        assert labels() == labels()

    def test_sweep_reports_steals(self, tmp_path):
        report = run_cells(TestWarmSharing.TIMING_CELLS, jobs=4,
                           cache=DiskCellCache(tmp_path))
        assert report.steals >= 1
        assert "work stealing" in report.summary()

    def test_resolve_jobs(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(1) == 1
        assert resolve_jobs(-3) == 1
        assert run_cells([tiny()], jobs=0).jobs == (os.cpu_count() or 1)


# --------------------------------------------------------------------------
# CLI: stores, pruning, auto jobs
# --------------------------------------------------------------------------

class TestCliStore:
    def test_sweep_store_flag_pools_hosts(self, tmp_path, capsys):
        from repro.__main__ import main
        shared = tmp_path / "pool"
        base = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--store", str(shared)]
        assert main(base + ["--cache-dir", str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "3 run, 0 cached" in out
        # a second host (cold local cache) is satisfied entirely by L2
        assert main(base + ["--cache-dir", str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "0 run, 3 cached" in out
        assert "3 shared (L2) hits" in out
        assert "[cached L2 shared]" in out

    def test_sweep_reads_store_env(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "pool"))
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path / "a")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert str(tmp_path / "pool") in out  # the store counters name it

    def test_sweep_jobs_zero_means_auto(self, tmp_path, capsys):
        from repro.__main__ import main
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(tmp_path),
                "--jobs", "0"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"({os.cpu_count() or 1} jobs)" in out

    def test_sweep_prune_tmp_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / ("e" * 64 + ".json.tmp-deadhost-1-0")).write_text("junk")
        argv = ["sweep", "--figure", "fig5", "--benchmarks", "gzip",
                "--instructions", "400", "--cache-dir", str(cache_dir),
                "--prune-tmp"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pruned 1 tmp dropping(s)" in out
        assert not list(cache_dir.glob("*.tmp*"))

    def test_cache_prune_command(self, tmp_path, capsys):
        from repro.__main__ import main
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / ("e" * 64 + ".json.tmp-deadhost-1-0")).write_text("junk")
        (cache_dir / ("f" * 64 + ".json")).write_text("{broken")
        assert main(["cache", "prune", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 file(s)" in out
        assert not list(cache_dir.iterdir())
