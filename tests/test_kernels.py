"""Bit-identity and plumbing of the ``repro.kernels`` backends.

The vectorized kernel backends (``numpy`` and the pure-Python
``fallback``) are only allowed to change *wall-clock*, never results:
for every scheme, access pattern and L1-I geometry each backend must
produce the same cycle count, instruction count, full statistics dict
and hierarchy end state as the interpreted packed oracle
(``REPRO_KERNELS=packed``), which is itself bit-identical to the
per-``Instruction`` object oracle (``tests/test_measured_packed.py``).
Alongside the equivalence grid live the edge cases the prepass must not
mishandle (same-set dependent runs, chunk-boundary straddles, eviction
storms, wide L1-I lines), the strict environment parsing for
``REPRO_KERNELS``/``REPRO_MEASURE``, the warm-state trace cache, and
the rule that backend choice is execution metadata — never cell
identity.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.kernels as kernels_pkg
from repro.common.config import SchemeKind, SystemConfig, table1_config
from repro.common.packed import (
    MEAS_ALU,
    MEAS_BRANCH,
    MEAS_BRANCH_MISPREDICT,
    MEAS_FP,
    MEAS_LOAD,
    MEAS_STORE,
    MEAS_STORE_FULL,
)
from repro.kernels import (
    KERNEL_BACKENDS,
    KERNELS_ENV,
    load_ops,
    numpy_available,
    resolve_kernels,
)
from repro.sim.system import (
    MEASURE_PATH_ENV,
    SimulatedSystem,
    packed_measure_default,
    prepare_warm_state,
    run_from_warm_state,
)
from repro.sim.sweep.fingerprint import cell_fingerprint, warm_fingerprint
from repro.sim.sweep.runner import resolved_backend
from repro.sim.sweep.spec import CellSpec
from repro.workloads.generators import InstructionStream
from repro.workloads.spec import SPEC_PROFILES

ALL_SCHEMES = (SchemeKind.BASE, SchemeKind.NAIVE, SchemeKind.CHASH,
               SchemeKind.MHASH, SchemeKind.IHASH)

#: one profile per access pattern (wset, random, stream)
IDENTITY_BENCHMARKS = ("gcc", "mcf", "swim")

#: the vectorized backends available in this environment; ``fallback``
#: is always importable, ``numpy`` only with the ``[perf]`` extra.
VEC_BACKENDS = (("numpy", "fallback") if numpy_available()
                else ("fallback",))

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


def with_l1i_block(config: SystemConfig, block_bytes: int) -> SystemConfig:
    """``config`` with its L1 I-cache rebuilt on ``block_bytes`` lines."""
    return dataclasses.replace(
        config,
        l1i=dataclasses.replace(config.l1i, block_bytes=block_bytes),
    )


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Ambient overrides must not leak into the equivalence grid."""
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    monkeypatch.delenv(MEASURE_PATH_ENV, raising=False)


# ---------------------------------------------------------------------------
# backend selection + strict environment parsing
# ---------------------------------------------------------------------------


class TestBackendResolution:
    """``resolve_kernels`` picks the best backend and rejects typos."""

    def test_registry_spellings(self):
        assert KERNEL_BACKENDS == ("auto", "numpy", "fallback", "packed")

    @needs_numpy
    def test_auto_prefers_numpy(self):
        assert resolve_kernels() == "numpy"
        assert resolve_kernels("auto") == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels_pkg, "numpy_available", lambda: False)
        assert resolve_kernels() == "fallback"
        assert resolve_kernels("auto") == "fallback"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "fallback")
        assert resolve_kernels() == "fallback"
        # an explicit request wins over the environment
        assert resolve_kernels("packed") == "packed"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernels backend"):
            resolve_kernels("vectorised")
        monkeypatch.setenv(KERNELS_ENV, "npy")
        with pytest.raises(ValueError, match="npy"):
            resolve_kernels()

    def test_load_ops_names(self):
        assert load_ops("fallback").NAME == "fallback"
        if numpy_available():
            assert load_ops("numpy").NAME == "numpy"

    def test_load_ops_rejects_non_backends(self):
        with pytest.raises(ValueError):
            load_ops("auto")
        with pytest.raises(ValueError):
            load_ops("packed")


class TestStrictMeasureEnv:
    """``REPRO_MEASURE`` accepts exactly ``packed`` and ``object``."""

    def test_valid_values(self, monkeypatch):
        assert packed_measure_default()  # unset -> packed
        monkeypatch.setenv(MEASURE_PATH_ENV, "packed")
        assert packed_measure_default()
        monkeypatch.setenv(MEASURE_PATH_ENV, "object")
        assert not packed_measure_default()

    def test_unknown_value_rejected(self, monkeypatch):
        monkeypatch.setenv(MEASURE_PATH_ENV, "obj")
        with pytest.raises(ValueError, match="unknown measured path"):
            packed_measure_default()


# ---------------------------------------------------------------------------
# property-based equivalence: object -> packed -> vectorized
# ---------------------------------------------------------------------------


def kernel_results(config, bench, instructions=2_000, warmup=6_000):
    """The packed oracle plus every vectorized backend, from one shared
    warm state (exactly how the sweep runner consumes the backends)."""
    state = prepare_warm_state(config, bench, warmup=warmup)
    oracle = run_from_warm_state(config, bench, state,
                                 instructions=instructions,
                                 kernels="packed")
    results = {
        backend: run_from_warm_state(config, bench, state,
                                     instructions=instructions,
                                     kernels=backend)
        for backend in VEC_BACKENDS
    }
    return oracle, results


class TestBitIdentity:
    """Each vectorized backend equals the packed oracle: cycles,
    instruction count and the full stats dict, for every scheme ×
    pattern × L1-I geometry."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("bench", IDENTITY_BENCHMARKS)
    def test_default_geometry(self, scheme, bench):
        oracle, results = kernel_results(table1_config(scheme), bench)
        for backend, result in results.items():
            assert result.cycles == oracle.cycles, backend
            assert result.instructions == oracle.instructions, backend
            assert result.stats == oracle.stats, backend

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_wide_l1i_geometry(self, scheme):
        config = with_l1i_block(table1_config(scheme), 64)
        oracle, results = kernel_results(config, "gcc")
        for backend, result in results.items():
            assert result.cycles == oracle.cycles, backend
            assert result.stats == oracle.stats, backend

    @pytest.mark.parametrize("bench", IDENTITY_BENCHMARKS)
    def test_object_oracle_chain(self, monkeypatch, bench):
        """The full chain in one place: the object oracle equals the
        vectorized backends (packed sits in between, covered above)."""
        config = table1_config(SchemeKind.CHASH)
        state = prepare_warm_state(config, bench, warmup=6_000)
        monkeypatch.setenv(MEASURE_PATH_ENV, "object")
        oracle = run_from_warm_state(config, bench, state,
                                     instructions=2_000)
        monkeypatch.setenv(MEASURE_PATH_ENV, "packed")
        for backend in VEC_BACKENDS:
            result = run_from_warm_state(config, bench, state,
                                         instructions=2_000,
                                         kernels=backend)
            assert result.cycles == oracle.cycles, backend
            assert result.instructions == oracle.instructions, backend
            assert result.stats == oracle.stats, backend


class TestWarmBackends:
    """``warm_vec`` produces the same warmed hierarchy as ``warm_packed``
    — snapshot-identical, so warm fingerprints can ignore the backend."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_warm_state_identical_across_backends(self, scheme):
        config = table1_config(scheme)
        reference = prepare_warm_state(config, "gcc", warmup=6_000,
                                       kernels="packed")
        for backend in VEC_BACKENDS:
            state = prepare_warm_state(config, "gcc", warmup=6_000,
                                       kernels=backend)
            assert state.snapshot == reference.snapshot, backend
            assert state.stream_state == reference.stream_state, backend


# ---------------------------------------------------------------------------
# edge cases the prepass must not mishandle
# ---------------------------------------------------------------------------


def copy_chunks(chunks):
    """A deep copy, so each backend consumes pristine columns."""
    return [tuple(list(column) for column in chunk) for chunk in chunks]


def run_cold(config, chunks, kernels):
    """Run ``chunks`` on a cold system; results plus the end state."""
    system = SimulatedSystem(config)
    result = system.run_chunks(copy_chunks(chunks), kernels=kernels)
    return result, system.hierarchy.snapshot()


def assert_backends_match_oracle(config, chunks):
    oracle, end_state = run_cold(config, chunks, "packed")
    for backend in VEC_BACKENDS:
        result, state = run_cold(config, chunks, backend)
        assert result.cycles == oracle.cycles, backend
        assert result.instructions == oracle.instructions, backend
        assert result.stats == oracle.stats, backend
        assert state == end_state, backend


class TestPrepassEdgeCases:
    """Synthetic column chunks aimed at the prepass's weak spots."""

    def test_same_set_dependent_runs(self):
        """Loads chained by distance-1 dependencies, cycling over two more
        blocks than one L1D set holds — every access both conflicts and
        depends on the previous row's completion."""
        config = table1_config(SchemeKind.CHASH)
        l1d = config.l1d
        stride = l1d.n_sets * l1d.block_bytes
        ways = l1d.associativity + 2
        rows = 768
        kinds, pcs, addresses = [], [], []
        dep1s, dep2s, latencies = [], [], []
        for i in range(rows):
            kinds.append(MEAS_LOAD if i % 3 else MEAS_STORE)
            pcs.append(0x1000 + 4 * i)
            addresses.append(0x4000 + (i % ways) * stride)
            dep1s.append(1 if i else 0)
            dep2s.append(0)
            latencies.append(1)
        chunks = [(kinds, pcs, addresses, dep1s, dep2s, latencies)]
        assert_backends_match_oracle(config, chunks)

    def test_eviction_storm(self):
        """A block-stride sweep over 4x the L1D with full-block stores
        mixed in: nearly every row misses and most evict a dirty block."""
        config = table1_config(SchemeKind.MHASH)
        l1d = config.l1d
        footprint = 4 * l1d.n_blocks
        rows = 1_024
        kinds, pcs, addresses = [], [], []
        dep1s, dep2s, latencies = [], [], []
        for i in range(rows):
            kinds.append(MEAS_STORE_FULL if i % 4 == 3 else MEAS_LOAD)
            pcs.append(0x2000 + 4 * (i % 64))
            addresses.append(0x8000 + (i % footprint) * l1d.block_bytes)
            dep1s.append(0)
            dep2s.append(0)
            latencies.append(1)
        chunks = [(kinds, pcs, addresses, dep1s, dep2s, latencies)]
        assert_backends_match_oracle(config, chunks)

    def test_compute_and_mispredict_mix(self):
        """ALU/FP/branch rows (including mispredicts) interleaved with
        loads: the non-memory latencies and the redirect penalty must
        survive the vectorized precomputation."""
        config = table1_config(SchemeKind.BASE)
        pattern = (
            (MEAS_ALU, 1), (MEAS_FP, 4), (MEAS_LOAD, 1),
            (MEAS_BRANCH, 1), (MEAS_ALU, 1),
            (MEAS_BRANCH_MISPREDICT, 1), (MEAS_FP, 4), (MEAS_LOAD, 1),
        )
        rows = 640
        kinds, pcs, addresses = [], [], []
        dep1s, dep2s, latencies = [], [], []
        for i in range(rows):
            kind, latency = pattern[i % len(pattern)]
            kinds.append(kind)
            pcs.append(0x3000 + 4 * i)
            addresses.append(0x6000 + (i * 8) % 4_096
                             if kind == MEAS_LOAD else 0)
            dep1s.append(2 if i >= 2 else 0)
            dep2s.append(5 if i >= 5 and i % 7 == 0 else 0)
            latencies.append(latency)
        chunks = [(kinds, pcs, addresses, dep1s, dep2s, latencies)]
        assert_backends_match_oracle(config, chunks)

    @pytest.mark.parametrize("backend", VEC_BACKENDS)
    def test_chunk_boundary_straddles(self, backend):
        """Re-chunking the same stream (odd 97-row chunks vs one big
        chunk) cannot change results: line runs and page runs straddling
        chunk boundaries must carry over exactly."""
        config = table1_config(SchemeKind.CHASH)
        profile = SPEC_PROFILES["gcc"]
        n = 2_000
        whole = list(InstructionStream(profile, 0).take_packed(
            n, chunk_instructions=n))
        straddled = list(InstructionStream(profile, 0).take_packed(
            n, chunk_instructions=97))
        oracle, end_state = run_cold(config, whole, "packed")
        for chunks in (whole, straddled):
            result, state = run_cold(config, chunks, backend)
            assert result.cycles == oracle.cycles
            assert result.stats == oracle.stats
            assert state == end_state

    @pytest.mark.parametrize("backend", VEC_BACKENDS)
    def test_columns_are_not_mutated(self, backend):
        """The warm-state trace cache hands the *same* column lists to
        every cell and repeat — a backend that wrote into them would
        corrupt every later run."""
        config = table1_config(SchemeKind.CHASH)
        profile = SPEC_PROFILES["mcf"]
        chunks = list(InstructionStream(profile, 0).take_packed(
            1_500, chunk_instructions=512))
        pristine = copy_chunks(chunks)
        system = SimulatedSystem(config)
        system.run_chunks(chunks, kernels=backend)
        assert chunks == pristine


# ---------------------------------------------------------------------------
# warm-state trace cache
# ---------------------------------------------------------------------------


class TestTraceCache:
    """``WarmState.measured_chunks`` shares one generation pass across
    cells and repeats without changing any result."""

    def test_chunks_cached_per_count(self):
        config = table1_config(SchemeKind.BASE)
        state = prepare_warm_state(config, "gcc", warmup=6_000)
        first = state.measured_chunks(1_000)
        assert state.measured_chunks(1_000) is first
        assert state.measured_chunks(500) is not first
        # the cached trace is exactly the parked stream's suffix
        stream = InstructionStream.from_state(state.profile,
                                              state.stream_state)
        assert first == list(stream.take_packed(1_000))

    def test_repeats_from_one_state_are_identical(self):
        config = table1_config(SchemeKind.CHASH)
        state = prepare_warm_state(config, "swim", warmup=6_000)
        first = run_from_warm_state(config, "swim", state,
                                    instructions=1_500)
        second = run_from_warm_state(config, "swim", state,
                                     instructions=1_500)
        assert second.cycles == first.cycles
        assert second.stats == first.stats

    def test_packed_oracle_regenerates(self):
        """The ``packed`` escape hatch preserves the reference pipeline:
        it streams from the parked state and never populates the cache."""
        config = table1_config(SchemeKind.BASE)
        state = prepare_warm_state(config, "gcc", warmup=6_000)
        run_from_warm_state(config, "gcc", state, instructions=1_000,
                            kernels="packed")
        assert not state._traces
        run_from_warm_state(config, "gcc", state, instructions=1_000)
        assert list(state._traces) == [1_000]


# ---------------------------------------------------------------------------
# backend choice is metadata, never identity
# ---------------------------------------------------------------------------


class TestBackendIsNotCellIdentity:
    """Two specs differing only in ``kernels`` are the same cell."""

    def test_equality_hash_and_key(self):
        plain = CellSpec(benchmark="gzip", scheme=SchemeKind.CHASH)
        pinned = CellSpec(benchmark="gzip", scheme=SchemeKind.CHASH,
                          kernels="fallback")
        assert plain == pinned
        assert hash(plain) == hash(pinned)
        assert plain.key() == pinned.key()

    def test_fingerprints_ignore_backend(self):
        plain = CellSpec(benchmark="gzip", scheme=SchemeKind.CHASH,
                         instructions=1_000, warmup=2_000)
        pinned = CellSpec(benchmark="gzip", scheme=SchemeKind.CHASH,
                          instructions=1_000, warmup=2_000,
                          kernels="packed")
        assert cell_fingerprint(plain) == cell_fingerprint(pinned)
        assert warm_fingerprint(plain) == warm_fingerprint(pinned)

    def test_resolved_backend(self, monkeypatch):
        spec = CellSpec(benchmark="gzip", scheme=SchemeKind.BASE,
                        kernels="fallback")
        assert resolved_backend(spec) == "fallback"
        auto = CellSpec(benchmark="gzip", scheme=SchemeKind.BASE)
        assert resolved_backend(auto) == resolve_kernels()
        monkeypatch.setenv(MEASURE_PATH_ENV, "object")
        assert resolved_backend(spec) == "object"
