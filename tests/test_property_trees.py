"""Property-based tests: all four trees are a correct, tamper-evident RAM.

Two core properties, checked with hypothesis-generated operation sequences:

1. **Shadow equivalence** — an arbitrary interleaving of reads, writes and
   flushes behaves exactly like a plain byte array.
2. **Tamper evidence** — after any sequence of operations and a flush, any
   single-byte corruption of the tree's physical memory is detected by a
   subsequent full sweep (or, for data the program never re-reads, is
   harmless because rewritten).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import IntegrityError
from repro.hashtree import (
    CachedHashTree,
    HashTree,
    IncrementalMacTree,
    MultiBlockHashTree,
    TreeLayout,
)
from repro.memory import UntrustedMemory

DATA_BYTES = 32 * 64  # small segment keeps hypothesis fast


def build_tree(kind: str, capacity: int):
    if kind in ("mhash", "ihash"):
        layout = TreeLayout(DATA_BYTES, 128, 16)
    else:
        layout = TreeLayout(DATA_BYTES, 64, 16)
    memory = UntrustedMemory(layout.physical_bytes)
    if kind == "naive":
        tree = HashTree(memory, layout)
        tree.build()
    elif kind == "chash":
        tree = CachedHashTree(memory, layout, capacity_chunks=max(2, capacity))
        tree.initialize_by_touch()
    elif kind == "mhash":
        tree = MultiBlockHashTree(memory, layout, blocks_per_chunk=2,
                                  capacity_blocks=max(6, capacity))
        tree.initialize_from_memory()
    else:
        tree = IncrementalMacTree(memory, layout, blocks_per_chunk=2,
                                  capacity_blocks=max(6, capacity))
        tree.initialize_from_memory()
    return memory, tree


operation = st.one_of(
    st.tuples(st.just("write"),
              st.integers(0, DATA_BYTES - 1),
              st.binary(min_size=1, max_size=96)),
    st.tuples(st.just("read"),
              st.integers(0, DATA_BYTES - 1),
              st.integers(1, 96)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
)


@pytest.mark.parametrize("kind", ["naive", "chash", "mhash", "ihash"])
@given(ops=st.lists(operation, max_size=30), capacity=st.integers(2, 40))
@settings(max_examples=25, deadline=None)
def test_shadow_equivalence(kind, ops, capacity):
    _, tree = build_tree(kind, capacity)
    shadow = bytearray(DATA_BYTES)
    for name, address, argument in ops:
        if name == "write":
            data = argument[: DATA_BYTES - address]
            if not data:
                continue
            tree.write(address, data)
            shadow[address: address + len(data)] = data
        elif name == "read":
            length = min(argument, DATA_BYTES - address)
            if length <= 0:
                continue
            assert tree.read(address, length) == bytes(
                shadow[address: address + length]
            )
        else:
            tree.flush()
    tree.flush()
    assert tree.read(0, DATA_BYTES) == bytes(shadow)


@pytest.mark.parametrize("kind", ["naive", "chash", "mhash", "ihash"])
@given(
    writes=st.lists(
        st.tuples(st.integers(0, DATA_BYTES - 16), st.binary(min_size=1, max_size=16)),
        max_size=10,
    ),
    corrupt_at=st.integers(0, 10**9),
)
@settings(max_examples=25, deadline=None)
def test_tamper_evidence(kind, writes, corrupt_at):
    memory, tree = build_tree(kind, capacity=4)
    for address, data in writes:
        tree.write(address, data)
    tree.flush()
    # Corrupt one byte anywhere in the tree's physical footprint by flipping
    # all of its bits, then drop on-chip copies and sweep.
    physical = corrupt_at % tree.layout.physical_bytes
    original = memory.peek(physical, 1)[0]
    memory.poke(physical, bytes([original ^ 0xFF]))
    for chunk in range(tree.layout.total_chunks):
        tree.invalidate_chunk(chunk)
    # Every byte of the footprint is covered: leaves are read directly and
    # every internal chunk (unused hash slots, ihash timestamp/reserved
    # bytes included) is re-hashed whole while verifying some leaf's path.
    with pytest.raises(IntegrityError):
        for address in range(0, DATA_BYTES, 64):
            tree.read(address, 64)
