"""Unit tests for repro.common.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    align_down,
    align_up,
    bytes_per_cycle,
    ceil_div,
    is_power_of_two,
    log2_exact,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(64) == 6
        assert log2_exact(1 << 30) == 30

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(3)
        with pytest.raises(ValueError):
            log2_exact(0)

    @given(st.integers(min_value=0, max_value=60))
    def test_round_trip(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3
        assert ceil_div(1, 4) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceiling(self, n, d):
        assert ceil_div(n, d) == -(-n // d)
        assert (ceil_div(n, d) - 1) * d < n or n == 0


class TestAlignment:
    def test_align_down(self):
        assert align_down(100, 64) == 64
        assert align_down(64, 64) == 64
        assert align_down(63, 64) == 0

    def test_align_up(self):
        assert align_up(100, 64) == 128
        assert align_up(64, 64) == 64
        assert align_up(0, 64) == 0

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ValueError):
            align_down(100, 48)
        with pytest.raises(ValueError):
            align_up(100, 3)

    @given(st.integers(min_value=0, max_value=2**40),
           st.integers(min_value=0, max_value=12))
    def test_sandwich(self, address, exponent):
        alignment = 1 << exponent
        down = align_down(address, alignment)
        up = align_up(address, alignment)
        assert down <= address <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestBytesPerCycle:
    def test_paper_defaults(self):
        # 3.2 GB/s at 1 GHz is 3.2 bytes per cycle.
        assert bytes_per_cycle(3.2, 1.0) == pytest.approx(3.2)

    def test_faster_clock_means_fewer_bytes_per_cycle(self):
        assert bytes_per_cycle(3.2, 2.0) == pytest.approx(1.6)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            bytes_per_cycle(3.2, 0)
