"""Tests for the tag-only cache and TLB timing simulators."""

import pytest

from repro.cache import CacheSim, TLBSim
from repro.common import CacheConfig
from repro.common.config import TLBConfig


def small_cache(size=1024, assoc=2, block=64):
    return CacheSim(CacheConfig(size, assoc, block, 1, name="t"))


class TestCacheSim:
    def test_miss_then_fill_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100).hit
        cache.fill(0x100)
        assert cache.access(0x100).hit

    def test_block_granularity(self):
        cache = small_cache()
        cache.fill(0x100)
        assert cache.access(0x13F).hit   # same 64B block
        assert not cache.access(0x140).hit

    def test_lru_within_set(self):
        cache = small_cache(size=256, assoc=2, block=64)  # 2 sets
        # set 0 holds blocks 0x000 and 0x100 (stride = n_sets*block = 128)
        cache.fill(0x000)
        cache.fill(0x100)
        cache.access(0x000)          # make 0x000 MRU
        result = cache.fill(0x200)   # evicts LRU = 0x100
        assert result.victim_address == 0x100

    def test_dirty_tracking_through_eviction(self):
        cache = small_cache(size=256, assoc=2, block=64)
        cache.fill(0x000, dirty=True)
        cache.fill(0x100)
        result = cache.fill(0x200)
        assert result.victim_address == 0x000
        assert result.victim_dirty

    def test_write_access_dirties(self):
        cache = small_cache()
        cache.fill(0x40)
        cache.access(0x40, write=True)
        assert cache.is_dirty(0x40)
        cache.mark_clean(0x40)
        assert not cache.is_dirty(0x40)

    def test_probe_has_no_side_effects(self):
        cache = small_cache(size=256, assoc=2, block=64)
        cache.fill(0x000)
        cache.fill(0x100)
        cache.probe(0x000)           # must NOT promote
        result = cache.fill(0x200)
        assert result.victim_address == 0x000

    def test_per_kind_stats(self):
        cache = small_cache()
        cache.access(0, kind="data")
        cache.access(64, kind="hash")
        cache.access(128, kind="hash")
        assert cache.stats["data_accesses"] == 1
        assert cache.stats["hash_accesses"] == 2
        assert cache.stats["data_misses"] == 1
        assert cache.miss_rate("hash") == 1.0

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0x40, dirty=True)
        assert cache.invalidate(0x40) is True
        assert not cache.access(0x40).hit

    def test_racing_fill_is_benign(self):
        cache = small_cache()
        cache.fill(0x40)
        result = cache.fill(0x40, dirty=True)
        assert result.victim_address is None
        assert cache.is_dirty(0x40)

    def test_occupancy(self):
        cache = small_cache()
        for i in range(5):
            cache.fill(i * 64)
        assert cache.occupancy() == 5


class TestTLBSim:
    def test_hit_after_miss(self):
        tlb = TLBSim(TLBConfig())
        assert tlb.access(0x1000) == TLBConfig().miss_penalty_cycles
        assert tlb.access(0x1FFF) == 0  # same page

    def test_capacity_eviction(self):
        config = TLBConfig(entries=4, associativity=2)
        tlb = TLBSim(config)
        # fill one set beyond capacity: pages mapping to the same set
        page = config.page_bytes
        n_sets = config.entries // config.associativity
        for i in range(3):
            tlb.access(i * page * n_sets)
        # the first page was evicted
        assert tlb.access(0) == config.miss_penalty_cycles

    def test_miss_rate(self):
        tlb = TLBSim(TLBConfig())
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == 0.5


class TestReplacementPolicies:
    def _conflict_stream(self, cache, n=12):
        # twelve blocks mapping to set 0 of a 2-way, 2-set cache
        stride = cache.config.n_sets * cache.config.block_bytes
        return [i * stride for i in range(n)]

    def test_fifo_does_not_promote_on_hit(self):
        from repro.common import CacheConfig
        cache = CacheSim(CacheConfig(256, 2, 64, 1, name="f"), policy="fifo")
        cache.fill(0x000)
        cache.fill(0x100)
        cache.access(0x000)            # hit; FIFO must NOT promote
        result = cache.fill(0x200)
        assert result.victim_address == 0x000  # oldest-in evicted

    def test_random_is_deterministic_per_seed(self):
        from repro.common import CacheConfig
        def run(seed):
            cache = CacheSim(CacheConfig(256, 2, 64, 1, name="r"),
                             policy="random", seed=seed)
            victims = []
            for address in self._conflict_stream(cache):
                result = cache.fill(address)
                victims.append(result.victim_address)
            return victims
        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_unknown_policy_rejected(self):
        from repro.common import CacheConfig
        with pytest.raises(ValueError):
            CacheSim(CacheConfig(256, 2, 64, 1, name="x"), policy="plru")

    def test_all_policies_work_under_pressure(self):
        from repro.common import CacheConfig
        for policy in ("lru", "fifo", "random"):
            cache = CacheSim(CacheConfig(1024, 4, 64, 1, name=policy),
                             policy=policy)
            for i in range(200):
                address = (i * 192) % 4096
                if not cache.access(address).hit:
                    cache.fill(address)
            assert cache.occupancy() <= cache.config.n_blocks
