"""Tests for the out-of-order and in-order core models."""

import pytest

from repro.cache import MemoryHierarchy
from repro.common import MB, SchemeKind, table1_config
from repro.cpu import InOrderCore, Instruction, OutOfOrderCore


def fresh(scheme=SchemeKind.BASE):
    config = table1_config(scheme)
    hierarchy = MemoryHierarchy(config, protected_bytes=64 * MB)
    return config, hierarchy


def warm_core(instructions, scheme=SchemeKind.BASE):
    """Run twice; measure the second (warm) pass."""
    config, hierarchy = fresh(scheme)
    core = OutOfOrderCore(config.core, hierarchy)
    first = core.run(instructions)
    return core, core.run(instructions, start_cycle=first.end_cycle)


def alu_stream(n, dep=0):
    return [Instruction(kind="alu", dep1=dep, pc=(i * 4) % 4096) for i in range(n)]


class TestOutOfOrderCore:
    def test_independent_alu_reaches_full_width(self):
        _, result = warm_core(alu_stream(4000))
        assert result.ipc == pytest.approx(4.0, rel=0.01)

    def test_serial_chain_is_one_ipc(self):
        _, result = warm_core(alu_stream(4000, dep=1))
        assert result.ipc == pytest.approx(1.0, rel=0.01)

    def test_long_latency_serial_chain(self):
        stream = [Instruction(kind="fp", dep1=1, pc=(i * 4) % 4096)
                  for i in range(2000)]
        _, result = warm_core(stream)
        assert result.ipc == pytest.approx(0.25, rel=0.05)  # 4-cycle fp chain

    def test_mispredictions_cost_cycles(self):
        clean = [Instruction(kind="branch", pc=(i * 4) % 4096) for i in range(2000)]
        dirty = [Instruction(kind="branch", pc=(i * 4) % 4096, mispredicted=True)
                 for i in range(2000)]
        _, fast = warm_core(clean)
        _, slow = warm_core(dirty)
        assert slow.cycles > fast.cycles * 2

    def test_load_misses_overlap(self):
        """Independent streaming loads pipeline on the bus (MLP)."""
        stream = [Instruction(kind="load", address=i * 64, pc=(i * 4) % 4096)
                  for i in range(2000)]
        config, hierarchy = fresh()
        core = OutOfOrderCore(config.core, hierarchy)
        result = core.run(stream)
        # bus-limited: ~40 cycles per 64B block, NOT ~120 (full latency)
        cycles_per_load = result.cycles / len(stream)
        assert cycles_per_load < 60

    def test_serial_loads_expose_full_latency(self):
        stream = [Instruction(kind="load", dep1=1, address=i * 64,
                              pc=(i * 4) % 4096)
                  for i in range(500)]
        config, hierarchy = fresh()
        core = OutOfOrderCore(config.core, hierarchy)
        result = core.run(stream)
        assert result.cycles / len(stream) > 80  # DRAM latency exposed, serialized

    def test_crypto_barrier_waits_for_checks(self):
        stream = [Instruction(kind="load", address=i * 64, pc=0)
                  for i in range(50)]
        stream.append(Instruction(kind="crypto", pc=0))
        config, hierarchy = fresh(SchemeKind.CHASH)
        core = OutOfOrderCore(config.core, hierarchy)
        result = core.run(stream)
        assert result.cycles >= result.last_check_done - 1
        assert core.stats["crypto_barriers"] == 1

    def test_start_cycle_continuation(self):
        config, hierarchy = fresh()
        core = OutOfOrderCore(config.core, hierarchy)
        first = core.run(alu_stream(100))
        second = core.run(alu_stream(100), start_cycle=first.end_cycle)
        assert second.end_cycle > first.end_cycle
        assert second.cycles < first.end_cycle + second.end_cycle  # relative

    def test_empty_stream(self):
        config, hierarchy = fresh()
        core = OutOfOrderCore(config.core, hierarchy)
        result = core.run([])
        assert result.instructions == 0
        assert result.ipc == 0.0


class TestInOrderCore:
    def test_never_faster_than_ooo(self):
        stream = [
            Instruction(kind="load", address=(i * 64) % (1 << 20), pc=(i * 4) % 4096)
            if i % 3 == 0 else Instruction(kind="alu", dep1=2, pc=(i * 4) % 4096)
            for i in range(3000)
        ]
        config, hierarchy = fresh()
        ooo = OutOfOrderCore(config.core, hierarchy).run(stream)
        config2, hierarchy2 = fresh()
        ino = InOrderCore(hierarchy2).run(stream)
        assert ino.cycles >= ooo.cycles

    def test_runs_all_kinds(self):
        stream = [
            Instruction(kind="load", address=0, pc=0),
            Instruction(kind="store", address=64, pc=4),
            Instruction(kind="branch", pc=8, mispredicted=True),
            Instruction(kind="crypto", pc=12),
            Instruction(kind="alu", pc=16),
        ]
        _, hierarchy = fresh(SchemeKind.CHASH)
        result = InOrderCore(hierarchy).run(stream)
        assert result.instructions == 5
        assert result.cycles > 0
