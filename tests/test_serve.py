"""The multi-tenant verification service: forest, batcher, HTTP, discipline."""

import threading

import pytest

from repro.checks import tsan
from repro.common import ConfigurationError, IntegrityError, SecureModeError
from repro.serve import (
    ServeClient,
    TenantConfig,
    TreeForest,
    make_serve_server,
    run_loadgen,
)
from repro.serve.forest import build_tenant

SMALL = TenantConfig(name="a", data_bytes=4096, chunk_bytes=64,
                     cache_chunks=8)


@pytest.fixture()
def forest():
    return TreeForest(max_tenants=8)


@pytest.fixture()
def service():
    """(forest, client) against a live loopback front end."""
    forest = TreeForest(max_tenants=8)
    server = make_serve_server(forest)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    try:
        yield forest, client
    finally:
        client.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestTreeForest:
    def test_create_get_evict(self, forest):
        tenant = forest.create(SMALL)
        assert forest.get("a") is tenant
        assert forest.names() == ["a"]
        assert tenant.verifier.active
        forest.evict("a")
        assert forest.names() == []
        with pytest.raises(KeyError):
            forest.get("a")

    def test_duplicate_name_rejected(self, forest):
        forest.create(SMALL)
        with pytest.raises(KeyError):
            forest.create(SMALL)

    def test_capacity_enforced(self):
        forest = TreeForest(max_tenants=1)
        forest.create(SMALL)
        with pytest.raises(ConfigurationError):
            forest.create(TenantConfig(name="b", data_bytes=4096))

    def test_per_tenant_scheme_and_geometry(self, forest):
        for index, scheme in enumerate(("naive", "chash", "mhash", "ihash")):
            forest.create(TenantConfig(
                name=f"t{index}", data_bytes=4096 << (index % 2),
                scheme=scheme, chunk_bytes=64))
        assert len(forest.names()) == 4
        for index, scheme in enumerate(("naive", "chash", "mhash", "ihash")):
            assert forest.get(f"t{index}").verifier.scheme == scheme

    def test_bad_config_rejected(self, forest):
        with pytest.raises(ConfigurationError):
            forest.create(TenantConfig(name="x/y", data_bytes=4096))
        with pytest.raises(ConfigurationError):
            forest.create(TenantConfig(name="x", scheme="bogus"))
        # a failed create must not leave a half-registered name behind
        with pytest.raises(KeyError):
            forest.get("x")

    def test_tenants_are_isolated(self, forest):
        forest.create(SMALL)
        forest.create(TenantConfig(name="b", data_bytes=4096))
        forest.get("a").verifier.write(0, b"tenant a")
        assert forest.get("b").verifier.read(0, 8) == b"\x00" * 8


class TestReadBatcher:
    def test_single_read_matches_direct(self):
        tenant = build_tenant(SMALL)
        tenant.verifier.write(10, b"hello")
        assert tenant.batcher.read(10, 5) == b"hello"

    def test_concurrent_reads_correct_and_combined(self):
        tenant = build_tenant(SMALL)
        payload = bytes(range(256)) * (SMALL.data_bytes // 256)
        tenant.verifier.write(0, payload)
        spans = [(i * 16 % 1024, 16) for i in range(64)]
        results = {}

        def reader(index, address, length):
            results[index] = tenant.batcher.read(address, length)

        pool = [threading.Thread(target=reader, args=(i, a, n))
                for i, (a, n) in enumerate(spans)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        for index, (address, length) in enumerate(spans):
            assert results[index] == payload[address:address + length]
        counters = tenant.batcher.counters()
        assert counters["reads"] == len(spans)

    def test_vectored_read_amortizes(self):
        tenant = build_tenant(SMALL)
        before = tenant.verifier.walk_counters()
        tenant.batcher.read_many([(0, 8), (8, 8), (16, 8), (32, 8)])
        after = tenant.verifier.walk_counters()
        assert after["requested"] - before["requested"] == 4
        assert after["performed"] - before["performed"] == 1
        assert tenant.batcher.counters()["batches"] == 1

    def test_bad_span_in_concurrent_batch_fails_only_itself(self):
        tenant = build_tenant(SMALL)
        tenant.verifier.unprotect_range(0, 64)
        outcomes = {}

        def reader(index, address, length):
            try:
                outcomes[index] = tenant.batcher.read(address, length)
            except SecureModeError:
                outcomes[index] = "refused"

        pool = [threading.Thread(target=reader, args=(i, a, n))
                for i, (a, n) in enumerate([(0, 8), (64, 8), (128, 8)] * 4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        for index in outcomes:
            if index % 3 == 0:
                assert outcomes[index] == "refused"
            else:
                assert outcomes[index] == b"\x00" * 8


class TestServiceHttp:
    def test_status_and_tenant_lifecycle(self, service):
        _forest, client = service
        assert client.status()["service"] == "repro-serve"
        client.create_tenant(SMALL)
        assert client.tenants() == ["a"]
        with pytest.raises(KeyError):
            client.create_tenant(SMALL)
        client.evict("a")
        assert client.tenants() == []
        with pytest.raises(KeyError):
            client.evict("a")

    def test_read_write_byte_identical_to_direct(self, service):
        _forest, client = service
        client.create_tenant(SMALL)
        twin = build_tenant(SMALL)
        for address, data in [(0, b"abc"), (61, b"crosses chunks"),
                              (4096 - 5, b"edge!")]:
            client.write("a", address, data)
            twin.verifier.write(address, data)
        for address, length in [(0, 3), (61, 14), (4091, 5), (0, 4096)]:
            assert client.read("a", address, length) == \
                twin.verifier.read(address, length)

    def test_readv_matches_point_reads(self, service):
        _forest, client = service
        client.create_tenant(SMALL)
        client.write("a", 0, bytes(range(256)))
        spans = [(0, 16), (8, 16), (100, 56), (250, 6)]
        vectored = client.readv("a", spans)
        assert vectored == [client.read("a", a, n) for a, n in spans]
        stats = client.stats("a")
        assert stats["requested"] > stats["performed"] > 0

    def test_error_mapping(self, service):
        _forest, client = service
        client.create_tenant(SMALL)
        with pytest.raises(ValueError):
            client.read("a", 0, 0)
        with pytest.raises(SecureModeError):
            client.read("a", 4090, 100)  # crosses into the window
        with pytest.raises(KeyError):
            client.read("nobody", 0, 8)
        with pytest.raises(ValueError):
            client.readv("a", [])

    def test_dma_discipline_per_tenant(self, service):
        """unprotect -> DMA write -> read refuses -> rebuild -> read OK."""
        forest, client = service
        client.create_tenant(SMALL)
        client.create_tenant(TenantConfig(name="b", data_bytes=4096))
        client.write("a", 0, b"original")
        client.unprotect("a", 0, 64)
        client.write_unchecked("a", 0, b"dma-landed")
        with pytest.raises(SecureModeError):
            client.read("a", 0, 10)
        assert client.read_unchecked("a", 0, 10) == b"dma-landed"
        # the sibling tenant is untouched by a's DMA window
        assert client.read("b", 0, 10) == b"\x00" * 10
        client.rebuild("a", 0, 64)
        assert client.read("a", 0, 10) == b"dma-landed"
        with pytest.raises(SecureModeError):
            client.rebuild("a", 0, 64)  # no longer unprotected

    def test_unchecked_write_refused_on_protected(self, service):
        _forest, client = service
        client.create_tenant(SMALL)
        with pytest.raises(SecureModeError):
            client.write_unchecked("a", 0, b"sneak")

    def test_cross_tenant_tamper_detected_and_contained(self, service):
        """An adversary with tenant b's RAM cannot serve forged bytes —
        and tenant a keeps verifying."""
        forest, client = service
        client.create_tenant(TenantConfig(name="a", data_bytes=4096,
                                          scheme="naive"))
        client.create_tenant(TenantConfig(name="b", data_bytes=4096,
                                          scheme="naive"))
        client.write("a", 0, b"honest tenant")
        client.write("b", 0, b"victim bytes!")
        victim = forest.get("b")
        physical = victim.verifier.physical_address(0)
        victim.memory.poke(physical, b"EVIL")
        with pytest.raises(IntegrityError):
            client.read("b", 0, 13)
        # isolation: a's tree never covered b's RAM, so a still verifies
        assert client.read("a", 0, 13) == b"honest tenant"

    def test_create_rejects_unknown_fields(self, service):
        _forest, client = service
        with pytest.raises(ValueError):
            client._request("POST", "/tenants",
                            {"name": "x", "data_bytes": 4096,
                             "mystery": 1})


class TestSanitizerClean:
    def test_concurrent_service_traffic_is_tsan_clean(self, service):
        _forest, client = service
        tsan.reset()
        client.create_tenant(SMALL)
        client.write("a", 0, bytes(range(256)))

        def hammer(index):
            for i in range(20):
                client.read("a", (index * 64 + i) % 1024, 16)
                client.readv("a", [(0, 16), (8, 16), (24, 16)])

        pool = [threading.Thread(target=hammer, args=(i,))
                for i in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert tsan.violations() == []
        tsan.assert_clean()


class TestLoadgen:
    def test_loadgen_amortizes_and_diffs_clean(self, tmp_path):
        output = tmp_path / "BENCH_serve.json"
        report = run_loadgen(tenants=2, threads=3, requests=120,
                             spans_per_read=6, data_bytes=8192,
                             seed=3, output=str(output))
        assert report["diff_ok"], report["failures"]
        assert report["amortization_ratio"] > 1.0
        assert report["read_requests"] > 0
        assert report["p99_s"] >= report["p95_s"] >= report["p50_s"] >= 0

        import json
        recorded = json.loads(output.read_text())
        assert recorded["schema"] == 1
        row = recorded["rows"][-1]
        assert row["backend"] == "serve-http"
        assert row["cells"]["serve/amortization"]["ratio"] > 1.0
        assert "seconds" in row["cells"]["serve/p99"]

    def test_loadgen_rejects_tiny_segments(self):
        with pytest.raises(ValueError):
            run_loadgen(tenants=1, threads=64, requests=10,
                        data_bytes=1024, output=None)
