"""Tests for the multiple-cache-blocks-per-chunk tree (mhash, Section 5.4)."""

import pytest

from repro.common import IntegrityError, SimulationError
from repro.hashtree import MultiBlockHashTree, TreeLayout
from repro.memory import UntrustedMemory

from tests.conftest import SMALL_DATA_BYTES, make_mhash


class TestReadWrite:
    def test_read_after_write(self):
        _, tree = make_mhash()
        tree.write(0, b"hello")
        assert tree.read(0, 5) == b"hello"

    def test_cross_block_and_chunk_spans(self):
        _, tree = make_mhash()
        data = bytes(range(256))
        tree.write(60, data)
        assert tree.read(60, 256) == data

    def test_data_survives_flush(self):
        _, tree = make_mhash(capacity=8)
        tree.write(500, b"persist")
        tree.flush()
        assert tree.read(500, 7) == b"persist"

    def test_four_blocks_per_chunk(self):
        _, tree = make_mhash(blocks_per_chunk=4, capacity=32)
        tree.write(0, b"x" * 300)
        tree.flush()
        assert tree.read(0, 300) == b"x" * 300


class TestBlockGranularity:
    def test_miss_fetches_whole_chunk(self):
        """Verifying one block requires reading all its chunk-mates."""
        _, tree = make_mhash(blocks_per_chunk=2)
        tree.stats.reset()
        tree.read(0, 1)
        assert tree.stats["memory_block_reads"] >= 2

    def test_sibling_block_is_hit_after_miss(self):
        _, tree = make_mhash(blocks_per_chunk=2, capacity=64)
        tree.read(0, 1)  # loads blocks 0 and 1 of the first leaf chunk
        tree.stats.reset()
        tree.read(64, 1)  # the chunk-mate block
        assert tree.stats["cache_hits"] == 1
        assert tree.stats["memory_block_reads"] == 0

    def test_dirty_block_memory_image_used_for_check(self):
        """The parent hash covers memory; a dirty cached block must be read
        from memory (stale) during verification, not from the cache."""
        _, tree = make_mhash(capacity=64)
        tree.write(0, b"dirty!")  # block 0 of first leaf chunk now dirty
        # force re-verification of the chunk by evicting... instead, call
        # read_and_check_chunk directly: it must still pass because it
        # assembles the memory image.
        first_leaf = tree.layout.first_leaf
        image = tree.read_and_check_chunk(first_leaf)
        assert image[0][:6] != b"dirty!"  # stale memory copy, by design

    def test_write_back_propagates_chunk_mates(self):
        memory, tree = make_mhash(capacity=64)
        tree.write(0, b"A")
        tree.write(64, b"B")  # same chunk, second block
        tree.flush()
        first_leaf_address = tree.layout.chunk_address(tree.layout.first_leaf)
        assert memory.peek(first_leaf_address, 1) == b"A"
        assert memory.peek(first_leaf_address + 64, 1) == b"B"


class TestTamperDetection:
    def test_detects_corruption_in_either_block(self):
        for offset in (0, 64):
            memory, tree = make_mhash(capacity=4)
            tree.write(0, b"secret")
            tree.flush()
            for i in range(4, 16):
                tree.read(i * 128, 1)  # evict
            base = tree.layout.chunk_address(tree.layout.first_leaf)
            memory.poke(base + offset, b"\xff")
            with pytest.raises(IntegrityError):
                tree.read(0, 1)

    def test_detects_swap_of_blocks_within_chunk(self):
        memory, tree = make_mhash(capacity=4)
        tree.write(0, b"A" * 64)
        tree.write(64, b"B" * 64)
        tree.flush()
        for i in range(4, 16):
            tree.read(i * 128, 1)
        base = tree.layout.chunk_address(tree.layout.first_leaf)
        block_a = memory.peek(base, 64)
        memory.poke(base, memory.peek(base + 64, 64))
        memory.poke(base + 64, block_a)
        with pytest.raises(IntegrityError):
            tree.read(0, 1)


class TestCapacityPressure:
    @pytest.mark.parametrize("capacity", [4, 6, 8])
    def test_correct_under_pressure(self, capacity):
        _, tree = make_mhash(capacity=capacity)
        for i in range(32):
            tree.write(i * 128, bytes([i]) * 16)
        for i in range(32):
            assert tree.read(i * 128, 16) == bytes([i]) * 16

    def test_pathologically_small_cache_raises_cleanly(self):
        """When everything is pinned, the tree reports the capacity problem
        instead of corrupting state."""
        layout = TreeLayout(SMALL_DATA_BYTES, 128, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = MultiBlockHashTree(
            memory, layout, blocks_per_chunk=2, capacity_blocks=1
        )
        tree.initialize_from_memory()
        with pytest.raises((SimulationError, IntegrityError)):
            for i in range(32):
                tree.write(i * 128, b"x")
            tree.flush()


class TestConstruction:
    def test_rejects_unequal_split(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 128, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        with pytest.raises(ValueError):
            MultiBlockHashTree(memory, layout, blocks_per_chunk=3)

    def test_single_block_chunk_degenerates_to_chash_semantics(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = MultiBlockHashTree(memory, layout, blocks_per_chunk=1,
                                  capacity_blocks=16)
        tree.initialize_from_memory()
        tree.write(0, b"one-block chunks")
        tree.flush()
        assert tree.read(0, 16) == b"one-block chunks"
