"""Every quick example script must run to completion and print OK."""

import os
import runpy
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EXAMPLES = [
    "examples/quickstart.py",
    "examples/certified_execution.py",
    "examples/replay_attack.py",
    "examples/dma_and_unprotected_io.py",
    "examples/multiprogram_os.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = os.path.join(_ROOT, script)
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out
    assert "BUG" not in out
