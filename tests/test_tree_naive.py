"""Tests for the functional uncached Merkle tree (the naive checker)."""

import pytest

from repro.common import IntegrityError
from repro.hashtree import HashTree, TreeLayout
from repro.memory import TamperAdversary, UntrustedMemory

from tests.conftest import SMALL_DATA_BYTES, make_naive


class TestReadWrite:
    def test_read_after_write(self):
        _, tree = make_naive()
        tree.write(100, b"payload")
        assert tree.read(100, 7) == b"payload"

    def test_cross_chunk_write(self):
        _, tree = make_naive()
        data = bytes(range(200))
        tree.write(60, data)  # spans four 64-byte chunks
        assert tree.read(60, 200) == data

    def test_initial_memory_reads_as_zero(self):
        _, tree = make_naive()
        assert tree.read(0, 64) == bytes(64)

    def test_write_chunk_validates_length(self):
        _, tree = make_naive()
        with pytest.raises(ValueError):
            tree.write_chunk(tree.layout.first_leaf, b"short")


class TestTamperDetection:
    def test_detects_leaf_corruption(self):
        memory, tree = make_naive()
        tree.write(0, b"sensitive")
        leaf_address = tree.layout.chunk_address(tree.layout.first_leaf)
        memory.poke(leaf_address, b"X")
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_detects_hash_chunk_corruption(self):
        memory, tree = make_naive()
        tree.write(0, b"sensitive")
        # corrupt an internal (hash) chunk on the leaf's path
        leaf = tree.layout.first_leaf
        parent = tree.layout.parent_of(leaf)
        memory.poke(tree.layout.chunk_address(parent), b"\xff")
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_detects_bus_level_tamper(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
        target = layout.chunk_address(layout.first_leaf)
        memory = UntrustedMemory(
            layout.physical_bytes, adversary=TamperAdversary(target)
        )
        tree = HashTree(memory, layout)
        tree.build()
        with pytest.raises(IntegrityError):
            tree.read(0, 8)

    def test_error_carries_address(self):
        memory, tree = make_naive()
        address = tree.layout.chunk_address(tree.layout.first_leaf)
        memory.poke(address, b"X")
        with pytest.raises(IntegrityError) as excinfo:
            tree.read(0, 1)
        assert excinfo.value.address == address

    def test_swapping_two_leaves_detected(self):
        memory, tree = make_naive()
        tree.write(0, b"A" * 64)
        tree.write(64, b"B" * 64)
        a = tree.layout.chunk_address(tree.layout.first_leaf)
        b = tree.layout.chunk_address(tree.layout.first_leaf + 1)
        chunk_a = memory.peek(a, 64)
        memory.poke(a, memory.peek(b, 64))
        memory.poke(b, chunk_a)
        with pytest.raises(IntegrityError):
            tree.read(0, 64)


class TestCosts:
    def test_read_cost_is_depth_plus_one_chunk_reads(self):
        _, tree = make_naive()
        leaf = tree.layout.first_leaf
        depth = tree.layout.depth(leaf)
        tree.stats.reset()
        tree.read_chunk(leaf)
        assert tree.stats["chunk_reads"] == depth + 1

    def test_write_reads_and_writes_full_path(self):
        _, tree = make_naive()
        leaf = tree.layout.total_chunks - 1
        depth = tree.layout.depth(leaf)
        tree.stats.reset()
        tree.write_chunk(leaf, bytes(64))
        assert tree.stats["chunk_writes"] == depth + 1


class TestRebuild:
    def test_rebuild_after_out_of_band_change(self):
        memory, tree = make_naive()
        leaf = tree.layout.first_leaf + 5
        memory.poke(tree.layout.chunk_address(leaf), b"D" * 64)
        with pytest.raises(IntegrityError):
            tree.read_chunk(leaf)
        tree.rebuild_chunk_from_memory(leaf)
        assert tree.read_chunk(leaf) == b"D" * 64
        # other chunks still verify
        tree.read(0, 64)

    def test_rebuild_preserves_detection_elsewhere(self):
        memory, tree = make_naive()
        leaf = tree.layout.first_leaf + 5
        other = tree.layout.first_leaf + 6
        memory.poke(tree.layout.chunk_address(leaf), b"D" * 64)
        memory.poke(tree.layout.chunk_address(other), b"E" * 64)
        tree.rebuild_chunk_from_memory(leaf)
        with pytest.raises(IntegrityError):
            tree.read_chunk(other)


def test_memory_too_small_rejected():
    layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
    memory = UntrustedMemory(layout.physical_bytes - 1)
    with pytest.raises(ValueError):
        HashTree(memory, layout)
