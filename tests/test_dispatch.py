"""Distributed dispatch: the lease board, the wire protocol, the workers.

Unit tests drive :class:`LeaseBoard` directly with a fake monotonic
clock (no sockets, no sleeps for expiry), protocol tests go through the
real HTTP server on an ephemeral loopback port, and the integration
tests at the bottom run real ``python -m repro worker`` subprocesses
against an in-process coordinator — including one killed mid-group —
asserting the distributed sweep is bit-identical to ``--jobs 1``.
"""

import gzip
import http.client
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common import KB, SchemeKind
from repro.sim.sweep import (
    CellSpec,
    CoordinatorClient,
    CoordinatorError,
    CostModel,
    HttpChannel,
    HttpStore,
    LeaseBoard,
    WorkQueue,
    cell_fingerprint,
    execute_cell,
    make_store_server,
    run_cells,
    run_distributed,
    spec_from_dict,
    spec_to_dict,
)
from repro.sim.sweep.store import GZIP_MIN_BYTES, entry_for, validate_entry

TINY = dict(instructions=400, warmup=300)


def tiny(benchmark="gzip", scheme=SchemeKind.CHASH, **overrides):
    params = {**TINY, **overrides}
    return CellSpec(benchmark, scheme, **params).normalized()


def wire(cells):
    return [{"fingerprint": cell_fingerprint(spec),
             "spec": spec_to_dict(spec)} for spec in cells]


def assert_same_result(a, b):
    assert a.cycles == b.cycles
    assert a.stats == b.stats
    assert a.instructions == b.instructions
    assert a.benchmark == b.benchmark
    assert a.scheme == b.scheme


def ok_row(spec, stored=True, error=None):
    return {"fingerprint": cell_fingerprint(spec), "label": spec.label(),
            "elapsed_s": 1.0, "warm_s": 0.6, "measure_s": 0.4,
            "backend": "numpy", "error": error, "stored": stored}


@pytest.fixture()
def serve(tmp_path):
    """Factory for in-process coordinators on ephemeral loopback ports."""
    running = []

    def start(ttl=30.0, subdir="served", work=True):
        server = make_store_server(tmp_path / subdir, port=0, work=work,
                                   lease_ttl_s=ttl)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", server

    yield start
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# --------------------------------------------------------------------------
# cell wire format
# --------------------------------------------------------------------------

class TestSpecWire:
    def test_roundtrip_preserves_identity(self):
        for spec in (tiny(), tiny("twolf", SchemeKind.MHASH,
                                  l2_size=256 * KB, seed=3),
                     tiny(hash_throughput=0.8, buffer_entries=4),
                     tiny(write_allocate_valid_bits=False,
                          kernels="fallback")):
            rebuilt = spec_from_dict(spec_to_dict(spec))
            assert rebuilt == spec
            assert cell_fingerprint(rebuilt) == cell_fingerprint(spec)

    def test_roundtrip_normalizes(self):
        from repro.sim.sweep import cell_param_defaults
        explicit = CellSpec("gzip", SchemeKind.CHASH,
                            l2_size=cell_param_defaults()["l2_size"], **TINY)
        assert spec_from_dict(spec_to_dict(explicit)) == tiny()

    @pytest.mark.parametrize("payload", [
        None, 7, [], {"benchmark": "gzip"},
        {"benchmark": "gzip", "scheme": "not-a-scheme"},
        {"benchmark": "gzip", "scheme": "chash", "l2_size": "huge"},
    ])
    def test_malformed_payload_raises(self, payload):
        with pytest.raises((ValueError, KeyError, TypeError)):
            spec_from_dict(payload)


# --------------------------------------------------------------------------
# queue extensions the coordinator relies on
# --------------------------------------------------------------------------

class TestQueueOps:
    def test_add_resorts_by_cost(self):
        queue = WorkQueue([[tiny()]])
        queue.add([tiny("twolf"), tiny("twolf", seed=1)])
        assert len(queue.take(1)) == 2  # bigger (uniform-cost) group first

    def test_reprice_reorders_existing_groups(self):
        cheap, costly = [tiny()], [tiny("twolf")]
        queue = WorkQueue([cheap, costly])  # uniform: tie broken by label
        queue.reprice(CostModel({"twolf/chash": {"total_s": 9.0, "cells": 1},
                                 "gzip/chash": {"total_s": 1.0, "cells": 1}}))
        assert queue.take(1) == costly

    def test_discard_cells_drops_and_collapses(self):
        doomed = tiny(seed=5)
        queue = WorkQueue([[tiny(), doomed], [doomed]])
        assert queue.discard_cells(lambda c: c == doomed) == 2
        assert len(queue) == 1 and queue.queued_cells() == 1


# --------------------------------------------------------------------------
# the lease board (fake clock, no sockets)
# --------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def board_with(groups, ttl=10.0, store=None):
    clock = FakeClock()
    board = LeaseBoard(store=store, lease_ttl_s=ttl, clock=clock)
    if groups:
        board.seed([wire(group) for group in groups])
    return board, clock


class TestLeaseBoard:
    def test_seed_claim_done_lifecycle(self):
        cells = [tiny(), tiny(seed=1)]
        board, _ = board_with([cells])
        claim = board.claim("w1")
        assert claim["status"] == "lease"
        leased = [c["fingerprint"] for c in claim["lease"]["cells"]]
        assert sorted(leased) == sorted(cell_fingerprint(c) for c in cells)
        retired = board.done(claim["lease"]["id"], "w1",
                             [ok_row(c) for c in cells])
        assert retired == {"retired": True, "accepted": 2, "requeued": 0}
        status = board.status()
        assert status["drained"]
        assert status["totals"]["done_groups"] == 1
        assert status["workers"]["w1"]["cells"] == 2
        assert {o["fingerprint"] for o in status["outcomes"]} == set(leased)

    def test_reseed_skips_pending_and_done(self):
        cells = [tiny(), tiny(seed=1)]
        board, _ = board_with([[cells[0]]])
        assert board.seed([wire(cells)]) == {
            "seeded_groups": 1, "seeded_cells": 1, "skipped_cells": 1,
            "lease_ttl_s": 10.0}
        claim = board.claim("w1")
        board.done(claim["lease"]["id"], "w1", [ok_row(cells[0])])
        again = board.seed([wire([cells[0]])])
        assert again["seeded_cells"] == 0 and again["skipped_cells"] == 1

    def test_costliest_group_leased_first(self):
        small, big = [tiny()], [tiny("twolf"), tiny("twolf", seed=1)]
        board, _ = board_with([small, big])
        assert len(board.claim("w1")["lease"]["cells"]) == 2
        assert len(board.claim("w2")["lease"]["cells"]) == 1

    def test_heartbeat_extends_lease(self):
        board, clock = board_with([[tiny()]], ttl=10.0)
        lease = board.claim("w1")["lease"]
        for _ in range(5):
            clock.now += 8.0  # each step would expire without the beat
            assert board.heartbeat(lease["id"], "w1")["ok"]
        clock.now += 11.0
        assert not board.heartbeat(lease["id"], "w1")["ok"]

    def test_expiry_requeues_for_live_workers(self):
        board, clock = board_with([[tiny()]], ttl=10.0)
        first = board.claim("w1")["lease"]
        clock.now += 11.0
        reclaim = board.claim("w2")
        assert reclaim["status"] == "lease"
        assert reclaim["lease"]["cells"] == first["cells"]
        assert board.status()["totals"]["requeues"] == 1
        assert board.status()["workers"]["w1"]["requeues"] == 1

    def test_late_done_after_expiry_counts_once(self):
        spec = tiny()
        board, clock = board_with([[spec]], ttl=10.0)
        first = board.claim("w1")["lease"]
        clock.now += 11.0
        second = board.claim("w2")["lease"]  # expiry requeued, w2 holds it
        # the presumed-dead worker reports in late: accepted (results are
        # content-addressed and bit-identical), lease already gone
        late = board.done(first["id"], "w1", [ok_row(spec)])
        assert late["retired"] is False and late["accepted"] == 1
        # the re-leased copy completes too: outcome stays deduplicated
        board.done(second["id"], "w2", [ok_row(spec)])
        status = board.status()
        assert status["drained"]
        assert len(status["outcomes"]) == 1
        assert status["outcomes"][0]["worker"] == "w1"

    def test_late_done_cancels_requeued_copy_still_in_queue(self):
        spec = tiny()
        board, clock = board_with([[spec]], ttl=10.0)
        first = board.claim("w1")["lease"]
        clock.now += 11.0
        board.heartbeat("l0", "w3")  # any request runs lazy expiry
        assert board.status()["totals"]["queued_cells"] == 1
        board.done(first["id"], "w1", [ok_row(spec)])
        status = board.status()
        assert status["totals"]["queued_cells"] == 0
        assert status["drained"]

    def test_unstored_success_is_requeued(self):
        spec = tiny()
        board, _ = board_with([[spec]])
        lease = board.claim("w1")["lease"]
        retired = board.done(lease["id"], "w1",
                             [ok_row(spec, stored=False)])
        assert retired == {"retired": True, "accepted": 0, "requeued": 1}
        assert not board.status()["drained"]
        assert board.claim("w1")["status"] == "lease"  # runs again

    def test_failure_resolves_the_cell(self):
        spec = tiny()
        board, _ = board_with([[spec]])
        lease = board.claim("w1")["lease"]
        board.done(lease["id"], "w1",
                   [ok_row(spec, error="ValueError: boom")])
        status = board.status()
        assert status["drained"]
        assert status["workers"]["w1"]["failures"] == 1
        assert status["outcomes"][0]["error"] == "ValueError: boom"

    def test_unreported_cells_requeue(self):
        cells = [tiny(), tiny(seed=1)]
        board, _ = board_with([cells])
        lease = board.claim("w1")["lease"]
        board.done(lease["id"], "w1", [ok_row(cells[0])])  # one cell missing
        status = board.status()
        assert not status["drained"]
        assert status["totals"]["queued_cells"] == 1

    def test_starving_worker_triggers_split(self):
        cells = [tiny(seed=s) for s in range(4)]
        board, _ = board_with(None)
        assert board.claim("w2")["status"] == "empty"  # w2 now starving
        board.seed([wire(cells)])
        first = board.claim("w1")["lease"]["cells"]
        second = board.claim("w2")["lease"]["cells"]
        assert len(first) == 2 and len(second) == 2
        assert board.status()["totals"]["splits"] >= 1

    def test_claim_wait_when_work_is_leased_out(self):
        board, _ = board_with([[tiny()]])
        board.claim("w1")
        assert board.claim("w2")["status"] == "wait"

    def test_status_since_cursor(self):
        cells = [tiny(), tiny(seed=1)]
        board, _ = board_with([[cells[0]], [cells[1]]])
        lease = board.claim("w1")["lease"]
        board.done(lease["id"], "w1",
                   [ok_row(spec_from_dict(c["spec"]))
                    for c in lease["cells"]])
        cursor = board.status()["totals"]["outcome_seq"]
        lease = board.claim("w1")["lease"]
        board.done(lease["id"], "w1",
                   [ok_row(spec_from_dict(c["spec"]))
                    for c in lease["cells"]])
        fresh = board.status(since=cursor)["outcomes"]
        assert len(fresh) == 1 and fresh[0]["seq"] == cursor + 1

    def test_bad_seed_raises(self):
        with pytest.raises((ValueError, KeyError, TypeError)):
            board_with([[tiny()]])[0].seed([[{"fingerprint": "xx",
                                             "spec": {}}]])


# --------------------------------------------------------------------------
# keep-alive + gzip on the HTTP channel
# --------------------------------------------------------------------------

class _DeadConnection:
    """A stale keep-alive socket: every request raises."""

    def __init__(self):
        self.closed = False

    def request(self, *_args, **_kwargs):
        raise http.client.RemoteDisconnected("server closed idle socket")

    def close(self):
        self.closed = True


class TestHttpChannel:
    def test_keepalive_reuses_one_connection(self, serve):
        url, _server = serve()
        channel = HttpChannel(url)
        assert channel.request("GET", "/").status == 200
        first = channel._local.conn
        assert channel.request("GET", "/costs").status == 200
        assert channel._local.conn is first

    def test_reconnects_once_through_a_dead_socket(self, serve):
        url, _server = serve()
        channel = HttpChannel(url)
        dead = _DeadConnection()
        channel._local.conn = dead
        response = channel.request("GET", "/")
        assert response.status == 200 and dead.closed

    def test_per_thread_connections(self, serve):
        url, _server = serve()
        channel = HttpChannel(url)
        channel.request("GET", "/")
        seen = {}

        def probe():
            channel.request("GET", "/")
            seen[threading.get_ident()] = channel._local.conn

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen[thread.ident] is not channel._local.conn

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            HttpChannel("ftp://somewhere/")

    def test_large_entry_gzips_both_directions(self, serve, monkeypatch):
        url, server = serve()
        compressed = []
        real_compress = gzip.compress

        def counting_compress(data, **kwargs):
            compressed.append(len(data))
            return real_compress(data, **kwargs)

        monkeypatch.setattr(gzip, "compress", counting_compress)
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        result = execute_cell(spec)
        # pad the entry well past the compression threshold
        result.stats["padding"] = "x" * (2 * GZIP_MIN_BYTES)
        client = HttpStore(url)
        assert client.put(fingerprint, spec, result, 0.1)
        assert compressed, "PUT body above threshold was not compressed"
        stored = json.loads(
            (server.store.path_for(fingerprint)).read_text())
        validate_entry(fingerprint, stored)  # server stored it intact

        # raw GET advertising gzip must come back Content-Encoding: gzip
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", f"/cells/{fingerprint}",
                     headers={"Accept-Encoding": "gzip"})
        response = conn.getresponse()
        body = response.read()
        assert response.getheader("Content-Encoding") == "gzip"
        assert json.loads(gzip.decompress(body)) == stored
        conn.close()
        assert_same_result(HttpStore(url).get(fingerprint), result)

    def test_small_bodies_stay_uncompressed(self, serve):
        url, _server = serve()
        channel = HttpChannel(url)
        response = channel.request("POST", "/work/claim",
                                   b'{"worker": "w"}')
        assert response.status == 200  # tiny body, identity both ways
        assert json.loads(response.body)["status"] == "empty"

    def test_old_server_gzip_fallback(self):
        channel = HttpChannel("http://127.0.0.1:1")
        sent = []

        def fake_round_trip(method, path, body, content_type, compressed):
            sent.append(compressed)
            if compressed:
                # a v1 server tried to parse raw gzip bytes as JSON
                from repro.sim.sweep.store import HttpResponse
                return HttpResponse(400, b"rejected entry: bad json",
                                    "repro-store/1")
            from repro.sim.sweep.store import HttpResponse
            return HttpResponse(204, b"", "repro-store/1")

        channel._round_trip = fake_round_trip
        big = b"x" * (2 * GZIP_MIN_BYTES)
        assert channel.request("PUT", "/cells/feed", big).status == 204
        assert sent == [True, False]  # one wasted round trip, then identity
        assert channel.request("PUT", "/cells/feed", big).status == 204
        assert sent[-1] is False  # compression stays off for the channel

    def test_new_server_400_keeps_gzip_enabled(self):
        channel = HttpChannel("http://127.0.0.1:1")
        sent = []

        def fake_round_trip(method, path, body, content_type, compressed):
            sent.append(compressed)
            from repro.sim.sweep.store import HttpResponse
            return HttpResponse(400, b"rejected entry: schema",
                                "repro-store/2")

        channel._round_trip = fake_round_trip
        big = b"x" * (2 * GZIP_MIN_BYTES)
        # a legitimate 400 from a gzip-capable server is NOT renegotiated
        assert channel.request("PUT", "/cells/feed", big).status == 400
        assert sent == [True] and channel.send_gzip


# --------------------------------------------------------------------------
# concurrent writers against one coordinator
# --------------------------------------------------------------------------

class TestConcurrentPut:
    def test_same_fingerprint_last_write_wins_no_torn_reads(self, serve):
        url, server = serve()
        spec = tiny()
        fingerprint = cell_fingerprint(spec)
        result = execute_cell(spec)
        entries = [entry_for(fingerprint, spec, result, 0.01 * (i + 1))
                   for i in range(8)]
        failures = []
        seen = []
        stop = threading.Event()

        def writer(entry):
            client = HttpStore(url)
            for _ in range(10):
                if not client.submit_entry(fingerprint, entry):
                    failures.append(entry)

        def reader():
            client = HttpStore(url)
            while not stop.is_set():
                data = client.read_entry(fingerprint)
                if data is not None:
                    seen.append(validate_entry(fingerprint, data))

        threads = [threading.Thread(target=writer, args=(entry,))
                   for entry in entries]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()
        assert not failures  # every concurrent PUT succeeded
        # every concurrent read observed a complete, valid entry
        assert seen
        for observed in seen:
            assert_same_result(observed, result)
        # the surviving file is one of the written entries, intact
        final = json.loads(server.store.path_for(fingerprint).read_text())
        assert final in entries


# --------------------------------------------------------------------------
# the wire protocol end to end (client <-> live server)
# --------------------------------------------------------------------------

class TestCoordinatorHttp:
    def test_lease_protocol_over_http(self, serve):
        url, _server = serve()
        client = CoordinatorClient(url)
        cells = [tiny(), tiny(seed=1)]
        seeded = client.seed([wire(cells)])
        assert seeded["seeded_cells"] == 2
        claim = client.claim("w1")
        assert claim["status"] == "lease"
        lease = claim["lease"]
        assert client.heartbeat(lease["id"], "w1")["ok"]
        done = client.done(lease["id"], "w1",
                           [ok_row(c) for c in cells])
        assert done["retired"] and done["accepted"] == 2
        status = client.status()
        assert status["drained"]
        assert client.claim("w1") == {"status": "empty", "seeded": True}

    def test_heartbeat_410_is_an_answer_not_an_error(self, serve):
        url, _server = serve(ttl=0.2)
        client = CoordinatorClient(url)
        client.seed([wire([tiny()])])
        lease = client.claim("w1")["lease"]
        time.sleep(0.35)
        renewed = client.heartbeat(lease["id"], "w1")
        assert renewed["ok"] is False

    def test_expired_lease_requeues_over_http(self, serve):
        url, _server = serve(ttl=0.2)
        client = CoordinatorClient(url)
        client.seed([wire([tiny()])])
        client.claim("w1")
        time.sleep(0.35)
        reclaim = client.claim("w2")
        assert reclaim["status"] == "lease"
        assert client.status()["totals"]["requeues"] == 1

    def test_malformed_seed_is_rejected_without_retry(self, serve):
        url, _server = serve()
        client = CoordinatorClient(url, max_tries=5)
        started = time.perf_counter()
        with pytest.raises(CoordinatorError):
            client.seed([[{"fingerprint": "nope", "spec": {}}]])
        # 4xx raises immediately: no retry/backoff was burned
        assert time.perf_counter() - started < 1.0

    def test_store_only_server_has_no_work_endpoints(self, serve):
        url, _server = serve(work=False)
        client = CoordinatorClient(url)
        with pytest.raises(CoordinatorError):
            client.status()
        root = HttpChannel(url).request("GET", "/")
        assert json.loads(root.body)["work"] is False

    def test_unreachable_coordinator_raises_after_bounded_retries(self):
        client = CoordinatorClient("http://127.0.0.1:9", timeout=0.2,
                                   max_tries=2, backoff_s=0.01)
        with pytest.raises(CoordinatorError, match="unreachable after"):
            client.claim("w1")


# --------------------------------------------------------------------------
# full distributed sweeps: subprocess workers vs --jobs 1
# --------------------------------------------------------------------------

#: four warm groups over three benchmark/scheme families: one shared-warm
#: timing trio, two singleton groups, and one slow group (applu) that
#: stays in flight long enough to kill a worker holding it.
GRID = [
    tiny(),
    tiny(hash_throughput=0.8),
    tiny(buffer_entries=4),
    tiny("gzip", SchemeKind.BASE),
    tiny("twolf", SchemeKind.CHASH, l2_size=256 * KB),
]

SLOW_GRID = GRID + [tiny("applu", SchemeKind.CHASH)]


def spawn_worker(url, tmp_path, name, extra=()):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--coordinator", url,
         "--cache-dir", str(tmp_path / f"l1-{name}"), "--name", name,
         "--poll", "0.05", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


@pytest.fixture(scope="module")
def local_reference():
    """The ``--jobs 1`` ground truth, computed once for the module."""
    report = run_cells(SLOW_GRID, jobs=1, cache=None)
    assert not report.failed, report.summary()
    return report


class TestDistributedSweep:
    def test_two_workers_bit_identical_to_jobs1(self, serve, tmp_path,
                                                local_reference):
        url, _server = serve(ttl=30.0)
        workers = [spawn_worker(url, tmp_path, name,
                                extra=("--exit-when-idle",))
                   for name in ("alpha", "beta")]
        try:
            report = run_distributed(GRID, url,
                                     cache_dir=tmp_path / "driver",
                                     poll_s=0.05, timeout_s=300)
            for proc in workers:
                assert proc.wait(timeout=60) == 0, proc.stdout.read()
        finally:
            for proc in workers:
                proc.kill()
        assert not report.failed, report.summary()
        assert [o.spec for o in report.outcomes] == GRID
        reference = {o.spec: o.result for o in local_reference.outcomes}
        for outcome in report.outcomes:
            assert_same_result(outcome.result, reference[outcome.spec])
        # every cell computed exactly once across the cluster
        computed = sum(stats["cells"] for stats in report.workers.values())
        assert computed == len(GRID)
        assert set(report.workers) <= {"alpha", "beta"}
        assert report.requeues == 0

    def test_worker_killed_mid_group_is_recovered(self, serve, tmp_path,
                                                  local_reference):
        url, server = serve(ttl=1.0)
        status = CoordinatorClient(url)
        outcome = {}

        def drive():
            outcome["report"] = run_distributed(
                SLOW_GRID, url, cache_dir=tmp_path / "driver",
                poll_s=0.05, timeout_s=300)

        driver = threading.Thread(target=drive)
        driver.start()
        victim = spawn_worker(url, tmp_path, "victim")
        rescuer = None
        try:
            # wait until the victim actually holds a lease, then kill it
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                board = status.status()
                claims = board["workers"].get("victim", {}).get("claims", 0)
                if claims and board["totals"]["leased_groups"]:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never claimed a group")
            victim.kill()
            victim.wait(timeout=30)
            rescuer = spawn_worker(url, tmp_path, "rescuer",
                                   extra=("--exit-when-idle",))
            driver.join(timeout=300)
            assert not driver.is_alive(), "distributed sweep never finished"
            assert rescuer.wait(timeout=60) == 0, rescuer.stdout.read()
        finally:
            victim.kill()
            if rescuer is not None:
                rescuer.kill()
            driver.join(timeout=5)
        report = outcome["report"]
        assert not report.failed, report.summary()
        # bit-identical to the single-host run despite the mid-group death
        reference = {o.spec: o.result for o in local_reference.outcomes}
        assert [o.spec for o in report.outcomes] == SLOW_GRID
        for cell in report.outcomes:
            assert_same_result(cell.result, reference[cell.spec])
        # the dead worker's lease was requeued to a live one...
        assert report.requeues >= 1
        assert report.workers["rescuer"]["cells"] >= 1
        # ...and duplicated work stayed bounded: far fewer cells computed
        # than re-running the whole grid per worker
        computed = sum(stats["cells"] for stats in report.workers.values())
        assert len(SLOW_GRID) <= computed < 2 * len(SLOW_GRID)

    def test_distributed_rerun_is_served_from_the_store(self, serve,
                                                        tmp_path):
        url, _server = serve(subdir="rerun")
        worker = spawn_worker(url, tmp_path, "solo",
                              extra=("--exit-when-idle",))
        try:
            cold = run_distributed(GRID[:2], url,
                                   cache_dir=tmp_path / "cold",
                                   poll_s=0.05, timeout_s=300)
            assert worker.wait(timeout=120) == 0, worker.stdout.read()
        finally:
            worker.kill()
        assert len(cold.ran) == 2
        # a rerun against the same coordinator needs no workers at all
        warm = run_distributed(GRID[:2], url, cache_dir=tmp_path / "warm",
                               poll_s=0.05, timeout_s=60)
        assert not warm.ran and len(warm.cached) == 2
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert_same_result(a.result, b.result)
