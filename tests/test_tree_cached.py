"""Tests for the cached hash tree (the chash algorithm, Section 5.3)."""

import pytest

from repro.common import IntegrityError
from repro.hashtree import CachedHashTree, ChunkCache, HashTree, TreeLayout
from repro.memory import UntrustedMemory

from tests.conftest import SMALL_DATA_BYTES, make_chash, make_naive


class TestChunkCache:
    def test_lru_eviction_order(self):
        cache = ChunkCache(2)
        cache.put(1, bytearray(b"a"), dirty=False)
        cache.put(2, bytearray(b"b"), dirty=False)
        cache.get(1)  # promote 1
        victim, _, _ = cache.pop_victim()
        assert victim == 2

    def test_dirty_tracking(self):
        cache = ChunkCache(2)
        cache.put(1, bytearray(b"a"), dirty=True)
        assert cache.is_dirty(1)
        cache.mark_clean(1)
        assert not cache.is_dirty(1)

    def test_pop_returns_dirtiness(self):
        cache = ChunkCache(1)
        cache.put(1, bytearray(b"a"), dirty=True)
        _, _, dirty = cache.pop_victim()
        assert dirty

    def test_mark_dirty_requires_presence(self):
        cache = ChunkCache(1)
        with pytest.raises(KeyError):
            cache.mark_dirty(42)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ChunkCache(0)


class TestCachedReadWrite:
    def test_read_after_write(self):
        _, tree = make_chash()
        tree.write(0, b"hello")
        assert tree.read(0, 5) == b"hello"

    def test_data_survives_flush(self):
        _, tree = make_chash(capacity=4)
        tree.write(321, b"persist")
        tree.flush()
        assert tree.read(321, 7) == b"persist"

    def test_cached_read_is_hit(self):
        _, tree = make_chash()
        tree.read(0, 8)
        tree.stats.reset()
        tree.read(0, 8)
        assert tree.stats["cache_hits"] == 1
        assert tree.stats["memory_chunk_reads"] == 0
        assert tree.stats["hash_computations"] == 0

    def test_whole_chunk_write_skips_fetch(self):
        """The write-allocate valid-bit optimization of Section 5.3."""
        _, tree = make_chash()
        tree.stats.reset()
        tree.write(128, b"Z" * 64)
        assert tree.stats["whole_chunk_write_allocations"] == 1
        assert tree.stats["memory_chunk_reads"] == 0

    def test_partial_write_fetches_and_checks(self):
        _, tree = make_chash()
        tree.stats.reset()
        tree.write(128, b"Z" * 8)
        assert tree.stats["memory_chunk_reads"] >= 1

    def test_differential_against_naive(self):
        """chash and the naive tree must expose identical memory semantics."""
        _, cached = make_chash(capacity=3)
        _, naive = make_naive()
        operations = [
            (0, b"alpha"), (64, b"beta"), (4000, b"gamma"), (63, b"x" * 65),
            (1000, bytes(300)), (0, b"overwrite"),
        ]
        for address, data in operations:
            cached.write(address, data)
            naive.write(address, data)
        for address in (0, 63, 64, 1000, 1290, 4000):
            assert cached.read(address, 64) == naive.read(address, 64)

    def test_flush_produces_naive_verifiable_state(self):
        """After a flush, an independent uncached verifier accepts memory."""
        memory, tree = make_chash(capacity=4)
        for i in range(0, SMALL_DATA_BYTES, 100):
            tree.write(i, bytes([i % 256] * 10))
        tree.flush()
        checker = HashTree(memory, tree.layout)
        checker.secure_store = list(tree.secure_store)
        for i in range(0, SMALL_DATA_BYTES, 64):
            checker.read(i, 64)  # raises on any inconsistency


class TestCachedVerification:
    def test_detects_memory_corruption_on_miss(self):
        memory, tree = make_chash(capacity=2)
        tree.write(0, b"secret")
        tree.flush()
        # Evict chunk 0's leaf by touching other data.
        for i in range(1, 10):
            tree.read(i * 64, 1)
        memory.poke(tree.layout.chunk_address(tree.layout.first_leaf), b"X")
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_cached_chunk_shields_stale_memory(self):
        """A cached chunk is trusted: memory corruption behind it is
        invisible until eviction, at which point the write-back overwrites
        it — the attack never reaches the program."""
        memory, tree = make_chash(capacity=1000)
        tree.write(0, b"secret")
        memory.poke(tree.layout.chunk_address(tree.layout.first_leaf), b"X")
        assert tree.read(0, 6) == b"secret"

    def test_uncached_hash_chunk_corruption_detected(self):
        memory, tree = make_chash(capacity=2)
        tree.write(0, b"secret")
        tree.flush()
        for i in range(20, 40):
            tree.read(i * 64, 1)  # cycle the tiny cache
        leaf = tree.layout.first_leaf
        location = tree.layout.hash_location(leaf)
        memory.poke(location.address, b"\xee")
        with pytest.raises(IntegrityError):
            tree.read(0, 1)

    def test_checking_disabled_mode_skips_checks(self):
        memory, tree = make_chash(capacity=2)
        tree.checking_enabled = False
        memory.poke(tree.layout.chunk_address(tree.layout.first_leaf), b"X")
        tree.read(0, 1)  # no exception: initialization mode
        assert tree.stats["hash_checks"] == 0


class TestInitialization:
    def test_touch_initialization_equals_direct_build(self):
        """Section 5.8's procedure must yield the same tree as bottom-up."""
        layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
        content = bytes(range(256)) * (SMALL_DATA_BYTES // 256)

        memory_a = UntrustedMemory(layout.physical_bytes)
        memory_a.poke(layout.chunk_address(layout.first_leaf), content)
        cached = CachedHashTree(memory_a, layout, capacity_chunks=4)
        cached.initialize_by_touch()
        cached.flush()

        memory_b = UntrustedMemory(layout.physical_bytes)
        memory_b.poke(layout.chunk_address(layout.first_leaf), content)
        naive = HashTree(memory_b, layout)
        naive.build()

        assert cached.secure_store == naive.secure_store
        assert memory_a.peek(0, layout.physical_bytes) == memory_b.peek(
            0, layout.physical_bytes
        )

    def test_initialize_with_payload(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = CachedHashTree(memory, layout, capacity_chunks=4)
        tree.initialize_by_touch(payload=b"\xab" * 64)
        assert tree.read(0, 4) == b"\xab" * 4

    def test_initialize_rejects_bad_payload(self):
        layout = TreeLayout(SMALL_DATA_BYTES, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = CachedHashTree(memory, layout, capacity_chunks=4)
        with pytest.raises(ValueError):
            tree.initialize_by_touch(payload=b"short")


class TestTinyCache:
    @pytest.mark.parametrize("capacity", [1, 2, 3])
    def test_correct_under_extreme_pressure(self, capacity):
        _, tree = make_chash(capacity=capacity)
        for i in range(64):
            tree.write(i * 64, bytes([i]) * 8)
        for i in range(64):
            assert tree.read(i * 64, 8) == bytes([i]) * 8
