"""Tests for the ``repro check`` static-analysis gate.

Three layers:

* the fixture-driven self-test (every rule has a positive case; the
  clean fixtures stay silent),
* waiver syntax semantics on synthetic files,
* **injection tests** — mutate the real simulator sources (an
  unsnapshotted field on the warm path, a dropped state transition in a
  warm twin) and assert the relevant pass catches exactly that, which is
  the acceptance-criteria proof that snapshot completeness is actually
  enforced rather than vacuously true.
"""

from pathlib import Path

import pytest

from repro.checks import (
    COUNTER_ATTRS, RULES, SNAPSHOT_ALLOWLIST, collect_findings,
    format_findings, run_selftest,
)
from repro.checks.astutils import ProjectIndex, load_module
from repro.checks.findings import Finding
from repro.checks.runner import fixtures_root, run_passes

REPO = Path(__file__).resolve().parents[1]
CACHE_PY = REPO / "src" / "repro" / "cache" / "cache.py"
HIERARCHY_PY = REPO / "src" / "repro" / "cache" / "hierarchy.py"


def _check_file(path: Path):
    return collect_findings(paths=[path], assume_sim=True)


class TestCleanTree:
    def test_real_tree_has_no_findings(self):
        findings = collect_findings()
        assert findings == [], format_findings(findings)

    def test_selftest_passes(self):
        ok, report = run_selftest()
        assert ok, "\n".join(report)


class TestFixtures:
    @pytest.fixture(scope="class")
    def fixture_findings(self):
        root = fixtures_root()
        paths = sorted(root.glob("*.py"))
        index = ProjectIndex([load_module(p, root) for p in paths])
        return run_passes(index, assume_sim=True)

    def test_every_rule_has_a_positive_case(self, fixture_findings):
        fired = {f.rule for f in fixture_findings}
        assert fired == set(RULES), sorted(set(RULES) - fired)

    def test_clean_fixtures_stay_silent(self, fixture_findings):
        clean = {"det_clean.py", "snap_clean.py"}
        noisy = [f for f in fixture_findings
                 if Path(f.path).name in clean]
        assert noisy == []

    @pytest.mark.parametrize("name, rule", [
        ("det_violations.py", "det-global-random"),
        ("det_violations.py", "det-builtin-hash"),
        ("det_violations.py", "det-set-iteration"),
        ("snap_violations.py", "snap-missing-field"),
        ("snap_violations.py", "snap-no-snapshot"),
        ("sym_violations.py", "sym-counter-asymmetry"),
        ("api_violations.py", "api-missing-method"),
        ("api_violations.py", "api-signature-mismatch"),
        ("api_violations.py", "api-private-crossmodule"),
    ])
    def test_rule_fires_in_expected_fixture(self, fixture_findings,
                                            name, rule):
        assert any(Path(f.path).name == name and f.rule == rule
                   for f in fixture_findings)


class TestWaivers:
    def _write(self, tmp_path, body):
        path = tmp_path / "waived.py"
        path.write_text(body)
        return path

    def test_valid_waiver_suppresses(self, tmp_path):
        path = self._write(tmp_path, (
            "import random\n"
            "def f():\n"
            "    # repro-check: disable=det-global-random -- test: draws discarded\n"
            "    return random.random()\n"
        ))
        assert _check_file(path) == []

    def test_same_line_waiver_suppresses(self, tmp_path):
        path = self._write(tmp_path, (
            "import random\n"
            "def f():\n"
            "    return random.random()  "
            "# repro-check: disable=det-global-random -- test: same line\n"
        ))
        assert _check_file(path) == []

    def test_missing_justification_does_not_suppress(self, tmp_path):
        path = self._write(tmp_path, (
            "import random\n"
            "def f():\n"
            "    return random.random()  # repro-check: disable=det-global-random\n"
        ))
        rules = {f.rule for f in _check_file(path)}
        assert rules == {"waiver-missing-justification", "det-global-random"}

    def test_unknown_rule_is_flagged(self, tmp_path):
        path = self._write(tmp_path, (
            "# repro-check: disable=no-such-rule -- test: bogus id\n"
            "x = 1\n"
        ))
        rules = {f.rule for f in _check_file(path)}
        assert rules == {"waiver-unknown-rule"}

    def test_waiver_only_covers_adjacent_line(self, tmp_path):
        path = self._write(tmp_path, (
            "import random\n"
            "def f():\n"
            "    # repro-check: disable=det-global-random -- test: covers next line only\n"
            "    x = 1\n"
            "    return random.random()\n"
        ))
        rules = [f.rule for f in _check_file(path)]
        assert rules == ["det-global-random"]

    def test_waiver_is_rule_specific(self, tmp_path):
        path = self._write(tmp_path, (
            "import random\n"
            "def f():\n"
            "    # repro-check: disable=det-wallclock -- test: wrong rule waived\n"
            "    return random.random()\n"
        ))
        rules = [f.rule for f in _check_file(path)]
        assert rules == ["det-global-random"]


class TestSnapshotInjection:
    """Acceptance-criteria proof: inject an unsnapshotted field into the
    real warm path and watch the checker catch it."""

    def _mutated(self, tmp_path, source_path, anchor, injected):
        source = source_path.read_text()
        assert anchor in source, f"anchor vanished from {source_path}"
        path = tmp_path / source_path.name
        path.write_text(source.replace(anchor, injected + anchor))
        return path

    def test_unsnapshotted_field_in_cache_warm_access(self, tmp_path):
        path = self._mutated(
            tmp_path, CACHE_PY,
            "offset_bits = self._offset_bits",
            "self._leak = 1\n        ",
        )
        findings = [f for f in _check_file(path)
                    if f.rule == "snap-missing-field"]
        assert findings, "injected field not caught"
        assert all("_leak" in f.message for f in findings)
        assert any("CacheSim" in f.message for f in findings)

    def test_unsnapshotted_field_in_hierarchy_warm_packed(self, tmp_path):
        path = self._mutated(
            tmp_path, HIERARCHY_PY,
            "l1i_warm = self.l1i.warm_access",
            "self._leak = 0\n        ",
        )
        findings = [f for f in _check_file(path)
                    if f.rule == "snap-missing-field"]
        assert findings, "injected field not caught"
        assert any("MemoryHierarchy._leak" in f.message for f in findings)

    def test_aliased_mutation_is_attributed(self, tmp_path):
        """``ways = self._sets[i]; ways.insert(...)`` must count against
        ``_sets`` — remove ``_sets`` from snapshot() and the pass fires."""
        source = CACHE_PY.read_text()
        anchor = "[list(ways) for ways in self._sets]"
        assert anchor in source
        path = tmp_path / "cache.py"
        path.write_text(source.replace(anchor, "[]"))
        findings = [f for f in _check_file(path)
                    if f.rule == "snap-missing-field"]
        assert any("CacheSim._sets" in f.message for f in findings)

    def test_dropped_transition_breaks_symmetry(self, tmp_path):
        """Delete warm_access's dirty-bit update: the counted twin still
        mutates ``_dirty``, so the symmetry pass must fire."""
        source = CACHE_PY.read_text()
        anchor = ("            if write:\n"
                  "                self._dirty.add(block)\n"
                  "            return True\n")
        assert anchor in source, "warm_access dirty branch moved"
        path = tmp_path / "cache.py"
        path.write_text(source.replace(anchor, "            return True\n"))
        findings = [f for f in _check_file(path)
                    if f.rule == "sym-counter-asymmetry"]
        assert findings, "dropped transition not caught"
        assert any("warm_access" in f.message and "_dirty" in f.message
                   for f in findings)


class TestFindings:
    def test_text_format(self):
        finding = Finding("src/x.py", 12, "det-entropy", "boom")
        assert finding.text() == "src/x.py:12: [det-entropy] boom"

    def test_github_format_is_single_line(self):
        finding = Finding("src/x.py", 12, "det-entropy", "multi\nline  msg")
        rendered = finding.github()
        assert rendered == ("::error file=src/x.py,line=12,"
                            "title=det-entropy::multi line msg")

    def test_format_findings_switches(self):
        finding = Finding("a.py", 1, "det-entropy", "m")
        assert format_findings([finding], "text") == finding.text()
        assert format_findings([finding], "github") == finding.github()

    def test_findings_sort_by_location(self):
        a = Finding("a.py", 2, "det-entropy", "m")
        b = Finding("a.py", 1, "det-wallclock", "m")
        assert sorted([a, b]) == [b, a]


class TestRegistries:
    def test_counter_attrs_cover_cache_allowlist(self):
        """The symmetry counter set and the snapshot allowlist agree on
        what 'statistics-only' means for the cache classes."""
        for attr in SNAPSHOT_ALLOWLIST["CacheSim"]:
            assert attr in COUNTER_ATTRS

    def test_every_allowlist_entry_is_justified(self):
        for owner, entries in SNAPSHOT_ALLOWLIST.items():
            for attr, why in entries.items():
                assert isinstance(why, str) and len(why) > 20, (owner, attr)

    def test_rule_ids_are_kebab_case(self):
        for rule in RULES:
            assert rule == rule.lower() and " " not in rule
