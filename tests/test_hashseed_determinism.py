"""PYTHONHASHSEED cross-run bit-identity (ISSUE 4 satellite).

Python randomizes str/bytes hashing per process unless PYTHONHASHSEED
is pinned, which perturbs dict/set iteration order.  Every figure rests
on results being independent of that: this test runs the same tiny
2-cell sweep in two subprocesses under *different* hash seeds and
asserts byte-identical result rows — cycles, full stats dicts, and the
cell/warm fingerprints.  If any sim code ever iterates a set into
state, hashes a string into a result, or fingerprints unsorted dict
output, the two runs diverge and this fails (and ``repro check``'s
determinism pass should have flagged the cause).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

_SWEEP_SCRIPT = r"""
import json
from repro.common import SchemeKind
from repro.sim.sweep import CellSpec, cell_fingerprint, run_cells, warm_fingerprint

cells = [
    CellSpec("gzip", SchemeKind.CHASH, instructions=400, warmup=300),
    CellSpec("gzip", SchemeKind.BASE, instructions=400, warmup=300),
]
report = run_cells(cells, jobs=1, cache=None)
rows = []
for spec in sorted(report.results, key=lambda s: s.label()):
    result = report.results[spec]
    rows.append({
        "label": spec.label(),
        "cell_fingerprint": cell_fingerprint(spec),
        "warm_fingerprint": warm_fingerprint(spec),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "stats": result.stats,
    })
print(json.dumps(rows, sort_keys=True))
"""


def _run_sweep(hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["PYTHONHASHSEED"] = str(hash_seed)
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_sweep_results_identical_across_hash_seeds():
    baseline = _run_sweep(0)
    randomized = _run_sweep(4242)
    assert baseline == randomized

    rows = json.loads(baseline)
    assert len(rows) == 2
    for row in rows:
        assert row["cycles"] > 0
        assert row["stats"], "stats dict unexpectedly empty"
        assert len(row["cell_fingerprint"]) == 64
        assert len(row["warm_fingerprint"]) == 64
