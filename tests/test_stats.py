"""Unit tests for repro.common.stats."""

from repro.common.stats import StatGroup, merge_groups


class TestStatGroup:
    def test_add_creates_and_increments(self):
        group = StatGroup("g")
        group.add("hits")
        group.add("hits", 2)
        assert group["hits"] == 3

    def test_missing_key_reads_zero(self):
        group = StatGroup("g")
        assert group["nothing"] == 0
        assert group.get("nothing", 7) == 7

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.add("x", 10)
        group.set("x", 2)
        assert group["x"] == 2

    def test_max_keeps_largest(self):
        group = StatGroup("g")
        group.max("peak", 3)
        group.max("peak", 1)
        group.max("peak", 9)
        assert group["peak"] == 9

    def test_ratio(self):
        group = StatGroup("g")
        group.add("hits", 3)
        group.add("accesses", 4)
        assert group.ratio("hits", "accesses") == 0.75

    def test_ratio_zero_denominator(self):
        group = StatGroup("g")
        group.add("hits", 3)
        assert group.ratio("hits", "accesses") == 0.0

    def test_contains(self):
        group = StatGroup("g")
        group.add("x")
        assert "x" in group
        assert "y" not in group

    def test_reset(self):
        group = StatGroup("g")
        group.add("x", 5)
        group.reset()
        assert group["x"] == 0

    def test_as_dict_prefixing(self):
        group = StatGroup("l2")
        group.add("misses", 2)
        assert group.as_dict() == {"l2.misses": 2}
        assert group.as_dict(prefix=False) == {"misses": 2}

    def test_items_sorted(self):
        group = StatGroup("g")
        group.add("b")
        group.add("a")
        assert [k for k, _ in group.items()] == ["a", "b"]


def test_merge_groups():
    a = StatGroup("a")
    a.add("x", 1)
    b = StatGroup("b")
    b.add("x", 2)
    merged = merge_groups(a, b)
    assert merged == {"a.x": 1, "b.x": 2}
