"""Unit and property tests for the flat m-ary tree layout (Section 5.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.hashtree import SECURE_PARENT, TreeLayout


class TestBasicGeometry:
    def test_paper_default_arity_is_four(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        assert layout.arity == 4

    def test_leaves_count(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        assert layout.n_leaves == 64
        assert layout.total_chunks == layout.n_internal + layout.n_leaves

    def test_leaves_are_contiguous_and_last(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        for chunk in range(layout.total_chunks):
            assert layout.is_leaf(chunk) == (chunk >= layout.first_leaf)

    def test_chunk_addressing(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        assert layout.chunk_address(3) == 192
        assert layout.chunk_at_address(192) == 3
        assert layout.chunk_at_address(200) == 3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TreeLayout(data_bytes=100, chunk_bytes=64)  # not a chunk multiple
        with pytest.raises(ConfigurationError):
            TreeLayout(data_bytes=64, chunk_bytes=48)  # not a power of two
        with pytest.raises(ConfigurationError):
            TreeLayout(data_bytes=64, chunk_bytes=64, hash_bytes=40)
        with pytest.raises(ConfigurationError):
            TreeLayout(data_bytes=16, chunk_bytes=16, hash_bytes=16)  # arity 1


class TestParentArithmetic:
    def test_top_chunks_hash_in_secure_memory(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        for chunk in range(layout.arity):
            assert layout.parent_of(chunk) == SECURE_PARENT
            assert layout.hash_location(chunk).in_secure_memory

    def test_paper_formula(self):
        # parent(i) = floor(i / m) - 1; index = i mod m
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        m = layout.arity
        for chunk in range(m, layout.total_chunks):
            assert layout.parent_of(chunk) == chunk // m - 1
            assert layout.index_in_parent(chunk) == chunk % m

    def test_children_inverse_of_parent(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        for parent in range(layout.total_chunks):
            for child in layout.children_of(parent):
                assert layout.parent_of(child) == parent

    def test_hash_location_address(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        m = layout.arity
        chunk = m + 3  # child of chunk 0, index 3
        location = layout.hash_location(chunk)
        assert not location.in_secure_memory
        assert location.parent_chunk == 0
        assert location.index == 3
        assert location.address == 3 * 16

    def test_path_to_root_terminates(self):
        layout = TreeLayout(data_bytes=64 * 256, chunk_bytes=64, hash_bytes=16)
        path = list(layout.path_to_root(layout.total_chunks - 1))
        assert path[0] == layout.total_chunks - 1
        assert layout.parent_of(path[-1]) == SECURE_PARENT
        # strictly decreasing chunk numbers: parents come earlier in memory
        assert all(a > b for a, b in zip(path, path[1:]))

    def test_out_of_range_chunk_rejected(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        with pytest.raises(IndexError):
            layout.parent_of(layout.total_chunks)
        with pytest.raises(IndexError):
            layout.parent_of(-1)


class TestAddressTranslation:
    def test_round_trip(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        chunk, offset = layout.leaf_for_address(130)
        assert offset == 2
        assert layout.address_for_leaf(chunk) == 128

    def test_rejects_out_of_segment(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        with pytest.raises(IndexError):
            layout.leaf_for_address(64 * 64)

    def test_address_for_non_leaf_rejected(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        with pytest.raises(ValueError):
            layout.address_for_leaf(0)


class TestOverhead:
    def test_4ary_overhead_near_one_third(self):
        # 1/(m-1) for m=4 is 1/3 (the paper's "one quarter of memory is
        # hashes" counts hashes/total = 1/m).
        layout = TreeLayout(data_bytes=64 * 4096, chunk_bytes=64, hash_bytes=16)
        assert layout.memory_overhead == pytest.approx(1 / 3, rel=0.05)

    def test_8ary_overhead_near_one_seventh(self):
        layout = TreeLayout(data_bytes=128 * 4096, chunk_bytes=128, hash_bytes=16)
        assert layout.memory_overhead == pytest.approx(1 / 7, rel=0.05)

    def test_depth_is_logarithmic(self):
        small = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        big = TreeLayout(data_bytes=64 * 64 * 256, chunk_bytes=64, hash_bytes=16)
        assert big.max_depth() == small.max_depth() + 4  # 256 = 4^4, arity 4

    def test_secure_slots_bounded_by_arity(self):
        layout = TreeLayout(data_bytes=64 * 64, chunk_bytes=64, hash_bytes=16)
        assert layout.secure_hash_slots == 4


@given(
    n_leaves=st.integers(min_value=1, max_value=3000),
    log_arity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80)
def test_layout_properties(n_leaves, log_arity):
    """Every chunk is either a leaf or stores hashes for its children; every
    chunk's hash has exactly one home; data capacity is at least requested."""
    hash_bytes = 16
    chunk_bytes = hash_bytes << log_arity
    layout = TreeLayout(n_leaves * chunk_bytes, chunk_bytes, hash_bytes)
    arity = 1 << log_arity
    assert layout.arity == arity
    assert layout.n_leaves >= n_leaves

    homes = {}
    for chunk in range(layout.total_chunks):
        location = layout.hash_location(chunk)
        if location.in_secure_memory:
            key = ("secure", location.index)
        else:
            key = ("chunk", location.parent_chunk, location.index)
            assert not layout.is_leaf(location.parent_chunk)
        assert key not in homes, "two chunks share a hash slot"
        homes[key] = chunk

    # children_of partitions the non-top chunks exactly once
    covered = set()
    for chunk in range(layout.total_chunks):
        for child in layout.children_of(chunk):
            assert child not in covered
            covered.add(child)
    assert covered == set(range(min(arity, layout.total_chunks), layout.total_chunks))

    # depth bounded by ceil(log_m(total_chunks)) + 1
    max_depth = layout.max_depth()
    bound = 1
    reach = arity
    while reach < layout.total_chunks:
        reach *= arity
        bound += 1
    assert max_depth <= bound
