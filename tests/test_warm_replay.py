"""Bit-identity of the warm-up accelerator (packed replay + snapshots).

The warm-state machinery is only allowed to change *wall-clock*, never
results: the packed fast path must leave the hierarchy in exactly the
state the object-stream warm-up produces, and a cell measured from a
restored snapshot must equal the same cell warmed from scratch — for
every scheme, and across cells that share a warm key while differing in
timing parameters.
"""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.common.config import MB, SchemeKind, table1_config
from repro.sim.system import (
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)
from repro.workloads.generators import (
    WARM_IFETCH,
    WARM_LOAD,
    WARM_STORE,
    WARM_STORE_FULL,
    InstructionStream,
    generate_instructions,
)
from repro.workloads.spec import SPEC_PROFILES

ALL_SCHEMES = (SchemeKind.BASE, SchemeKind.NAIVE, SchemeKind.CHASH,
               SchemeKind.MHASH, SchemeKind.IHASH)

#: one profile per access pattern (wset, random, stream, mixed)
PATTERN_BENCHMARKS = ("gcc", "mcf", "swim", "art")


def functional_state(hierarchy: MemoryHierarchy) -> dict:
    """The hierarchy snapshot minus statistics.

    Warm-up statistics are reset at the measurement boundary, so the two
    warm paths are free to account them differently (the object path
    records a time-dependent ``latest_check``; the packed path replays at
    cycle 0) — what must match exactly is the functional state.
    """
    snap = hierarchy.snapshot()
    del snap["stats"]
    snap["scheme"] = None
    for key in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        snap[key] = snap[key][:-1]  # drop the per-component counter dict
    return snap


class TestInstructionStream:
    @pytest.mark.parametrize("bench", PATTERN_BENCHMARKS)
    def test_take_matches_generator(self, bench):
        profile = SPEC_PROFILES[bench]
        taken = InstructionStream(profile, seed=7).take(6_000)
        generated = list(generate_instructions(profile, 6_000, seed=7))
        assert taken == generated

    @pytest.mark.parametrize("bench", PATTERN_BENCHMARKS)
    def test_segmented_take_matches_one_shot(self, bench):
        profile = SPEC_PROFILES[bench]
        stream = InstructionStream(profile, seed=1)
        segments = stream.take(1_000) + stream.take(1) + stream.take(2_999)
        assert segments == InstructionStream(profile, seed=1).take(4_000)

    @pytest.mark.parametrize("bench", PATTERN_BENCHMARKS)
    def test_packed_prefix_preserves_suffix(self, bench):
        """Draining N instructions packed leaves the stream exactly where
        draining them as objects would — the RNG draw order is shared."""
        profile = SPEC_PROFILES[bench]
        reference = InstructionStream(profile, seed=5).take(9_000)
        stream = InstructionStream(profile, seed=5)
        for _ in stream.packed(6_000, chunk_instructions=2_048):
            pass
        assert stream.take(3_000) == reference[6_000:]

    def test_packed_rows_are_the_memory_events(self):
        profile = SPEC_PROFILES["gcc"]
        objects = InstructionStream(profile, seed=0).take(4_000)
        rows = []
        for codes, values in InstructionStream(profile, seed=0).packed(4_000):
            rows.extend(zip(codes, values))
        expected = []
        last_line = -1
        for instruction in objects:
            line = instruction.pc >> 5
            if line != last_line:
                last_line = line
                expected.append((WARM_IFETCH, instruction.pc))
            if instruction.kind == "load":
                expected.append((WARM_LOAD, instruction.address))
            elif instruction.kind == "store":
                code = WARM_STORE_FULL if instruction.full_block else WARM_STORE
                expected.append((code, instruction.address))
        assert rows == expected

    def test_state_roundtrip_resumes_exactly(self):
        profile = SPEC_PROFILES["swim"]
        stream = InstructionStream(profile, seed=2)
        stream.take(2_500)
        state = stream.state()
        expected = stream.take(2_000)
        resumed = InstructionStream.from_state(profile, state)
        assert resumed.take(2_000) == expected

    def test_packed_rejects_non_power_of_two_line(self):
        stream = InstructionStream(SPEC_PROFILES["gcc"])
        with pytest.raises(ValueError):
            next(stream.packed(100, line_bytes=48))


class TestPackedWarm:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_packed_warm_state_matches_object_warm(self, scheme):
        config = table1_config(scheme)
        profile = SPEC_PROFILES["gcc"]
        by_object = MemoryHierarchy(config)
        by_packed = MemoryHierarchy(config)
        by_object.warm(InstructionStream(profile, 0).take(20_000))
        by_packed.warm_packed(InstructionStream(profile, 0).packed(
            20_000, line_bytes=config.l1i.block_bytes))
        assert functional_state(by_object) == functional_state(by_packed)

    @pytest.mark.parametrize("bench", PATTERN_BENCHMARKS)
    def test_packed_warm_state_matches_across_patterns(self, bench):
        config = table1_config(SchemeKind.CHASH)
        profile = SPEC_PROFILES[bench]
        by_object = MemoryHierarchy(config)
        by_packed = MemoryHierarchy(config)
        by_object.warm(InstructionStream(profile, 0).take(20_000))
        by_packed.warm_packed(InstructionStream(profile, 0).packed(
            20_000, line_bytes=config.l1i.block_bytes))
        assert functional_state(by_object) == functional_state(by_packed)

    def test_packed_warm_applies_valid_bit_ablation(self):
        """With §5.3 disabled, packed full-block stores must take the
        ordinary fetch-and-check miss path, exactly like ``warm``."""
        import dataclasses
        config = dataclasses.replace(table1_config(SchemeKind.CHASH),
                                     write_allocate_valid_bits=False)
        profile = SPEC_PROFILES["swim"]  # streaming: emits full-block stores
        by_object = MemoryHierarchy(config)
        by_packed = MemoryHierarchy(config)
        by_object.warm(InstructionStream(profile, 0).take(20_000))
        by_packed.warm_packed(InstructionStream(profile, 0).packed(
            20_000, line_bytes=config.l1i.block_bytes))
        assert functional_state(by_object) == functional_state(by_packed)


class TestWarmStateSharing:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_restored_cell_equals_cold_cell(self, scheme):
        config = table1_config(scheme)
        cold = run_benchmark(config, "gcc", instructions=1_500, warmup=8_000)
        state = prepare_warm_state(config, "gcc", warmup=8_000)
        shared = run_from_warm_state(config, "gcc", state,
                                     instructions=1_500)
        assert shared.cycles == cold.cycles
        assert shared.stats == cold.stats

    def test_warm_state_survives_reuse(self):
        config = table1_config(SchemeKind.CHASH)
        state = prepare_warm_state(config, "swim", warmup=8_000)
        first = run_from_warm_state(config, "swim", state, instructions=1_500)
        second = run_from_warm_state(config, "swim", state, instructions=1_500)
        assert first.cycles == second.cycles
        assert first.stats == second.stats

    def test_warm_state_shared_across_timing_configs(self):
        """One warm state serves cells that differ only in bus/hash
        timing — the fig6/fig7 scenario the warm key exists for."""
        import dataclasses
        base_config = table1_config(SchemeKind.CHASH)
        slow_engine = dataclasses.replace(
            base_config,
            hash_engine=dataclasses.replace(
                base_config.hash_engine,
                throughput_gb_per_s=0.8,
                read_buffer_entries=1,
                write_buffer_entries=1,
            ),
        )
        state = prepare_warm_state(base_config, "gcc", warmup=8_000)
        shared = run_from_warm_state(slow_engine, "gcc", state,
                                     instructions=1_500)
        cold = run_benchmark(slow_engine, "gcc", instructions=1_500,
                             warmup=8_000)
        assert shared.cycles == cold.cycles
        assert shared.stats == cold.stats

    def test_presweep_leak_reproduced_at_zero_warmup(self):
        """``warmup=0`` keeps pre-sweep statistics in the measured run
        (historical behaviour); a snapshot must reproduce that bit for
        bit, which is why it carries the statistic groups too."""
        config = table1_config(SchemeKind.CHASH)
        cold = run_benchmark(config, "swim", instructions=1_000, warmup=0)
        state = prepare_warm_state(config, "swim", warmup=0)
        shared = run_from_warm_state(config, "swim", state,
                                     instructions=1_000)
        assert shared.cycles == cold.cycles
        assert shared.stats == cold.stats


class TestHierarchySnapshot:
    def test_snapshot_is_immune_to_later_traffic(self):
        config = table1_config(SchemeKind.CHASH)
        hierarchy = MemoryHierarchy(config)
        hierarchy.warm(InstructionStream(SPEC_PROFILES["gcc"], 0).take(5_000))
        snap = hierarchy.snapshot()
        reference = functional_state(hierarchy)
        for i in range(2_000):  # scribble over the snapshot's state
            hierarchy.store(i * 64, i, full_block=bool(i % 2))
        assert functional_state(hierarchy) != reference
        hierarchy.restore(snap)
        assert functional_state(hierarchy) == reference
        assert hierarchy.snapshot() == snap

    def test_restore_on_fresh_instance(self):
        config = table1_config(SchemeKind.MHASH)
        warmed = MemoryHierarchy(config)
        warmed.warm(InstructionStream(SPEC_PROFILES["mcf"], 0).take(5_000))
        snap = warmed.snapshot()
        fresh = MemoryHierarchy(config)
        fresh.restore(snap)
        assert functional_state(fresh) == functional_state(warmed)
        assert fresh.snapshot() == snap
