"""Hierarchy-level coverage for the warm-up helpers.

Two paths the sweep engine leans on hard but that previously had only
indirect coverage: the streaming pre-sweep (``_presweep_stream``) and the
§5.3 full-block store-allocate optimization (a store stream that
overwrites whole blocks allocates them dirty with no fetch and no check).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.common.config import SchemeKind, table1_config
from repro.sim.system import SimulatedSystem, _presweep_stream
from repro.workloads.spec import SPEC_PROFILES


def chash_config(**overrides):
    return dataclasses.replace(table1_config(SchemeKind.CHASH), **overrides)


class TestFullBlockStoreAllocate:
    """§5.3: valid-bit write-allocate at the hierarchy level, timing on."""

    def test_allocates_dirty_with_no_fetch_and_no_check(self):
        hierarchy = MemoryHierarchy(chash_config())
        address = 0x4_0000
        done, check_done = hierarchy.store(address, 0, full_block=True)
        assert done == check_done  # nothing to verify in the background
        assert hierarchy.stats["full_block_store_allocations"] == 1
        # no fetch: the block was never read from memory
        assert hierarchy.memory.stats["reads"] == 0
        assert hierarchy.memory.stats["read_bytes_data"] == 0
        # no check: the hash engine never saw the block
        assert hierarchy.engine.stats["hash_ops"] == 0
        assert hierarchy.engine.stats["checks_completed"] == 0
        # allocated dirty at both levels
        physical = hierarchy.scheme.data_address(address)
        assert hierarchy.l1d.probe(physical) and hierarchy.l1d.is_dirty(physical)
        assert hierarchy.l2.probe(physical) and hierarchy.l2.is_dirty(physical)

    def test_partial_store_takes_the_checked_miss_path(self):
        hierarchy = MemoryHierarchy(chash_config())
        hierarchy.store(0x4_0000, 0, full_block=False)
        assert hierarchy.stats["full_block_store_allocations"] == 0
        assert hierarchy.memory.stats["reads"] > 0
        assert hierarchy.engine.stats["hash_ops"] > 0

    def test_ablation_flag_disables_the_optimization(self):
        hierarchy = MemoryHierarchy(
            chash_config(write_allocate_valid_bits=False))
        hierarchy.store(0x4_0000, 0, full_block=True)
        assert hierarchy.stats["full_block_store_allocations"] == 0
        # the fully-overwritten block is fetched and checked anyway
        assert hierarchy.memory.stats["reads"] > 0
        assert hierarchy.engine.stats["hash_ops"] > 0

    def test_hit_never_counts_as_allocation(self):
        hierarchy = MemoryHierarchy(chash_config())
        hierarchy.store(0x4_0000, 0, full_block=True)
        hierarchy.store(0x4_0000, 10, full_block=True)  # L1 hit now
        assert hierarchy.stats["full_block_store_allocations"] == 1


class TestPresweepStream:
    @pytest.fixture(scope="class")
    def swept(self):
        system = SimulatedSystem(chash_config())
        _presweep_stream(system, SPEC_PROFILES["swim"])
        return system

    def test_fills_the_entire_l2(self, swept):
        l2 = swept.hierarchy.l2
        assert l2.occupancy() == l2.config.n_blocks

    def test_write_stream_leaves_dirty_state(self, swept):
        profile = SPEC_PROFILES["swim"]
        hierarchy = swept.hierarchy
        # the final store of the traversal must still be resident and dirty
        offset = (profile.footprint_bytes - 64 + profile.footprint_bytes // 2)
        last_store = profile.code_bytes + offset % profile.footprint_bytes
        physical = hierarchy.scheme.data_address(last_store)
        assert hierarchy.l1d.is_dirty(physical)

    def test_timing_state_stays_pristine(self, swept):
        hierarchy = swept.hierarchy
        assert hierarchy.memory.timing_enabled  # warm mode exited
        assert hierarchy.engine.timing_enabled
        assert hierarchy.memory.bus_free_at == 0
        assert hierarchy.memory.stats["reads"] == 0
        assert hierarchy.engine.stats["hash_ops"] == 0

    def test_cache_counters_were_diverted(self, swept):
        # per-cache statistics of the pre-sweep are discarded, not recorded
        assert not swept.hierarchy.l2.stats.counters
        assert not swept.hierarchy.l1d.stats.counters
        assert not swept.hierarchy.dtlb.stats.counters

    def test_full_block_allocations_are_recorded(self, swept):
        # swim's store stream is marked full-block, so the §5.3 counter on
        # the hierarchy group accumulates (and is cleared by the post-warm
        # reset whenever warmup > 0)
        assert swept.hierarchy.stats["full_block_store_allocations"] > 0
