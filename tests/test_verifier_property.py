"""Property-based tests of the MemoryVerifier facade, DMA included.

An arbitrary interleaving of verified reads/writes, flushes, and correct
DMA cycles (unprotect -> device write -> rebuild) must behave like a plain
byte array, for every scheme.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashtree import MemoryVerifier
from repro.memory import DMADevice, UntrustedMemory

DATA_BYTES = 32 * 64
CHUNK = 64

operation = st.one_of(
    st.tuples(st.just("write"), st.integers(0, DATA_BYTES - 1),
              st.binary(min_size=1, max_size=80)),
    st.tuples(st.just("read"), st.integers(0, DATA_BYTES - 1),
              st.integers(1, 80)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
    st.tuples(st.just("dma"), st.integers(0, DATA_BYTES // CHUNK - 1),
              st.binary(min_size=CHUNK, max_size=CHUNK)),
)


@pytest.mark.parametrize("scheme", ["naive", "chash", "mhash", "ihash"])
@given(ops=st.lists(operation, max_size=20))
@settings(max_examples=8, deadline=None)
def test_verifier_shadow_equivalence_with_dma(scheme, ops):
    memory = UntrustedMemory(1 << 17)
    verifier = MemoryVerifier(memory, DATA_BYTES, scheme=scheme,
                              cache_chunks=6)
    verifier.initialize()
    device = DMADevice(memory)
    shadow = bytearray(DATA_BYTES)

    for name, a, payload in ops:
        if name == "write":
            data = payload[: DATA_BYTES - a]
            if not data:
                continue
            verifier.write(a, data)
            shadow[a: a + len(data)] = data
        elif name == "read":
            length = min(payload, DATA_BYTES - a)
            if length <= 0:
                continue
            assert verifier.read(a, length) == bytes(shadow[a: a + length])
        elif name == "flush":
            verifier.flush()
        else:  # a correct DMA cycle into chunk index a
            address = a * CHUNK
            verifier.flush()
            verifier.unprotect_range(address, CHUNK)
            device.transfer(verifier.physical_address(address), payload)
            verifier.rebuild_range(address, CHUNK)
            shadow[address: address + CHUNK] = payload

    verifier.flush()
    assert verifier.read(0, DATA_BYTES) == bytes(shadow)
