"""Tests for the five timing schemes and the memory hierarchy."""

import pytest

from repro.cache import MemoryHierarchy
from repro.common import MB, SchemeKind, table1_config

PROTECTED = 64 * MB  # smaller tree for tests (still depth > 5)


def hierarchy_for(scheme, **config_kwargs):
    config = table1_config(scheme)
    if config_kwargs:
        import dataclasses
        config = dataclasses.replace(config, **config_kwargs)
    return MemoryHierarchy(config, protected_bytes=PROTECTED)


class TestBaseScheme:
    def test_miss_goes_to_memory_once(self):
        h = hierarchy_for(SchemeKind.BASE)
        ready, check = h.load(0x10000, 0)
        assert h.memory.stats["reads"] == 1
        assert check == ready  # no verification

    def test_second_access_hits(self):
        h = hierarchy_for(SchemeKind.BASE)
        h.load(0x10000, 0)
        reads_before = h.memory.stats["reads"]
        ready, _ = h.load(0x10000, 1000)
        assert h.memory.stats["reads"] == reads_before
        assert ready <= 1000 + 2  # L1 hit latency

    def test_dirty_eviction_writes_back(self):
        h = hierarchy_for(SchemeKind.BASE)
        config = h.config.l2
        # write one block, then stream enough blocks through its set to evict
        h.store(0x0, 0)
        stride = config.n_sets * config.block_bytes
        for way in range(1, config.associativity * 3):
            h.load(way * stride, 0)
        assert h.memory.stats["writes"] >= 1


class TestNaiveScheme:
    def test_miss_walks_full_path(self):
        h = hierarchy_for(SchemeKind.NAIVE)
        depth = h.layout.depth(h.layout.total_chunks - 1)
        h.load(0x40000, 0)
        # one data read plus ~depth hash chunk reads
        assert h.memory.stats["reads"] >= depth
        assert h.scheme.stats["hash_chunk_reads"] >= depth - 1

    def test_hashes_never_enter_l2(self):
        h = hierarchy_for(SchemeKind.NAIVE)
        h.load(0x40000, 0)
        assert h.l2.stats.get("hash_accesses", 0) == 0

    def test_check_done_after_data_ready(self):
        h = hierarchy_for(SchemeKind.NAIVE)
        ready, check = h.load(0x40000, 0)
        assert check > ready


class TestCHashScheme:
    def test_first_miss_walks_then_later_misses_hit_hashes(self):
        h = hierarchy_for(SchemeKind.CHASH)
        h.load(0x0, 0)
        walk_reads = h.scheme.stats["hash_chunk_reads"]
        assert walk_reads >= 1
        # a nearby chunk shares (almost) the whole hash path: at most one
        # new hash chunk comes from memory, the rest hit in the L2
        h.load(0x40, 0)
        assert h.scheme.stats["hash_chunk_reads"] <= walk_reads + 1
        assert h.scheme.stats["hash_l2_hits"] >= 1

    def test_hash_blocks_live_in_l2(self):
        h = hierarchy_for(SchemeKind.CHASH)
        h.load(0x0, 0)
        assert h.l2.stats.get("hash_fills", 0) >= 1

    def test_far_apart_misses_walk_separately(self):
        h = hierarchy_for(SchemeKind.CHASH)
        h.load(0x0, 0)
        first = h.scheme.stats["hash_chunk_reads"]
        h.load(32 * MB, 0)  # different subtree
        assert h.scheme.stats["hash_chunk_reads"] > first

    def test_check_done_covers_verification(self):
        h = hierarchy_for(SchemeKind.CHASH)
        ready, check = h.load(0x0, 0)
        assert check >= ready

    def test_writeback_rehashes_and_updates_parent(self):
        h = hierarchy_for(SchemeKind.CHASH)
        config = h.config.l2
        h.store(0x0, 0)
        stride = config.n_sets * config.block_bytes
        for way in range(1, config.associativity * 3):
            h.load(way * stride, 0)
        assert h.scheme.stats["writebacks"] >= 1
        assert h.memory.stats.get("write_bytes_writeback", 0) >= 64


class TestMHashScheme:
    def test_miss_fetches_whole_chunk(self):
        h = hierarchy_for(SchemeKind.MHASH)
        h.load(0x0, 0)
        # the chunk's second block came over the bus too
        assert h.scheme.stats["chunk_assembly_reads"] >= 1

    def test_chunk_mate_is_l2_hit(self):
        h = hierarchy_for(SchemeKind.MHASH)
        h.load(0x0, 0)
        misses_before = h.l2.stats["data_misses"]
        h.load(0x40, 0)  # the chunk mate was allocated during the first miss
        assert h.l2.stats["data_misses"] == misses_before


class TestIHashScheme:
    def test_writeback_reads_old_value_once(self):
        h = hierarchy_for(SchemeKind.IHASH)
        config = h.config.l2
        h.store(0x0, 0)
        stride = config.n_sets * config.block_bytes
        for way in range(1, config.associativity * 3):
            h.load(way * stride, 0)
        assert h.scheme.stats["writebacks"] >= 1
        assert h.scheme.stats["unchecked_old_reads"] == h.scheme.stats["writebacks"]
        assert h.scheme.stats["mac_updates"] >= 1

    def test_ihash_writeback_cheaper_than_mhash(self):
        """ihash's whole point: write-backs don't assemble the chunk."""
        traffic = {}
        for scheme in (SchemeKind.MHASH, SchemeKind.IHASH):
            h = hierarchy_for(scheme)
            config = h.config.l2
            stride = config.n_sets * config.block_bytes
            # dirty many blocks, then force their eviction
            for i in range(config.associativity + 4):
                h.store(i * stride, 0)
            for i in range(config.associativity + 4):
                h.load(i * stride + 16 * MB, 0)
            traffic[scheme] = h.memory.stats["bytes_total"]
        assert traffic[SchemeKind.IHASH] <= traffic[SchemeKind.MHASH]


class TestHierarchy:
    def test_l1_filters_l2(self):
        h = hierarchy_for(SchemeKind.BASE)
        h.load(0x2000, 0)
        accesses = h.l2.stats["data_accesses"]
        h.load(0x2008, 10)  # same L1 block
        assert h.l2.stats["data_accesses"] == accesses

    def test_full_block_store_skips_fetch(self):
        h = hierarchy_for(SchemeKind.CHASH)
        h.store(0x3000, 0, full_block=True)
        assert h.memory.stats.get("reads", 0) == 0
        assert h.stats["full_block_store_allocations"] == 1

    def test_full_block_optimization_can_be_disabled(self):
        h = hierarchy_for(SchemeKind.CHASH, write_allocate_valid_bits=False)
        h.store(0x3000, 0, full_block=True)
        assert h.memory.stats["reads"] >= 1

    def test_ifetch_uses_l1i(self):
        h = hierarchy_for(SchemeKind.BASE)
        h.ifetch(0x0, 0)
        ready, _, itlb_cycles = h.ifetch(0x4, 10)
        assert itlb_cycles == 0  # I-TLB warmed by the first fetch
        assert ready <= 10 + h.config.l1i.latency_cycles
        assert h.l1i.stats["data_hits"] >= 1

    def test_warm_touches_cache_state_without_traffic_stats(self):
        from repro.cpu import Instruction
        h = hierarchy_for(SchemeKind.CHASH)
        h.warm([Instruction(kind="load", address=0x5000, pc=0)])
        assert h.memory.stats.get("reads", 0) == 0  # timing off
        ready, _ = h.load(0x5000, 0)
        assert ready <= 2  # warmed: L1 hit
