"""Tests for the from-scratch MD5/SHA-1 and the Section 6.1 area model."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import HashFunction
from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.hashengine.area import (
    DATAPATHS,
    DEFAULT_GATES_PER_BIT,
    MD5_DATAPATH,
    SHA1_DATAPATH,
    logic_overhead_report,
)


class TestPureMD5:
    def test_rfc1321_vectors(self):
        vectors = {
            b"": "d41d8cd98f00b204e9800998ecf8427e",
            b"a": "0cc175b9c0f1b6a831c399e269772661",
            b"abc": "900150983cd24fb0d6963f7d28e17f72",
            b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
            b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
        }
        for message, expected in vectors.items():
            assert md5(message).hex() == expected

    def test_padding_boundaries(self):
        # 55/56/63/64 bytes straddle the padding edge cases
        for n in (55, 56, 63, 64, 119, 120):
            message = bytes(range(256))[:n] * 1
            assert md5(message) == hashlib.md5(message).digest()

    @given(st.binary(max_size=300))
    @settings(max_examples=60)
    def test_matches_hashlib(self, message):
        assert md5(message) == hashlib.md5(message).digest()


class TestPureSHA1:
    def test_rfc3174_vectors(self):
        assert (sha1(b"abc").hex()
                == "a9993e364706816aba3e25717850c26c9cd0d89d")
        assert (sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex()
                == "84983e441c3bd26ebaae4aa1f95129e5e54670f1")

    def test_padding_boundaries(self):
        for n in (55, 56, 63, 64, 119, 120):
            message = bytes(range(256))[:n]
            assert sha1(message) == hashlib.sha1(message).digest()

    @given(st.binary(max_size=300))
    @settings(max_examples=60)
    def test_matches_hashlib(self, message):
        assert sha1(message) == hashlib.sha1(message).digest()


class TestPureHashesInTree:
    def test_registry_exposes_pure_variants(self):
        pure = HashFunction("md5-pure", 16)
        native = HashFunction("md5", 16)
        assert pure.digest(b"chunk") == native.digest(b"chunk")
        pure_sha = HashFunction("sha1-pure", 16)
        native_sha = HashFunction("sha1", 16)
        assert pure_sha.digest(b"chunk") == native_sha.digest(b"chunk")

    def test_tree_runs_on_pure_md5(self):
        from repro.hashtree import CachedHashTree, TreeLayout
        from repro.memory import UntrustedMemory

        layout = TreeLayout(16 * 64, 64, 16)
        memory = UntrustedMemory(layout.physical_bytes)
        tree = CachedHashTree(memory, layout, HashFunction("md5-pure", 16),
                              capacity_chunks=4)
        tree.initialize_by_touch()
        tree.write(0, b"hashed by our own MD5")
        tree.flush()
        assert tree.read(0, 21) == b"hashed by our own MD5"


class TestAreaModel:
    def test_md5_block_inventory_matches_paper(self):
        # Section 6.1's totals for the 64 rounds
        assert MD5_DATAPATH.blocks == {
            "adder": 256, "mux": 32, "xor": 48, "or": 16, "inverter": 16,
        }

    def test_md5_unrolled_on_the_order_of_250k_gates(self):
        gates = MD5_DATAPATH.gate_count()
        assert 200_000 <= gates <= 300_000  # "on the order of 250,000"

    def test_sha1_larger_than_md5(self):
        assert SHA1_DATAPATH.gate_count() > MD5_DATAPATH.gate_count()

    def test_sharing_shrinks_circuit(self):
        assert (MD5_DATAPATH.shared_gate_count(2.5)
                < MD5_DATAPATH.gate_count())
        assert MD5_DATAPATH.shared_gate_count(1.0) == MD5_DATAPATH.gate_count()

    def test_sharing_rejects_growth(self):
        with pytest.raises(ValueError):
            MD5_DATAPATH.shared_gate_count(0.5)

    def test_latency_estimate(self):
        # 2 rounds per cycle: 32 cycles for MD5, 40 for SHA-1
        assert MD5_DATAPATH.latency_cycles() == 32
        assert SHA1_DATAPATH.latency_cycles() == 40

    def test_custom_gate_costs(self):
        cheap = dict(DEFAULT_GATES_PER_BIT, adder=5)
        assert MD5_DATAPATH.gate_count(cheap) < MD5_DATAPATH.gate_count()

    def test_report_renders(self):
        report = logic_overhead_report()
        assert "md5" in report and "sha1" in report
        assert "adder" in report

    def test_registry(self):
        assert set(DATAPATHS) == {"md5", "sha1"}
