"""Tests for the attack scenarios (Sections 4.4 and 5.4.1)."""

import pytest

from repro.attacks import (
    XomLikeMemory,
    forge_chosen_value,
    forge_stale_value,
    run_loop_attack_on_tree,
    run_loop_attack_on_xom,
)
from repro.common import IntegrityError
from repro.hashtree import MemoryVerifier
from repro.memory import ReplayAdversary, UntrustedMemory


class TestXomLikeMemory:
    def test_round_trip(self):
        xom = XomLikeMemory(UntrustedMemory(8192))
        xom.write_block(0, b"A" * 64)
        assert xom.read_block(0) == b"A" * 64

    def test_detects_spoofing(self):
        memory = UntrustedMemory(8192)
        xom = XomLikeMemory(memory)
        xom.write_block(0, b"A" * 64)
        memory.poke(0, b"B")
        with pytest.raises(IntegrityError):
            xom.read_block(0)

    def test_detects_splicing(self):
        memory = UntrustedMemory(8192)
        xom = XomLikeMemory(memory)
        xom.write_block(0, b"A" * 64)
        xom.write_block(64, b"B" * 64)
        entry = 64 + 16
        block_b = memory.peek(entry, entry)
        memory.poke(0, block_b)  # move (data, mac) to another address
        with pytest.raises(IntegrityError):
            xom.read_block(0)

    def test_accepts_replay(self):
        """The vulnerability: stale (data, mac) pairs verify fine."""
        memory = UntrustedMemory(8192)
        xom = XomLikeMemory(memory)
        xom.write_block(0, b"old" + b"\0" * 61)
        stale = memory.peek(0, 64 + 16)
        xom.write_block(0, b"new" + b"\0" * 61)
        memory.poke(0, stale)
        assert xom.read_block(0)[:3] == b"old"  # no exception!


class TestLoopCounterReplay:
    def test_xom_leaks_beyond_bound(self):
        outcome = run_loop_attack_on_xom(secret_words=8, intended_iterations=2)
        assert outcome.iterations == 8          # ran to the end of the segment
        assert outcome.leaked_beyond_bound
        assert len(set(outcome.leaked)) == 8    # distinct secrets leaked
        assert not outcome.detected

    def test_tree_detects_the_same_attack(self):
        layout_probe = MemoryVerifier(UntrustedMemory(1 << 20), 64 * 64)
        counter_physical = layout_probe.physical_address(0)
        adversary = ReplayAdversary(target_address=counter_physical, length=64)
        memory = UntrustedMemory(1 << 20, adversary=adversary)
        verifier = MemoryVerifier(memory, 64 * 64, scheme="chash", cache_chunks=4)
        verifier.initialize()
        outcome = run_loop_attack_on_tree(verifier, secret_words=8,
                                          intended_iterations=2)
        assert outcome.detected
        assert outcome.iterations <= 2  # caught before leaking past the bound


class TestIncrementalMacForgery:
    def test_stale_value_forgery_without_timestamps(self):
        outcome = forge_stale_value(use_timestamps=False)
        assert outcome.succeeded
        # the stale counter value (1) is certified as genuine
        assert outcome.value_read_back[:8] == (1).to_bytes(8, "big")

    def test_timestamps_defeat_stale_value_forgery(self):
        outcome = forge_stale_value(use_timestamps=True)
        assert outcome.detected

    def test_chosen_value_forgery_without_timestamps(self):
        outcome = forge_chosen_value(use_timestamps=False)
        assert outcome.succeeded
        assert outcome.value_read_back == b"\xbd" * 64

    def test_timestamps_defeat_chosen_value_forgery(self):
        outcome = forge_chosen_value(use_timestamps=True)
        assert outcome.detected
