"""Unit tests for the Table 1 configuration dataclasses."""

import pytest

from repro.common import (
    CacheConfig,
    ConfigurationError,
    HashEngineConfig,
    SchemeKind,
    SystemConfig,
    TreeConfig,
    table1_config,
)
from repro.common.config import BusConfig, TLBConfig
from repro.common.units import KB, MB


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(1 * MB, 4, 64, 10)
        assert cache.n_sets == 4096
        assert cache.n_blocks == 16384

    def test_rejects_non_power_block(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(1 * MB, 4, 48, 10)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(1000, 3, 64, 10)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(1 * MB, 4, 64, -1)


class TestBusConfig:
    def test_paper_bandwidth(self):
        bus = BusConfig()
        assert bus.bandwidth_gb_per_s == pytest.approx(1.6, rel=0.01)

    def test_transfer_cycles_for_l2_block(self):
        bus = BusConfig()  # 200 MHz, 8 B wide, 1 GHz core => 5 core cycles/bus cycle
        # 64 bytes = 8 bus beats = 40 core cycles.
        assert bus.transfer_cycles(64) == 40

    def test_transfer_cycles_minimum_one(self):
        bus = BusConfig()
        assert bus.transfer_cycles(1) >= 1


class TestTLBConfig:
    def test_defaults(self):
        tlb = TLBConfig()
        assert tlb.entries == 128
        assert tlb.associativity == 4

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            TLBConfig(entries=10, associativity=4)


class TestHashEngineConfig:
    def test_throughput_occupancy_matches_paper(self):
        # 3.2 GB/s at 1 GHz: one 64-byte hash per 20 cycles.
        engine = HashEngineConfig()
        assert engine.hash_occupancy_cycles(64) == 20

    def test_64gbps_is_one_hash_per_10_cycles(self):
        engine = HashEngineConfig(throughput_gb_per_s=6.4)
        assert engine.hash_occupancy_cycles(64) == 10

    def test_hash_bytes(self):
        assert HashEngineConfig().hash_bytes == 16

    def test_rejects_fractional_hash_bits(self):
        with pytest.raises(ConfigurationError):
            HashEngineConfig(hash_bits=100)


class TestTreeConfig:
    def test_arity_for_paper_default(self):
        tree = TreeConfig(chunk_bytes=64, hash_bytes=16)
        assert tree.arity == 4

    def test_block_bytes(self):
        tree = TreeConfig(chunk_bytes=128, blocks_per_chunk=2)
        assert tree.block_bytes == 64

    def test_rejects_chunk_not_multiple_of_hash(self):
        with pytest.raises(ConfigurationError):
            TreeConfig(chunk_bytes=64, hash_bytes=24)


class TestSystemConfig:
    def test_table1_defaults(self):
        config = table1_config()
        assert config.core.clock_ghz == 1.0
        assert config.l1d.size_bytes == 64 * KB
        assert config.l1d.block_bytes == 32
        assert config.l2.size_bytes == 1 * MB
        assert config.l2.associativity == 4
        assert config.l2.block_bytes == 64
        assert config.bus.bandwidth_gb_per_s == pytest.approx(1.6, rel=0.01)
        assert config.hash_engine.latency_cycles == 80
        assert config.hash_engine.throughput_gb_per_s == 3.2
        assert config.hash_engine.read_buffer_entries == 16
        assert config.core.ruu_entries == 128
        assert config.core.lsq_entries == 64

    def test_tree_geometry_follows_scheme(self):
        chash = table1_config(SchemeKind.CHASH)
        assert chash.tree.blocks_per_chunk == 1
        assert chash.tree.chunk_bytes == 64
        mhash = table1_config(SchemeKind.MHASH)
        assert mhash.tree.blocks_per_chunk == 2
        assert mhash.tree.chunk_bytes == 128

    def test_with_scheme(self):
        config = table1_config().with_scheme(SchemeKind.NAIVE)
        assert config.scheme is SchemeKind.NAIVE

    def test_with_l2_sweep(self):
        config = table1_config().with_l2(size_bytes=4 * MB, block_bytes=128)
        assert config.l2.size_bytes == 4 * MB
        assert config.l2.block_bytes == 128
        assert config.l2.associativity == 4  # preserved

    def test_rejects_l2_block_smaller_than_l1(self):
        with pytest.raises(ConfigurationError):
            table1_config().with_l2(block_bytes=16)

    def test_scheme_kind_strings(self):
        assert str(SchemeKind.CHASH) == "chash"
        assert SchemeKind("naive") is SchemeKind.NAIVE
