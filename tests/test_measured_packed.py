"""Bit-identity of the packed measured path + fetch-geometry regressions.

The packed measured path (``take_packed`` columns scheduled by
``run_packed``) is only allowed to change *wall-clock*, never results:
for every scheme, benchmark pattern and L1-I geometry the packed run
must produce the same cycle count, instruction count and full statistics
dict as the historical per-``Instruction`` oracle.  Alongside it live
the regression tests for the two foreground bugfixes this machinery
exposed: the core's fetch-line shift is derived from the configured
L1-I block size (not hard-coded to 32-byte lines), and fetch stalls are
attributed to the structure that caused them (I-TLB walk vs I-cache
miss).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.common.config import SchemeKind, SystemConfig, table1_config
from repro.common.packed import (
    MEAS_ALU,
    MEAS_BRANCH,
    MEAS_BRANCH_MISPREDICT,
    MEAS_FP,
    MEAS_LOAD,
    MEAS_STORE,
    MEAS_STORE_FULL,
    WARM_IFETCH,
)
from repro.cpu.isa import Instruction
from repro.cpu.ooo import OutOfOrderCore
from repro.sim.system import (
    MEASURE_PATH_ENV,
    SimulatedSystem,
    packed_measure_default,
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)
from repro.workloads.generators import InstructionStream
from repro.workloads.spec import SPEC_PROFILES

ALL_SCHEMES = (SchemeKind.BASE, SchemeKind.NAIVE, SchemeKind.CHASH,
               SchemeKind.MHASH, SchemeKind.IHASH)

#: one profile per access pattern (wset, random, stream)
IDENTITY_BENCHMARKS = ("gcc", "mcf", "swim")


def with_l1i_block(config: SystemConfig, block_bytes: int) -> SystemConfig:
    """``config`` with its L1 I-cache rebuilt on ``block_bytes`` lines."""
    return dataclasses.replace(
        config,
        l1i=dataclasses.replace(config.l1i, block_bytes=block_bytes),
    )


def measured_code(instruction: Instruction) -> int:
    """The MEAS_* code ``take_packed`` must emit for ``instruction``."""
    if instruction.kind == "load":
        return MEAS_LOAD
    if instruction.kind == "store":
        return MEAS_STORE_FULL if instruction.full_block else MEAS_STORE
    if instruction.kind == "branch":
        return (MEAS_BRANCH_MISPREDICT if instruction.mispredicted
                else MEAS_BRANCH)
    return MEAS_FP if instruction.kind == "fp" else MEAS_ALU


class TestTakePacked:
    """The measured-mode columns carry exactly the object-stream fields."""

    @pytest.mark.parametrize("bench", ("gcc", "mcf", "swim", "art"))
    def test_columns_carry_the_object_fields(self, bench):
        profile = SPEC_PROFILES[bench]
        objects = InstructionStream(profile, seed=3).take(6_000)
        rows = []
        for columns in InstructionStream(profile, seed=3).take_packed(
                6_000, chunk_instructions=2_048):
            rows.extend(zip(*columns))
        assert len(rows) == len(objects)
        for row, instruction in zip(rows, objects):
            kind, pc, address, dep1, dep2, latency = row
            assert kind == measured_code(instruction)
            assert pc == instruction.pc
            assert dep1 == instruction.dep1
            assert dep2 == instruction.dep2
            assert latency == instruction.latency
            if instruction.is_memory:
                assert address == instruction.address

    @pytest.mark.parametrize("bench", ("gcc", "mcf", "swim", "art"))
    def test_packed_prefix_preserves_suffix(self, bench):
        """Draining N instructions packed leaves the stream exactly where
        draining them as objects would — the RNG draw order is shared."""
        profile = SPEC_PROFILES[bench]
        reference = InstructionStream(profile, seed=5).take(9_000)
        stream = InstructionStream(profile, seed=5)
        for _ in stream.take_packed(6_000, chunk_instructions=2_048):
            pass
        assert stream.take(3_000) == reference[6_000:]


class TestBitIdentity:
    """``run_packed`` equals the object oracle: cycles, instruction count
    and the full stats dict, for every scheme × pattern × L1-I geometry."""

    def _pair(self, monkeypatch, config, bench,
              instructions=2_000, warmup=6_000):
        state = prepare_warm_state(config, bench, warmup=warmup)
        monkeypatch.setenv(MEASURE_PATH_ENV, "object")
        oracle = run_from_warm_state(config, bench, state,
                                     instructions=instructions)
        monkeypatch.setenv(MEASURE_PATH_ENV, "packed")
        packed = run_from_warm_state(config, bench, state,
                                     instructions=instructions)
        return oracle, packed

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("bench", IDENTITY_BENCHMARKS)
    def test_default_geometry(self, monkeypatch, scheme, bench):
        oracle, packed = self._pair(monkeypatch, table1_config(scheme), bench)
        assert packed.cycles == oracle.cycles
        assert packed.instructions == oracle.instructions
        assert packed.stats == oracle.stats

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("bench", IDENTITY_BENCHMARKS)
    def test_wide_l1i_geometry(self, monkeypatch, scheme, bench):
        config = with_l1i_block(table1_config(scheme), 64)
        oracle, packed = self._pair(monkeypatch, config, bench)
        assert packed.cycles == oracle.cycles
        assert packed.instructions == oracle.instructions
        assert packed.stats == oracle.stats

    def test_explicit_packed_flag_overrides_environment(self, monkeypatch):
        """``run_stream(packed=...)`` wins over ``REPRO_MEASURE``."""
        monkeypatch.setenv(MEASURE_PATH_ENV, "object")
        assert not packed_measure_default()
        config = table1_config(SchemeKind.BASE)
        profile = SPEC_PROFILES["gcc"]
        oracle = SimulatedSystem(config)
        packed = SimulatedSystem(config)
        a = oracle.run_stream(InstructionStream(profile, 0), 3_000,
                              packed=False)
        b = packed.run_stream(InstructionStream(profile, 0), 3_000,
                              packed=True)
        assert b.cycles == a.cycles
        assert b.stats == a.stats


class TestWarmSharingWideL1I:
    """Satellite: a cell measured from a restored snapshot equals the same
    cell warmed from scratch under a non-default L1-I geometry — for every
    scheme (the ``>>5`` bug class made exactly this diverge)."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_restored_cell_equals_cold_cell(self, scheme):
        config = with_l1i_block(table1_config(scheme), 64)
        cold = run_benchmark(config, "gcc", instructions=1_500, warmup=8_000)
        state = prepare_warm_state(config, "gcc", warmup=8_000)
        shared = run_from_warm_state(config, "gcc", state,
                                     instructions=1_500)
        assert shared.cycles == cold.cycles
        assert shared.stats == cold.stats


class TestFetchLineGeometry:
    """Satellite: the core probes the L1-I once per configured I-line."""

    @pytest.mark.parametrize("block_bytes", (32, 64))
    def test_one_probe_per_iline(self, block_bytes):
        config = with_l1i_block(table1_config(SchemeKind.BASE), block_bytes)
        profile = SPEC_PROFILES["gcc"]
        n = 4_000
        # the dedup ``warm_packed`` applies: one WARM_IFETCH row per line
        expected = 0
        for codes, _ in InstructionStream(profile, 0).packed(
                n, line_bytes=block_bytes):
            expected += sum(1 for code in codes if code == WARM_IFETCH)
        system = SimulatedSystem(config)
        system.run(InstructionStream(profile, 0).take(n))
        assert system.hierarchy.l1i.stats["data_accesses"] == expected

    @pytest.mark.parametrize("block_bytes", (32, 64))
    def test_packed_core_issues_the_same_probes(self, block_bytes):
        config = with_l1i_block(table1_config(SchemeKind.BASE), block_bytes)
        profile = SPEC_PROFILES["gcc"]
        n = 4_000
        by_object = SimulatedSystem(config)
        by_object.run(InstructionStream(profile, 0).take(n))
        by_packed = SimulatedSystem(config)
        by_packed.run_stream(InstructionStream(profile, 0), n, packed=True)
        assert (by_packed.hierarchy.l1i.stats["data_accesses"]
                == by_object.hierarchy.l1i.stats["data_accesses"])


class TestStallAttribution:
    """Satellite: fetch stalls land on the structure that caused them."""

    def test_itlb_miss_l1i_hit_is_a_tlb_stall(self):
        config = table1_config(SchemeKind.BASE)
        hierarchy = MemoryHierarchy(config)
        core = OutOfOrderCore(config.core, hierarchy)
        # pre-fill the I-line for pc=0 while leaving the I-TLB cold
        hierarchy.l1i.fill(hierarchy.scheme.data_address(0), kind="instr")
        core.run([Instruction(kind="alu", pc=0)])
        assert (core.stats["itlb_stall_cycles"]
                == config.tlb.miss_penalty_cycles)
        assert "icache_stall_cycles" not in core.stats

    def test_itlb_hit_l1i_miss_is_an_icache_stall(self):
        config = table1_config(SchemeKind.BASE)
        hierarchy = MemoryHierarchy(config)
        core = OutOfOrderCore(config.core, hierarchy)
        # pre-warm the I-TLB page while leaving the L1-I cold
        hierarchy.itlb.warm_access(0)
        core.run([Instruction(kind="alu", pc=0)])
        assert core.stats["icache_stall_cycles"] > config.l1i.latency_cycles
        assert "itlb_stall_cycles" not in core.stats

    def test_cold_fetch_splits_the_stall(self):
        """A fetch missing both structures books the walk on the I-TLB and
        only the remainder on the I-cache."""
        config = table1_config(SchemeKind.BASE)
        hierarchy = MemoryHierarchy(config)
        core = OutOfOrderCore(config.core, hierarchy)
        ready, _, itlb_cycles = MemoryHierarchy(config).ifetch(0, 0)
        core.run([Instruction(kind="alu", pc=0)])
        assert core.stats["itlb_stall_cycles"] == itlb_cycles
        assert core.stats["itlb_stall_cycles"] == config.tlb.miss_penalty_cycles
        assert core.stats["icache_stall_cycles"] == ready - itlb_cycles
