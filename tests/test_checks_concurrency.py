"""Injection tests for the concurrency, ordering and wire-protocol
passes, plus the ``--baseline`` record/diff machinery.

The acceptance-criteria proof that the new passes bite on the *real*
sweep engine rather than only on fixtures: mutate ``store.py`` /
``dispatch.py`` the way a careless refactor would — delete a lock
guard, add an opposite-order acquisition, drop a handler field — and
assert the checker reports exactly the injected defect at its exact
file and line.
"""

from pathlib import Path

from repro.checks import (
    collect_findings,
    diff_baseline,
    load_baseline,
    record_baseline,
)
from repro.checks.findings import Finding

REPO = Path(__file__).resolve().parents[1]
SWEEP = REPO / "src" / "repro" / "sim" / "sweep"
STORE_PY = SWEEP / "store.py"
DISPATCH_PY = SWEEP / "dispatch.py"


def _line_of(text: str, needle: str, last: bool = False) -> int:
    index = text.rindex(needle) if last else text.index(needle)
    return text[:index].count("\n") + 1


def _check_pair(store_path: Path, dispatch_path: Path):
    return collect_findings(paths=[store_path, dispatch_path],
                            assume_sim=True)


def _located(findings, rule):
    return {(Path(f.path).name, f.line) for f in findings
            if f.rule == rule}


class TestRealSourcesClean:
    def test_store_and_dispatch_are_clean(self):
        findings = _check_pair(STORE_PY, DISPATCH_PY)
        assert findings == [], [f.text() for f in findings]


class TestLockGuardInjection:
    """Delete the ``with self._costs_lock:`` guard from
    ``DirectoryStore.flush_costs`` and the discipline pass must flag
    every access in the now-unguarded body at its exact line."""

    def _mutate(self, tmp_path):
        source = STORE_PY.read_text()
        anchor = ("    def flush_costs(self) -> None:\n"
                  "        with self._costs_lock:\n")
        assert anchor in source, "flush_costs guard moved"
        mutated = source.replace(
            anchor,
            "    def flush_costs(self) -> None:\n"
            "        if True:\n")
        store = tmp_path / "store.py"
        store.write_text(mutated)
        dispatch = tmp_path / "dispatch.py"
        dispatch.write_text(DISPATCH_PY.read_text())
        return mutated, store, dispatch

    def test_deleted_guard_caught_at_exact_lines(self, tmp_path):
        mutated, store, dispatch = self._mutate(tmp_path)
        findings = _check_pair(store, dispatch)
        assert findings, "deleted lock guard not caught"
        assert {f.rule for f in findings} == {"lock-unguarded-shared"}
        expected = {
            ("store.py", _line_of(
                mutated,
                "if self._costs_cache is not None and self._pending_costs")),
            ("store.py", _line_of(
                mutated, "self._write_costs(self._costs_cache)", last=True)),
            ("store.py", _line_of(
                mutated, "self._pending_costs = 0", last=True)),
        }
        assert _located(findings, "lock-unguarded-shared") == expected
        # the reads name the lock that guards the writes elsewhere; the
        # write-site finding names the class as a lock owner
        assert any("_costs_lock" in f.message for f in findings)
        assert any("no lock held" in f.message for f in findings)


class TestLockOrderInjection:
    """Add a pair of probe methods that take ``_costs_lock`` and
    ``_stats_lock`` in opposite orders: the ordering pass must flag both
    inner acquisitions as an ABBA cycle."""

    _PROBES = (
        "    def _ab_probe(self):\n"
        "        with self._costs_lock:\n"
        "            with self._stats_lock:\n"
        "                self.hits += 0\n"
        "\n"
        "    def _ba_probe(self):\n"
        "        with self._stats_lock:\n"
        "            with self._costs_lock:\n"
        "                self.misses += 0\n"
        "\n"
    )

    def test_inverted_order_caught_at_exact_lines(self, tmp_path):
        source = STORE_PY.read_text()
        # two-line anchor: only DirectoryStore.flush_costs opens with
        # the costs lock (the base and tiered stores also define one)
        anchor = ("    def flush_costs(self) -> None:\n"
                  "        with self._costs_lock:\n")
        assert anchor in source
        mutated = source.replace(anchor, self._PROBES + anchor)
        store = tmp_path / "store.py"
        store.write_text(mutated)
        dispatch = tmp_path / "dispatch.py"
        dispatch.write_text(DISPATCH_PY.read_text())
        findings = _check_pair(store, dispatch)
        cycles = [f for f in findings if f.rule == "lock-order-cycle"]
        assert cycles, "inverted acquisition order not caught"
        expected = {
            ("store.py", _line_of(
                mutated,
                "with self._stats_lock:\n                self.hits += 0")),
            ("store.py", _line_of(
                mutated,
                "with self._costs_lock:\n                self.misses += 0")),
        }
        assert _located(findings, "lock-order-cycle") == expected
        assert all("cycle" in f.message for f in cycles)
        # nothing but the injected cycle fires
        assert {f.rule for f in findings} == {"lock-order-cycle"}


class TestWireFieldInjection:
    """Drop the ``fresh`` read from the ``/work/seed`` handler: the wire
    pass must point at the *client's* ``"fresh"`` payload key — the
    exact line in dispatch.py that now sends a silently ignored field."""

    def test_dropped_handler_field_caught(self, tmp_path):
        source = STORE_PY.read_text()
        anchor = ('                    fresh=bool('
                  'payload.get("fresh", False)),\n')
        assert anchor in source, "seed handler fresh read moved"
        store = tmp_path / "store.py"
        store.write_text(source.replace(anchor, ""))
        dispatch_source = DISPATCH_PY.read_text()
        dispatch = tmp_path / "dispatch.py"
        dispatch.write_text(dispatch_source)
        findings = _check_pair(store, dispatch)
        assert {f.rule for f in findings} == {"wire-field-unread"}
        expected = {("dispatch.py",
                     _line_of(dispatch_source, '"fresh": fresh'))}
        assert _located(findings, "wire-field-unread") == expected
        assert all("'fresh'" in f.message for f in findings)


class TestBaseline:
    def _finding(self, line=10, rule="det-wallclock", message="m"):
        return Finding("src/x.py", line, rule, message)

    def test_record_then_diff_is_clean(self, tmp_path):
        path = tmp_path / "base.json"
        findings = [self._finding(), self._finding(line=20, message="n")]
        assert record_baseline(findings, path) == 2
        new, stale = diff_baseline(findings, path)
        assert new == [] and stale == []

    def test_new_finding_fails_diff(self, tmp_path):
        path = tmp_path / "base.json"
        record_baseline([self._finding()], path)
        extra = self._finding(line=30, rule="lock-unguarded-shared",
                              message="fresh defect")
        new, stale = diff_baseline([self._finding(), extra], path)
        assert new == [extra] and stale == []

    def test_fixed_finding_reported_stale(self, tmp_path):
        path = tmp_path / "base.json"
        record_baseline([self._finding()], path)
        new, stale = diff_baseline([], path)
        assert new == []
        assert stale == [("src/x.py", "det-wallclock", "m")]

    def test_line_shift_does_not_resurrect(self, tmp_path):
        """Matching is (path, rule, message) — unrelated edits that move
        a baselined finding up or down must not flag it as new."""
        path = tmp_path / "base.json"
        record_baseline([self._finding(line=10)], path)
        new, _stale = diff_baseline([self._finding(line=99)], path)
        assert new == []

    def test_load_ignores_malformed_entries(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"version": 1, "findings": '
                        '[{"path": "a", "rule": "r", "message": "m"}, 7]}')
        assert load_baseline(path) == {("a", "r", "m")}
