"""End-to-end tests of the full-system simulator and sweeps.

These use reduced warm-ups and instruction counts — enough to assert
structural invariants (orderings, accounting identities), not to reproduce
the paper's numbers (the bench harness does that).
"""

import pytest

from repro.common import KB, MB, SchemeKind, table1_config
from repro.sim import SimulatedSystem, run_benchmark, run_grid
from repro.sim.sweep import baseline_of
from repro.workloads import spec_workload

FAST = dict(instructions=4000, warmup=30_000)


@pytest.fixture(scope="module")
def gzip_three_schemes():
    return {
        scheme: run_benchmark(table1_config(scheme), "gzip", **FAST)
        for scheme in (SchemeKind.BASE, SchemeKind.CHASH, SchemeKind.NAIVE)
    }


class TestRunBenchmark:
    def test_deterministic(self):
        a = run_benchmark(table1_config(SchemeKind.CHASH), "gzip", **FAST)
        b = run_benchmark(table1_config(SchemeKind.CHASH), "gzip", **FAST)
        assert a.ipc == b.ipc
        assert a.stats == b.stats

    def test_scheme_ordering(self, gzip_three_schemes):
        """base >= chash >= naive in IPC, always."""
        base = gzip_three_schemes[SchemeKind.BASE]
        chash = gzip_three_schemes[SchemeKind.CHASH]
        naive = gzip_three_schemes[SchemeKind.NAIVE]
        assert base.ipc >= chash.ipc >= naive.ipc

    def test_base_moves_no_hash_bytes(self, gzip_three_schemes):
        base = gzip_three_schemes[SchemeKind.BASE]
        assert base.hash_memory_read_bytes == 0
        assert base.extra_reads_per_miss == 0.0

    def test_verification_moves_hash_bytes(self, gzip_three_schemes):
        for scheme in (SchemeKind.CHASH, SchemeKind.NAIVE):
            assert gzip_three_schemes[scheme].hash_memory_read_bytes > 0

    def test_naive_extra_reads_near_tree_depth(self, gzip_three_schemes):
        naive = gzip_three_schemes[SchemeKind.NAIVE]
        assert 8 <= naive.extra_reads_per_miss <= 16  # ~12-13 in the paper

    def test_chash_extra_reads_small(self, gzip_three_schemes):
        chash = gzip_three_schemes[SchemeKind.CHASH]
        assert chash.extra_reads_per_miss < 3

    def test_normalized_bandwidth(self, gzip_three_schemes):
        base = gzip_three_schemes[SchemeKind.BASE]
        naive = gzip_three_schemes[SchemeKind.NAIVE]
        chash = gzip_three_schemes[SchemeKind.CHASH]
        assert naive.normalized_bandwidth(base) > chash.normalized_bandwidth(base) >= 1.0

    def test_result_metadata(self, gzip_three_schemes):
        result = gzip_three_schemes[SchemeKind.CHASH]
        assert result.benchmark == "gzip"
        assert result.scheme == "chash"
        assert result.instructions == FAST["instructions"]
        assert result.cycles > 0
        assert "l2.data_accesses" in result.stats

    def test_summary_is_printable(self, gzip_three_schemes):
        text = gzip_three_schemes[SchemeKind.CHASH].summary()
        assert "gzip" in text and "IPC" in text

    def test_byte_accounting_identity(self, gzip_three_schemes):
        """bytes_total must equal the sum of the per-kind byte counters."""
        for result in gzip_three_schemes.values():
            per_kind = sum(
                value for key, value in result.stats.items()
                if key.startswith("memory.read_bytes_")
                or key.startswith("memory.write_bytes_")
            )
            assert per_kind == result.stats.get("memory.bytes_total", 0)

    def test_bus_cycles_consistent_with_bytes(self, gzip_three_schemes):
        """Bus busy cycles = bytes / bus width * core-cycles-per-bus-cycle."""
        for result in gzip_three_schemes.values():
            bytes_total = result.stats.get("memory.bytes_total", 0)
            busy = result.stats.get("memory.bus_busy_cycles", 0)
            expected = bytes_total / 8 * 5  # 8B beats, 5 core cycles each
            assert busy == pytest.approx(expected, rel=0.01)


class TestSimulatedSystem:
    def test_custom_stream(self):
        system = SimulatedSystem(table1_config(SchemeKind.CHASH),
                                 protected_bytes=64 * MB)
        result = system.run(spec_workload("gzip", 2000), benchmark="adhoc")
        assert result.benchmark == "adhoc"
        assert result.instructions == 2000

    def test_mhash_and_ihash_run(self):
        for scheme in (SchemeKind.MHASH, SchemeKind.IHASH):
            result = run_benchmark(table1_config(scheme), "gzip", **FAST)
            assert result.ipc > 0


class TestSweep:
    def test_grid_runs_all_cells(self):
        grid = run_grid(
            table1_config(),
            benchmarks=["gzip", "twolf"],
            schemes=[SchemeKind.BASE, SchemeKind.CHASH],
            variants={"small": lambda c: c.with_l2(size_bytes=256 * KB)},
            instructions=2000,
            warmup=10_000,
        )
        assert len(grid) == 4
        assert baseline_of(grid, "gzip", "small").scheme == "base"
        for (bench, scheme, variant), result in grid.items():
            assert result.benchmark == bench
            assert result.scheme == scheme
            assert result.config.l2.size_bytes == 256 * KB

    def test_progress_callback(self):
        lines = []
        run_grid(
            table1_config(),
            benchmarks=["gzip"],
            schemes=[SchemeKind.BASE],
            instructions=1000,
            warmup=5000,
            progress=lines.append,
        )
        assert len(lines) == 1
