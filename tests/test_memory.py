"""Unit tests for the untrusted memory and the adversary models."""

import pytest

from repro.common import AdversaryError
from repro.memory import (
    PassiveObserver,
    PredictiveReplayAdversary,
    ReplayAdversary,
    ScriptedAdversary,
    SpliceAdversary,
    TamperAdversary,
    UntrustedMemory,
)


class TestUntrustedMemory:
    def test_read_back_what_was_written(self):
        memory = UntrustedMemory(1024)
        memory.write(100, b"hello")
        assert memory.read(100, 5) == b"hello"

    def test_starts_zeroed(self):
        memory = UntrustedMemory(64)
        assert memory.read(0, 64) == bytes(64)

    def test_out_of_range_rejected(self):
        memory = UntrustedMemory(64)
        with pytest.raises(IndexError):
            memory.read(60, 8)
        with pytest.raises(IndexError):
            memory.write(-1, b"x")

    def test_peek_poke_bypass_counters(self):
        memory = UntrustedMemory(64)
        memory.poke(0, b"abc")
        assert memory.peek(0, 3) == b"abc"
        assert memory.reads == 0
        assert memory.writes == 0

    def test_access_counters(self):
        memory = UntrustedMemory(64)
        memory.write(0, b"x")
        memory.read(0, 1)
        memory.read(0, 1)
        assert memory.writes == 1
        assert memory.reads == 2

    def test_trace_recording(self):
        memory = UntrustedMemory(64, record_trace=True)
        memory.write(0, b"ab")
        memory.read(2, 4)
        assert memory.trace == [("write", 0, 2), ("read", 2, 4)]

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            UntrustedMemory(0)


class TestPassiveObserver:
    def test_observes_without_modifying(self):
        observer = PassiveObserver()
        memory = UntrustedMemory(64, adversary=observer)
        memory.write(0, b"secret")
        assert memory.read(0, 6) == b"secret"
        assert ("write", 0, b"secret") in observer.observed
        assert not observer.tampered  # observation is not interference


class TestTamperAdversary:
    def test_corrupts_covering_read(self):
        adversary = TamperAdversary(target_address=5)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"AAAAAAAAAA")
        data = memory.read(0, 10)
        assert data != b"AAAAAAAAAA"
        assert data[5] == ord("A") ^ 0xFF
        assert adversary.tampered

    def test_fires_once(self):
        adversary = TamperAdversary(target_address=0)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"A")
        first = memory.read(0, 1)
        second = memory.read(0, 1)
        assert first != b"A"
        assert second == b"A"

    def test_trigger_after_skips_reads(self):
        adversary = TamperAdversary(target_address=0, trigger_after=2)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"A")
        assert memory.read(0, 1) == b"A"
        assert memory.read(0, 1) == b"A"
        assert memory.read(0, 1) != b"A"

    def test_non_covering_reads_untouched(self):
        adversary = TamperAdversary(target_address=50)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"A")
        assert memory.read(0, 1) == b"A"
        assert not adversary.tampered

    def test_rejects_zero_mask(self):
        with pytest.raises(AdversaryError):
            TamperAdversary(0, xor_mask=0)


class TestSpliceAdversary:
    def test_returns_other_addresss_data(self):
        adversary = SpliceAdversary(target_address=0, source_address=32)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.poke(0, b"target--")
        memory.poke(32, b"source--")
        assert memory.read(0, 8) == b"source--"
        assert adversary.tampered

    def test_disarmed_is_transparent(self):
        adversary = SpliceAdversary(target_address=0, source_address=32)
        adversary.armed = False
        memory = UntrustedMemory(64, adversary=adversary)
        memory.poke(0, b"target--")
        assert memory.read(0, 8) == b"target--"


class TestReplayAdversary:
    def test_replays_stale_value(self):
        adversary = ReplayAdversary(target_address=0, length=4)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"old!")  # snapshotted
        memory.write(0, b"new!")
        adversary.start_replaying()
        assert memory.read(0, 4) == b"old!"
        assert memory.peek(0, 4) == b"new!"  # memory itself holds the new value

    def test_snapshot_on_later_write(self):
        adversary = ReplayAdversary(target_address=0, length=4, snapshot_on_write=1)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"gen0")
        memory.write(0, b"gen1")  # snapshotted
        memory.write(0, b"gen2")
        adversary.start_replaying()
        assert memory.read(0, 4) == b"gen1"

    def test_cannot_replay_before_snapshot(self):
        adversary = ReplayAdversary(target_address=0, length=4)
        with pytest.raises(AdversaryError):
            adversary.start_replaying()

    def test_inactive_until_started(self):
        adversary = ReplayAdversary(target_address=0, length=4)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.write(0, b"old!")
        memory.write(0, b"new!")
        assert memory.read(0, 4) == b"new!"


class TestPredictiveReplayAdversary:
    def test_drops_the_write(self):
        adversary = PredictiveReplayAdversary(target_address=0, length=4)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.poke(0, b"old!")  # seed out of band; the first bus write is dropped
        memory.write(0, b"new!")
        assert memory.peek(0, 4) == b"old!"
        assert adversary.dropped_write == b"new!"
        assert adversary.tampered

    def test_drops_only_once(self):
        adversary = PredictiveReplayAdversary(target_address=0, length=4)
        memory = UntrustedMemory(64, adversary=adversary)
        memory.poke(0, b"old!")
        memory.write(0, b"new1")
        memory.write(0, b"new2")
        assert memory.peek(0, 4) == b"new2"


class TestScriptedAdversary:
    def test_chains_children(self):
        tamper = TamperAdversary(target_address=0)
        observer = PassiveObserver()
        memory = UntrustedMemory(64, adversary=ScriptedAdversary(observer, tamper))
        memory.write(0, b"A")
        corrupted = memory.read(0, 1)
        assert corrupted != b"A"
        assert len(observer.observed) == 2
        assert memory.adversary.tampered
