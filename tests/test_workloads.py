"""Tests for the synthetic workload generators and SPEC stand-in profiles."""

import pytest

from repro.cpu.isa import OP_LATENCY, Instruction
from repro.workloads import (
    BANDWIDTH_BOUND,
    BENCHMARK_ORDER,
    SPEC_PROFILES,
    WorkloadProfile,
    generate_list,
    spec_workload,
)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = spec_workload("gcc", 2000, seed=7)
        b = spec_workload("gcc", 2000, seed=7)
        assert a == b

    def test_different_seed_differs(self):
        a = spec_workload("gcc", 2000, seed=1)
        b = spec_workload("gcc", 2000, seed=2)
        assert a != b

    def test_different_benchmarks_differ(self):
        assert spec_workload("gcc", 500) != spec_workload("gzip", 500)


class TestMix:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_operation_fractions_close_to_profile(self, name):
        profile = SPEC_PROFILES[name]
        stream = spec_workload(name, 20000)
        loads = sum(1 for i in stream if i.kind == "load") / len(stream)
        stores = sum(1 for i in stream if i.kind == "store") / len(stream)
        branches = sum(1 for i in stream if i.kind == "branch") / len(stream)
        assert loads == pytest.approx(profile.load_fraction, abs=0.02)
        assert stores == pytest.approx(profile.store_fraction, abs=0.02)
        assert branches == pytest.approx(profile.branch_fraction, abs=0.02)

    def test_mispredict_rate(self):
        stream = spec_workload("gcc", 50000)
        branches = [i for i in stream if i.kind == "branch"]
        bad = sum(1 for b in branches if b.mispredicted)
        assert bad / len(branches) == pytest.approx(
            SPEC_PROFILES["gcc"].mispredict_rate, rel=0.3
        )


class TestAddresses:
    def test_addresses_stay_in_segment(self):
        for name in BENCHMARK_ORDER:
            profile = SPEC_PROFILES[name]
            for instruction in spec_workload(name, 5000):
                if instruction.is_memory:
                    assert (profile.code_bytes <= instruction.address
                            < profile.code_bytes + profile.footprint_bytes)
                assert 0 <= instruction.pc < profile.code_bytes

    def test_streaming_loads_are_sequential(self):
        stream = spec_workload("swim", 5000)
        loads = [i.address for i in stream if i.kind == "load"]
        deltas = [b - a for a, b in zip(loads, loads[1:])]
        assert deltas.count(8) / len(deltas) > 0.95

    def test_streaming_stores_mark_full_blocks(self):
        stream = spec_workload("swim", 20000)
        stores = [i for i in stream if i.kind == "store"]
        marked = sum(1 for s in stores if s.full_block)
        # one full-block mark per 8-word block of the write sweep
        assert 0.05 < marked / len(stores) < 0.3

    def test_pointer_chase_has_serial_loads(self):
        stream = spec_workload("mcf", 20000)
        loads = [(idx, i) for idx, i in enumerate(stream) if i.kind == "load"]
        chained = 0
        for (prev_idx, _), (idx, load) in zip(loads, loads[1:]):
            if load.dep1 == idx - prev_idx:
                chained += 1
        assert chained / len(loads) > 0.2

    def test_wset_concentrates_references(self):
        profile = SPEC_PROFILES["gzip"]
        stream = spec_workload("gzip", 20000)
        hot_limit = profile.code_bytes + max(profile.hot_bytes, profile.stack_bytes)
        refs = [i.address for i in stream if i.is_memory]
        hot = sum(1 for a in refs if a < hot_limit)
        assert hot / len(refs) > 0.9


class TestProfileValidation:
    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", footprint_bytes=1 << 20, pattern="fractal")

    def test_rejects_saturated_mix(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", footprint_bytes=1 << 20,
                            load_fraction=0.5, store_fraction=0.4,
                            branch_fraction=0.2)

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", footprint_bytes=64)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            spec_workload("linpack", 100)

    def test_registry_complete(self):
        assert set(BENCHMARK_ORDER) == set(SPEC_PROFILES)
        assert set(BANDWIDTH_BOUND) <= set(BENCHMARK_ORDER)
        assert len(BENCHMARK_ORDER) == 9  # the paper's nine benchmarks


class TestInstructionRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Instruction(kind="teleport")

    def test_latency_lookup(self):
        assert Instruction(kind="alu").latency == OP_LATENCY["alu"]
        assert Instruction(kind="load").is_memory
        assert not Instruction(kind="branch").is_memory
