"""Unit and property tests for the cryptographic substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    FeistelPermutation,
    HashFunction,
    Manufacturer,
    ProcessorSecret,
    XorMac,
    default_hash,
)


class TestHashFunction:
    def test_default_is_128_bit_md5(self):
        h = default_hash()
        assert h.name == "md5"
        assert h.digest_bytes == 16
        assert len(h.digest(b"abc")) == 16

    def test_deterministic(self):
        h = default_hash()
        assert h.digest(b"data") == h.digest(b"data")

    def test_different_inputs_differ(self):
        h = default_hash()
        assert h.digest(b"a") != h.digest(b"b")

    def test_truncation(self):
        h = HashFunction("sha256", 8)
        assert len(h.digest(b"abc")) == 8

    def test_digest_many_is_concatenation(self):
        h = default_hash()
        assert h.digest_many(b"ab", b"cd") == h.digest(b"abcd")

    def test_all_algorithms_usable(self):
        for name in ("md5", "sha1", "sha256", "blake2b"):
            h = HashFunction(name, 16)
            assert len(h.digest(b"x")) == 16

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            HashFunction("sha3_keccak_nope")

    def test_rejects_oversized_digest(self):
        with pytest.raises(ValueError):
            HashFunction("md5", 17)

    @given(st.binary(max_size=256))
    def test_fixed_output_length(self, data):
        assert len(default_hash().digest(data)) == 16


class TestFeistelPermutation:
    def test_round_trip(self):
        prp = FeistelPermutation(b"key")
        block = bytes(range(16))
        assert prp.decrypt(prp.encrypt(block)) == block

    def test_round_trip_14_bytes(self):
        prp = FeistelPermutation(b"key", block_bytes=14)
        block = bytes(range(14))
        assert prp.decrypt(prp.encrypt(block)) == block

    def test_different_keys_differ(self):
        block = bytes(16)
        assert (
            FeistelPermutation(b"k1").encrypt(block)
            != FeistelPermutation(b"k2").encrypt(block)
        )

    def test_is_permutation_on_sample(self):
        prp = FeistelPermutation(b"key")
        seen = set()
        for i in range(200):
            seen.add(prp.encrypt(i.to_bytes(16, "big")))
        assert len(seen) == 200

    def test_rejects_odd_block(self):
        with pytest.raises(ValueError):
            FeistelPermutation(b"key", block_bytes=15)

    def test_rejects_wrong_length_input(self):
        prp = FeistelPermutation(b"key")
        with pytest.raises(ValueError):
            prp.encrypt(b"short")

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_round_trip_property(self, block):
        prp = FeistelPermutation(b"prop-key")
        assert prp.decrypt(prp.encrypt(block)) == block


class TestXorMac:
    def make(self, **kwargs):
        return XorMac(b"test-key", **kwargs)

    def test_verify_accepts_genuine(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64]
        tag = mac.compute(blocks, [0, 0])
        assert mac.verify(tag, blocks, [0, 0])

    def test_verify_rejects_modified_block(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64]
        tag = mac.compute(blocks, [0, 0])
        assert not mac.verify(tag, [b"a" * 64, b"c" * 64], [0, 0])

    def test_verify_rejects_swapped_blocks(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64]
        tag = mac.compute(blocks, [0, 0])
        assert not mac.verify(tag, [b"b" * 64, b"a" * 64], [0, 0])

    def test_timestamp_changes_tag(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64]
        assert mac.compute(blocks, [0, 0]) != mac.compute(blocks, [1, 0])

    def test_timestamps_ignored_when_disabled(self):
        mac = self.make(use_timestamps=False)
        blocks = [b"a" * 64, b"b" * 64]
        assert mac.compute(blocks, [0, 0]) == mac.compute(blocks, [1, 1])

    def test_incremental_update_matches_recompute(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64, b"c" * 64]
        tag = mac.compute(blocks, [0, 1, 0])
        updated = mac.update(tag, 1, b"b" * 64, 1, b"Z" * 64, 0)
        assert updated == mac.compute([b"a" * 64, b"Z" * 64, b"c" * 64], [0, 0, 0])

    def test_incremental_update_with_first_index(self):
        mac = self.make()
        blocks = [b"a" * 64, b"b" * 64]
        tag = mac.compute(blocks, [0, 0], first_index=10)
        updated = mac.update(tag, 11, b"b" * 64, 0, b"Q" * 64, 1)
        assert updated == mac.compute([b"a" * 64, b"Q" * 64], [0, 1], first_index=10)

    def test_first_index_binds_position(self):
        mac = self.make()
        blocks = [b"a" * 64]
        assert mac.compute(blocks, [0], first_index=0) != mac.compute(
            blocks, [0], first_index=1
        )

    def test_14_byte_variant(self):
        mac = self.make(mac_bytes=14)
        tag = mac.compute([b"x" * 64], [0])
        assert len(tag) == 14

    def test_rejects_bad_timestamp(self):
        mac = self.make()
        with pytest.raises(ValueError):
            mac.compute([b"x"], [2])

    def test_rejects_mismatched_lengths(self):
        mac = self.make()
        with pytest.raises(ValueError):
            mac.compute([b"x", b"y"], [0])

    @given(
        st.lists(st.binary(min_size=8, max_size=8), min_size=1, max_size=6),
        st.data(),
    )
    @settings(max_examples=50)
    def test_update_equals_recompute_property(self, blocks, data):
        mac = self.make()
        timestamps = [data.draw(st.integers(0, 1)) for _ in blocks]
        index = data.draw(st.integers(0, len(blocks) - 1))
        new_block = data.draw(st.binary(min_size=8, max_size=8))
        new_ts = data.draw(st.integers(0, 1))
        tag = mac.compute(blocks, timestamps)
        updated = mac.update(
            tag, index, blocks[index], timestamps[index], new_block, new_ts
        )
        new_blocks = list(blocks)
        new_blocks[index] = new_block
        new_timestamps = list(timestamps)
        new_timestamps[index] = new_ts
        assert updated == mac.compute(new_blocks, new_timestamps)


class TestKeys:
    def test_signature_round_trip(self):
        factory = Manufacturer()
        processor = factory.mint_processor()
        program = b"print(42)"
        signature = processor.sign(program, b"result=42")
        assert factory.verify(program, signature)

    def test_signature_bound_to_program(self):
        factory = Manufacturer()
        processor = factory.mint_processor()
        signature = processor.sign(b"program-a", b"result")
        assert not factory.verify(b"program-b", signature)

    def test_signature_bound_to_message(self):
        factory = Manufacturer()
        processor = factory.mint_processor()
        signature = processor.sign(b"program", b"result")
        forged = type(signature)(
            message=b"other", tag=signature.tag, program_digest=signature.program_digest
        )
        assert not factory.verify(b"program", forged)

    def test_unminted_processor_rejected(self):
        factory = Manufacturer()
        rogue = ProcessorSecret()
        signature = rogue.sign(b"program", b"result")
        assert not factory.verify(b"program", signature)

    def test_program_keys_differ_per_processor(self):
        a = ProcessorSecret(b"a" * 32)
        b = ProcessorSecret(b"b" * 32)
        assert a.derive_program_key(b"p") != b.derive_program_key(b"p")

    def test_program_keys_differ_per_program(self):
        secret = ProcessorSecret(b"a" * 32)
        assert secret.derive_program_key(b"p1") != secret.derive_program_key(b"p2")

    def test_deterministic_material(self):
        a = ProcessorSecret(b"fixed" * 8)
        b = ProcessorSecret(b"fixed" * 8)
        assert a.derive_program_key(b"p") == b.derive_program_key(b"p")
