"""Tests for the instruction-trace file format."""

import io

import pytest

from repro.cpu import Instruction
from repro.workloads import spec_workload
from repro.workloads.tracefile import (
    TraceParseError,
    dump_trace,
    load_trace,
    parse_trace,
    save_trace,
)


class TestRoundTrip:
    def test_memory_round_trip(self):
        original = spec_workload("twolf", 500)
        buffer = io.StringIO()
        count = dump_trace(original, buffer)
        buffer.seek(0)
        restored = list(parse_trace(buffer))
        assert count == 500
        assert restored == original

    def test_file_round_trip(self, tmp_path):
        original = spec_workload("swim", 300)
        path = tmp_path / "swim.trace"
        assert save_trace(original, str(path)) == 300
        assert load_trace(str(path)) == original

    def test_flags_preserved(self):
        original = [
            Instruction(kind="branch", pc=4, mispredicted=True),
            Instruction(kind="store", address=64, pc=8, full_block=True),
            Instruction(kind="alu", dep1=3, dep2=7, pc=12),
        ]
        buffer = io.StringIO()
        dump_trace(original, buffer)
        buffer.seek(0)
        assert list(parse_trace(buffer)) == original


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n# comment\nalu 0 0 0 4 -\n"
        assert len(list(parse_trace(io.StringIO(text)))) == 1

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="expected 6 fields"):
            list(parse_trace(io.StringIO("alu 0 0 0\n")))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            list(parse_trace(io.StringIO("warp 0 0 0 4 -\n")))

    def test_error_carries_source_and_line(self):
        text = "# header\nalu 0 0 0 4 -\nbogus line here\n"
        with pytest.raises(TraceParseError) as info:
            list(parse_trace(io.StringIO(text), source="demo.trace"))
        assert info.value.source == "demo.trace"
        assert info.value.line == 3
        assert "demo.trace" in str(info.value)

    def test_error_is_a_value_error(self):
        assert issubclass(TraceParseError, ValueError)

    def test_bad_flags_rejected(self):
        with pytest.raises(TraceParseError, match="bad flags"):
            list(parse_trace(io.StringIO("alu 0 0 0 4 q\n")))

    def test_load_trace_closes_handle_on_parse_failure(self, tmp_path,
                                                       monkeypatch):
        import repro.workloads.tracefile as tracefile

        path = tmp_path / "bad.trace"
        path.write_text("alu 0 0 0 4 -\ntruncated 1 2\n")
        opened = []
        real_open = open

        def spying_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr(tracefile, "open", spying_open, raising=False)
        with pytest.raises(TraceParseError) as info:
            load_trace(str(path))
        assert info.value.line == 2
        assert info.value.source == str(path)
        assert opened and all(handle.closed for handle in opened)

    def test_load_trace_source_inferred_from_stream_name(self, tmp_path):
        path = tmp_path / "named.trace"
        path.write_text("nonsense\n")
        with open(path) as stream:
            with pytest.raises(TraceParseError) as info:
                list(parse_trace(stream))
        assert info.value.source == str(path)

    def test_trace_drives_simulator(self):
        from repro.common import SchemeKind, table1_config
        from repro.sim import SimulatedSystem

        buffer = io.StringIO()
        dump_trace(spec_workload("gzip", 400), buffer)
        buffer.seek(0)
        system = SimulatedSystem(table1_config(SchemeKind.CHASH),
                                 protected_bytes=64 << 20)
        result = system.run(list(parse_trace(buffer)), benchmark="traced")
        assert result.instructions == 400
