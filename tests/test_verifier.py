"""Tests for the MemoryVerifier facade, DMA, and the secure-mode lifecycle."""

import hashlib

import pytest

from repro.common import ConfigurationError, IntegrityError, SecureModeError
from repro.hashtree import MemoryVerifier
from repro.memory import DMAController, DMADevice, UntrustedMemory

DATA_BYTES = 64 * 64


def make_verifier(scheme="chash", headroom=4096, **kwargs):
    memory = UntrustedMemory(64 * 128 + headroom)
    verifier = MemoryVerifier(memory, DATA_BYTES, scheme=scheme,
                              cache_chunks=kwargs.pop("cache_chunks", 8), **kwargs)
    verifier.initialize()
    return memory, verifier


class TestLifecycle:
    def test_reads_require_initialization(self):
        memory = UntrustedMemory(64 * 128)
        verifier = MemoryVerifier(memory, DATA_BYTES)
        with pytest.raises(SecureModeError):
            verifier.read(0, 4)
        with pytest.raises(SecureModeError):
            verifier.write(0, b"x")

    def test_initialize_covers_preexisting_contents(self):
        memory = UntrustedMemory(64 * 128)
        probe = MemoryVerifier(memory, DATA_BYTES)  # locate leaf 0 physically
        physical = probe.physical_address(0)
        memory.poke(physical, b"pre-existing")
        verifier = MemoryVerifier(memory, DATA_BYTES)
        verifier.initialize()
        assert verifier.read(0, 12) == b"pre-existing"

    @pytest.mark.parametrize("scheme", ["naive", "chash", "mhash", "ihash"])
    def test_all_schemes_round_trip(self, scheme):
        _, verifier = make_verifier(scheme=scheme)
        verifier.write(100, b"scheme test")
        verifier.flush()
        assert verifier.read(100, 11) == b"scheme test"

    def test_unknown_scheme_rejected(self):
        memory = UntrustedMemory(64 * 128)
        with pytest.raises(ConfigurationError):
            MemoryVerifier(memory, DATA_BYTES, scheme="quantum")

    def test_memory_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryVerifier(UntrustedMemory(64), DATA_BYTES)


class TestProtectionBoundary:
    def test_is_protected(self):
        _, verifier = make_verifier()
        assert verifier.is_protected(0)
        assert verifier.is_protected(DATA_BYTES - 1)
        assert not verifier.is_protected(DATA_BYTES)

    def test_normal_read_refuses_window(self):
        _, verifier = make_verifier()
        window = verifier.unprotected_window
        with pytest.raises(SecureModeError):
            verifier.read(window.start, 4)

    def test_unchecked_read_refuses_protected(self):
        _, verifier = make_verifier()
        with pytest.raises(SecureModeError):
            verifier.read_without_checking(0, 4)

    def test_window_round_trip_unchecked(self):
        _, verifier = make_verifier()
        start = verifier.unprotected_window.start
        verifier.write_without_checking(start, b"staging")
        assert verifier.read_without_checking(start, 7) == b"staging"

    def test_window_not_covered_by_tree(self):
        """Tampering with the window is invisible — that's the contract."""
        memory, verifier = make_verifier()
        start = verifier.unprotected_window.start
        verifier.write_without_checking(start, b"staging")
        memory.poke(verifier.physical_address(start), b"T")
        assert verifier.read_without_checking(start, 7) == b"Ttaging"


class TestDetection:
    def test_detects_tampering(self):
        memory, verifier = make_verifier(cache_chunks=2)
        verifier.write(0, b"secret")
        verifier.flush()
        for i in range(1, 20):
            verifier.read(i * 64, 1)  # evict leaf 0
        memory.poke(verifier.physical_address(0), b"X")
        with pytest.raises(IntegrityError):
            verifier.read(0, 1)


class TestDMA:
    def test_unprotect_then_rebuild(self):
        memory, verifier = make_verifier()
        device = DMADevice(memory)
        controller = DMAController(verifier, device)
        payload = b"\xaa" * 64
        controller.transfer_and_rebuild(0, payload)
        assert verifier.read(0, 64) == payload

    def test_unprotected_chunk_refuses_normal_read(self):
        _, verifier = make_verifier()
        verifier.unprotect_range(0, 64)
        with pytest.raises(SecureModeError):
            verifier.read(0, 4)
        verifier.rebuild_range(0, 64)
        verifier.read(0, 4)

    def test_rebuild_requires_prior_unprotect(self):
        _, verifier = make_verifier()
        with pytest.raises(SecureModeError):
            verifier.rebuild_range(0, 64)

    def test_transfer_and_copy(self):
        memory, verifier = make_verifier()
        device = DMADevice(memory)
        controller = DMAController(verifier, device)
        payload = b"network packet .."
        digest = hashlib.sha256(payload).digest()
        staging = verifier.unprotected_window.start
        controller.transfer_and_copy(staging, 256, payload, expected_digest=digest)
        assert verifier.read(256, len(payload)) == payload

    def test_transfer_and_copy_checks_digest(self):
        memory, verifier = make_verifier()

        class LyingDevice(DMADevice):
            def transfer(self, address, payload):
                super().transfer(address, b"X" * len(payload))

        controller = DMAController(verifier, LyingDevice(memory))
        payload = b"network packet .."
        digest = hashlib.sha256(payload).digest()
        staging = verifier.unprotected_window.start
        with pytest.raises(SecureModeError):
            controller.transfer_and_copy(staging, 256, payload,
                                         expected_digest=digest)

    def test_copy_refuses_protected_staging(self):
        memory, verifier = make_verifier()
        controller = DMAController(verifier, DMADevice(memory))
        with pytest.raises(SecureModeError):
            controller.transfer_and_copy(0, 256, b"payload")

    def test_dma_without_rebuild_is_caught_or_refused(self):
        """Writing protected memory behind the tree's back must never go
        unnoticed: either the read refuses (unprotected) or fails the check."""
        memory, verifier = make_verifier(cache_chunks=2)
        for i in range(1, 20):
            verifier.read(i * 64, 1)
        device = DMADevice(memory)
        device.transfer(verifier.physical_address(0), b"\xbb" * 64)
        with pytest.raises(IntegrityError):
            verifier.read(0, 4)


class TestDMATransferRebuildPhysical:
    def test_manual_unprotect_transfer_rebuild(self):
        memory, verifier = make_verifier()
        device = DMADevice(memory)
        verifier.unprotect_range(128, 64)
        device.transfer(verifier.physical_address(128), b"\xcd" * 64)
        verifier.rebuild_range(128, 64)
        assert verifier.read(128, 64) == b"\xcd" * 64
