"""Tests for the VM and the certified-execution protocol (Section 4.1)."""

import pytest

from repro.certify import (
    Alice,
    SecureProcessor,
    StackMachine,
    VMError,
    VMLimits,
    assemble,
)
from repro.crypto import Manufacturer
from repro.hashtree import MemoryVerifier
from repro.memory import TamperAdversary, UntrustedMemory


def fresh_machine(adversary=None):
    memory = UntrustedMemory(1 << 20, adversary=adversary)
    verifier = MemoryVerifier(memory, 64 * 1024, scheme="chash")
    verifier.initialize()
    return memory, verifier, StackMachine(verifier)


SUM_PROGRAM = [
    # sum = 0; i = n; while i: sum += i; i -= 1
    ("PUSH", 0), ("STORE", 0),          # sum
    ("LOAD", 8),                        # i  (input at data address 8)
    # loop:
    ("DUP",), ("LOAD", 0), ("ADD",), ("STORE", 0),   # sum += i
    ("PUSH", 1), ("SUB",),              # i -= 1
    ("DUP",), ("JNZ", 19),              # byte offset of the loop start
    ("POP",),
    ("LOAD", 0), ("HALT",),
]


class TestAssembler:
    def test_round_trip_simple(self):
        code = assemble([("PUSH", 2), ("PUSH", 3), ("ADD",), ("HALT",)])
        assert code[0] == 0x01 and code[-1] == 0x0C

    def test_rejects_unknown_op(self):
        with pytest.raises(VMError):
            assemble([("LAUNCH",)])


class TestStackMachine:
    def test_arithmetic(self):
        _, _, machine = fresh_machine()
        machine.load_program(assemble(
            [("PUSH", 6), ("PUSH", 7), ("MUL",), ("HALT",)]))
        assert machine.run() == 42

    def test_sub_and_stack_ops(self):
        _, _, machine = fresh_machine()
        machine.load_program(assemble(
            [("PUSH", 10), ("PUSH", 4), ("SWAP",), ("SUB",), ("HALT",)]))
        assert machine.run() == -6  # 4 - 10

    def test_memory_ops(self):
        _, _, machine = fresh_machine()
        machine.load_program(assemble(
            [("PUSH", 99), ("STORE", 16), ("LOAD", 16), ("HALT",)]))
        assert machine.run() == 99

    def test_loop_program(self):
        _, _, machine = fresh_machine()
        machine.load_program(assemble(SUM_PROGRAM))
        machine.poke_data(8, 10)
        assert machine.run() == 55

    def test_stack_underflow(self):
        _, _, machine = fresh_machine()
        machine.load_program(assemble([("ADD",), ("HALT",)]))
        with pytest.raises(VMError):
            machine.run()

    def test_step_limit(self):
        _, verifier, _ = fresh_machine()
        machine = StackMachine(verifier, VMLimits(max_steps=100))
        machine.load_program(assemble([("JMP", 0)]))
        with pytest.raises(VMError):
            machine.run()

    def test_data_address_bounds(self):
        _, _, machine = fresh_machine()
        with pytest.raises(VMError):
            machine.poke_data(10**9, 1)


class TestCertifiedExecution:
    def make_parties(self):
        manufacturer = Manufacturer()
        secret = manufacturer.mint_processor()
        return manufacturer, secret

    def test_honest_run_is_accepted(self):
        manufacturer, secret = self.make_parties()
        processor = SecureProcessor(secret, UntrustedMemory(1 << 20))
        alice = Alice(manufacturer, SUM_PROGRAM)
        result = processor.execute_certified(SUM_PROGRAM, inputs=[(8, 10)])
        assert result.value == 55
        assert alice.accepts(result)

    def test_forged_value_is_rejected(self):
        manufacturer, secret = self.make_parties()
        processor = SecureProcessor(secret, UntrustedMemory(1 << 20))
        alice = Alice(manufacturer, SUM_PROGRAM)
        result = processor.execute_certified(SUM_PROGRAM, inputs=[(8, 10)])
        result.value = 56  # Bob lies about the result
        assert not alice.accepts(result)

    def test_signature_bound_to_program(self):
        manufacturer, secret = self.make_parties()
        processor = SecureProcessor(secret, UntrustedMemory(1 << 20))
        other_program = SUM_PROGRAM + [("POP",)]
        alice = Alice(manufacturer, other_program)
        result = processor.execute_certified(SUM_PROGRAM, inputs=[(8, 10)])
        assert not alice.accepts(result)

    def test_simulator_without_secret_cannot_certify(self):
        manufacturer, _ = self.make_parties()
        from repro.crypto import ProcessorSecret
        rogue = SecureProcessor(ProcessorSecret(), UntrustedMemory(1 << 20))
        alice = Alice(manufacturer, SUM_PROGRAM)
        result = rogue.execute_certified(SUM_PROGRAM, inputs=[(8, 10)])
        assert result.value == 55  # computes fine...
        assert not alice.accepts(result)  # ...but cannot be certified

    def test_tampering_aborts_without_certificate(self):
        manufacturer, secret = self.make_parties()
        # corrupt a mid-memory byte after a few reads have gone by
        probe = MemoryVerifier(UntrustedMemory(1 << 20), 64 * 1024)
        target = probe.physical_address(8192 + 16)  # inside the VM data region
        adversary = TamperAdversary(target_address=target, trigger_after=1)
        processor = SecureProcessor(
            secret, UntrustedMemory(1 << 20, adversary=adversary),
            scheme="naive",  # every read goes to memory: the probe will fire
        )
        alice = Alice(manufacturer, SUM_PROGRAM)
        # use a program that reads the targeted address repeatedly
        program = [("LOAD", 16), ("LOAD", 16), ("LOAD", 16),
                   ("LOAD", 16), ("HALT",)]
        alice = Alice(manufacturer, program)
        result = processor.execute_certified(program)
        assert result.aborted
        assert result.signature is None
        assert not alice.accepts(result)