"""Simulation result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..common.config import SystemConfig


@dataclass
class SimResult:
    """Everything one simulation run produced."""

    benchmark: str
    scheme: str
    config: SystemConfig
    instructions: int
    cycles: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # -- the derived metrics the paper's figures plot -------------------------------

    @property
    def l2_data_miss_rate(self) -> float:
        """L2 miss rate of *program data* accesses (Figure 4)."""
        accesses = self.stats.get("l2.data_accesses", 0)
        if not accesses:
            return 0.0
        return self.stats.get("l2.data_misses", 0) / accesses

    @property
    def l2_data_misses(self) -> float:
        return self.stats.get("l2.data_misses", 0) + self.stats.get(
            "l2.instr_misses", 0
        )

    @property
    def memory_reads(self) -> float:
        return self.stats.get("memory.reads", 0)

    @property
    def memory_bytes(self) -> float:
        return self.stats.get("memory.bytes_total", 0)

    @property
    def hash_memory_read_bytes(self) -> float:
        return self.stats.get("memory.read_bytes_hash", 0) + self.stats.get(
            "memory.read_bytes_old", 0
        )

    @property
    def extra_reads_per_miss(self) -> float:
        """Additional memory loads per L2 miss caused by the tree (Fig 5a)."""
        misses = self.l2_data_misses
        if not misses:
            return 0.0
        data_reads = (self.stats.get("memory.read_bytes_data", 0)
                      / self.config.l2.block_bytes)
        total_reads = self.memory_reads
        return max(0.0, (total_reads - data_reads) / misses)

    @property
    def bus_utilization(self) -> float:
        if not self.cycles:
            return 0.0
        return min(1.0, self.stats.get("memory.bus_busy_cycles", 0) / self.cycles)

    def normalized_bandwidth(self, baseline: "SimResult") -> float:
        """Bytes moved relative to a baseline run (Figure 5b)."""
        if baseline.memory_bytes == 0:
            return 1.0 if self.memory_bytes == 0 else float("inf")
        return self.memory_bytes / baseline.memory_bytes

    def slowdown(self, baseline: "SimResult") -> float:
        """baseline IPC / this IPC (>1 means this run is slower)."""
        if self.ipc == 0:
            return float("inf")
        return baseline.ipc / self.ipc

    def overhead_percent(self, baseline: "SimResult") -> float:
        """Performance loss vs the baseline, in percent."""
        if baseline.ipc == 0:
            return 0.0
        return (1.0 - self.ipc / baseline.ipc) * 100.0

    def summary(self) -> str:
        return (
            f"{self.benchmark:8s} {self.scheme:6s} "
            f"IPC={self.ipc:5.3f} l2dmiss={self.l2_data_miss_rate:6.2%} "
            f"extra/miss={self.extra_reads_per_miss:5.2f} "
            f"bus={self.bus_utilization:5.1%}"
        )
