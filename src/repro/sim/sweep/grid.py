"""Sequential convenience grids (the pre-parallel sweep API).

Each figure in the paper is a sweep; these helpers keep simple callers
declarative.  Results come back keyed so tables can be assembled without
re-running anything.  For parallel, disk-cached sweeps use
:mod:`repro.sim.sweep.runner` instead.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from ...common.config import SchemeKind, SystemConfig
from ..results import SimResult
from ..system import run_benchmark

SweepKey = Tuple[str, str, str]  # (benchmark, scheme, variant)


def run_grid(
    base_config: SystemConfig,
    benchmarks: Iterable[str],
    schemes: Iterable[SchemeKind],
    variants: Optional[Dict[str, Callable[[SystemConfig], SystemConfig]]] = None,
    instructions: int = 30_000,
    warmup: int = 20_000,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[SweepKey, SimResult]:
    """Run every (benchmark, scheme, variant) cell of the grid.

    ``variants`` maps a variant label to a config transform (e.g. L2
    geometry for Figure 3); the identity variant ``""`` is used when
    omitted.
    """
    if variants is None:
        variants = {"": lambda config: config}
    results: Dict[SweepKey, SimResult] = {}
    for variant_name, transform in variants.items():
        for scheme in schemes:
            config = transform(base_config).with_scheme(scheme)
            for benchmark in benchmarks:
                result = run_benchmark(
                    config, benchmark,
                    instructions=instructions, warmup=warmup, seed=seed,
                )
                results[(benchmark, scheme.value, variant_name)] = result
                if progress is not None:
                    progress(result.summary() + (f" [{variant_name}]" if variant_name else ""))
    return results


def baseline_of(
    results: Dict[SweepKey, SimResult], benchmark: str, variant: str = ""
) -> SimResult:
    """The base-scheme cell for a benchmark/variant."""
    return results[(benchmark, SchemeKind.BASE.value, variant)]
