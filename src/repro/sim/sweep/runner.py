"""Parallel sweep execution: fan cells out across worker processes.

Every cell is fully self-contained (config + benchmark + seed +
instruction counts), every simulation seeds its own RNGs, and results are
keyed by cell rather than by completion order — so a sweep is
*deterministic*: ``jobs=1`` and ``jobs=N`` produce bit-identical
:class:`SimResult` values, and a cached re-run returns exactly what the
cold run computed.

Flow per sweep: normalize + dedupe the requested cells, satisfy what the
:class:`~repro.sim.sweep.diskcache.DiskCellCache` already holds, fan the
misses out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs=1`` stays in-process), write fresh results back, and return a
:class:`SweepReport` with per-cell wall-clock timings and a run/cached/
failed summary.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...kernels import resolve_kernels
from ..results import SimResult
from ..system import (
    packed_measure_default,
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)
from .diskcache import DiskCellCache
from .fingerprint import cell_fingerprint, warm_fingerprint
from .spec import CellSpec


def resolved_backend(spec: CellSpec) -> str:
    """The concrete backend label ``spec``'s measured suffix runs on.

    Execution metadata only (recorded on :class:`CellOutcome` and in
    disk-cache entries) — never part of cell identity, because every
    backend is bit-identical.
    """
    if not packed_measure_default():
        return "object"
    return resolve_kernels(spec.kernels)


def execute_cell(spec: CellSpec) -> SimResult:
    """Run one cell from scratch (module-level so workers can pickle it)."""
    return run_benchmark(
        spec.build_config(),
        spec.benchmark,
        instructions=spec.instructions,
        warmup=spec.warmup,
        seed=spec.seed,
        kernels=spec.kernels,
    )


def _timed_execute(spec: CellSpec) -> Tuple[SimResult, float, str]:
    backend = resolved_backend(spec)
    start = time.perf_counter()
    result = execute_cell(spec)
    return result, time.perf_counter() - start, backend


#: One cell's result inside a group:
#: (spec, result, elapsed, warm, measure, backend, error).
_GroupRow = Tuple[CellSpec, Optional[SimResult], float, float, float,
                  Optional[str], Optional[str]]


def execute_group(specs: Sequence[CellSpec]) -> List[_GroupRow]:
    """Run one warm-sharing group (module-level so workers can pickle it).

    Every spec in ``specs`` shares a :func:`warm_fingerprint`, so the
    group warms **once** (charged to the first cell's ``warm`` column) and
    every cell measures from a restored copy of that state — bit-identical
    to warming each cell from scratch.  A warm-up failure fails the whole
    group; a measurement failure fails only its own cell.
    """
    first = specs[0]
    try:
        start = time.perf_counter()
        warm_state = prepare_warm_state(
            first.build_config(),
            first.benchmark,
            warmup=first.warmup,
            seed=first.seed,
            kernels=first.kernels,
        )
        warm_s = time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - group isolation
        message = f"{type(error).__name__}: {error}"
        return [(spec, None, 0.0, 0.0, 0.0, None, message) for spec in specs]
    rows: List[_GroupRow] = []
    for index, spec in enumerate(specs):
        cell_warm = warm_s if index == 0 else 0.0
        try:
            backend = resolved_backend(spec)
            start = time.perf_counter()
            result = run_from_warm_state(
                spec.build_config(),
                spec.benchmark,
                warm_state,
                instructions=spec.instructions,
                kernels=spec.kernels,
            )
            measure_s = time.perf_counter() - start
        except Exception as error:  # noqa: BLE001 - cell isolation
            rows.append((spec, None, 0.0, 0.0, 0.0, None,
                         f"{type(error).__name__}: {error}"))
        else:
            rows.append((spec, result, cell_warm + measure_s, cell_warm,
                         measure_s, backend, None))
    return rows


@dataclass(frozen=True)
class CellOutcome:
    """How one cell of a sweep was satisfied."""

    spec: CellSpec
    result: Optional[SimResult]
    elapsed_s: float
    #: ``"run"``, ``"cached"`` or ``"failed"``.
    source: str
    error: Optional[str] = None
    #: Warm-up seconds charged to this cell (the cell that actually warmed
    #: its group carries the whole group's warm-up; reusers carry 0).
    warm_s: float = 0.0
    #: Seconds spent simulating the measured suffix.
    measure_s: float = 0.0
    #: Concrete kernel backend the measured suffix ran on (``numpy``/
    #: ``fallback``/``packed``/``object``; ``None`` for cached or failed
    #: cells).  Metadata only — backends are bit-identical.
    backend: Optional[str] = None


@dataclass
class SweepReport:
    """Everything one sweep produced, plus its cost accounting."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    jobs: int = 1
    elapsed_s: float = 0.0
    #: Warm-sharing groups the pending cells were scheduled into
    #: (0 when nothing ran or sharing was disabled).
    warm_groups: int = 0

    @property
    def results(self) -> Dict[CellSpec, SimResult]:
        """Successful results keyed by normalized :class:`CellSpec`."""
        return {
            outcome.spec: outcome.result
            for outcome in self.outcomes
            if outcome.result is not None
        }

    def _by_source(self, source: str) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.source == source]

    @property
    def ran(self) -> List[CellOutcome]:
        return self._by_source("run")

    @property
    def cached(self) -> List[CellOutcome]:
        return self._by_source("cached")

    @property
    def failed(self) -> List[CellOutcome]:
        return self._by_source("failed")

    def summary(self) -> str:
        """Multi-line sweep accounting for the end of a CLI run."""
        ran, cached, failed = self.ran, self.cached, self.failed
        lines = [
            f"sweep: {len(self.outcomes)} cells — {len(ran)} run, "
            f"{len(cached)} cached, {len(failed)} failed "
            f"in {self.elapsed_s:.1f}s wall ({self.jobs} jobs)"
        ]
        if ran:
            cell_time = sum(o.elapsed_s for o in ran)
            lines.append(
                f"  simulated {cell_time:.1f}s of cell work "
                f"({cell_time / len(ran):.2f}s/cell avg, "
                f"{max(o.elapsed_s for o in ran):.2f}s max)"
            )
            backends = sorted({o.backend for o in ran if o.backend})
            if backends:
                lines.append(f"  kernels backend: {', '.join(backends)}")
            warm_time = sum(o.warm_s for o in ran)
            measure_time = sum(o.measure_s for o in ran)
            if warm_time or measure_time:
                split = (
                    f"  warm-up {warm_time:.1f}s / measure {measure_time:.1f}s"
                )
                if self.warm_groups:
                    split += (
                        f" ({len(ran)} cells warmed via "
                        f"{self.warm_groups} shared group"
                        f"{'s' if self.warm_groups != 1 else ''})"
                    )
                lines.append(split)
        if failed:
            for outcome in failed:
                lines.append(f"  FAILED {outcome.spec.label()}: {outcome.error}")
        return "\n".join(lines)


ProgressFn = Callable[[CellOutcome], None]


def _balance_groups(groups: List[List[CellSpec]],
                    jobs: int) -> List[List[CellSpec]]:
    """Split the largest warm groups until every worker can get one.

    A grid whose cells all share one warm key (e.g. fig7: one geometry,
    six buffer depths) would otherwise serialize on a single worker.
    Splitting a group costs one extra warm-up but restores parallelism;
    since measuring from a restored snapshot is bit-identical to warming
    from scratch, any split yields identical results.
    """
    total = sum(len(group) for group in groups)
    target = min(jobs, total)
    groups = [list(group) for group in groups]
    while len(groups) < target:
        largest = max(range(len(groups)), key=lambda i: len(groups[i]))
        group = groups[largest]
        if len(group) < 2:
            break
        half = len(group) // 2
        groups[largest] = group[:half]
        groups.append(group[half:])
    return groups


def run_cells(
    cells: Iterable[CellSpec],
    jobs: int = 1,
    cache: Optional[DiskCellCache] = None,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
    share_warm: bool = True,
) -> SweepReport:
    """Run a sweep; see module docstring for the exact flow.

    ``cache=None`` disables the disk cache entirely; ``fresh=True`` keeps
    the cache but ignores existing entries (recomputing and overwriting
    them).  Duplicate cells (figures share rows) are computed once.

    ``share_warm`` (default on) schedules the cache-miss cells in groups
    keyed by :func:`warm_fingerprint`: each group warms once and every
    member cell measures from a restored snapshot of that state.  Results
    are bit-identical with sharing on or off, and for any ``jobs`` — only
    the wall-clock changes.
    """
    started = time.perf_counter()
    unique: List[CellSpec] = []
    seen = set()
    for cell in cells:
        spec = cell.normalized()
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    fingerprints = {spec: cell_fingerprint(spec) for spec in unique}
    outcomes: Dict[CellSpec, CellOutcome] = {}
    pending: List[CellSpec] = []

    for spec in unique:
        cached = None
        if cache is not None and not fresh:
            cached = cache.get(fingerprints[spec])
        if cached is not None:
            outcome = CellOutcome(spec, cached, 0.0, "cached")
            outcomes[spec] = outcome
            if progress is not None:
                progress(outcome)
        else:
            pending.append(spec)

    def record(spec: CellSpec, result: Optional[SimResult], elapsed: float,
               error: Optional[str] = None, warm_s: float = 0.0,
               measure_s: float = 0.0,
               backend: Optional[str] = None) -> None:
        source = "failed" if result is None else "run"
        outcome = CellOutcome(spec, result, elapsed, source, error,
                              warm_s=warm_s, measure_s=measure_s,
                              backend=backend)
        outcomes[spec] = outcome
        if result is not None and cache is not None:
            cache.put(fingerprints[spec], spec, result, elapsed,
                      backend=backend)
        if progress is not None:
            progress(outcome)

    def record_rows(rows: Sequence[_GroupRow]) -> None:
        for spec, result, elapsed, warm_s, measure_s, backend, error in rows:
            record(spec, result, elapsed, error,
                   warm_s=warm_s, measure_s=measure_s, backend=backend)

    warm_groups = 0
    if not share_warm:
        if jobs <= 1 or len(pending) <= 1:
            for spec in pending:
                try:
                    result, elapsed, backend = _timed_execute(spec)
                except Exception as error:  # noqa: BLE001 - cell isolation
                    record(spec, None, 0.0, f"{type(error).__name__}: {error}")
                else:
                    record(spec, result, elapsed, backend=backend)
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(_timed_execute, spec): spec
                           for spec in pending}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        spec = futures[future]
                        try:
                            result, elapsed, backend = future.result()
                        except Exception as error:  # noqa: BLE001
                            record(spec, None, 0.0,
                                   f"{type(error).__name__}: {error}")
                        else:
                            record(spec, result, elapsed, backend=backend)
    elif pending:
        grouped: Dict[str, List[CellSpec]] = {}
        for spec in pending:
            grouped.setdefault(warm_fingerprint(spec), []).append(spec)
        groups = list(grouped.values())
        if jobs > 1:
            groups = _balance_groups(groups, jobs)
        warm_groups = len(groups)
        if jobs <= 1 or len(groups) <= 1:
            for group in groups:
                record_rows(execute_group(group))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(execute_group, group): group
                           for group in groups}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        group = futures[future]
                        try:
                            rows = future.result()
                        except Exception as error:  # noqa: BLE001
                            message = f"{type(error).__name__}: {error}"
                            for spec in group:
                                record(spec, None, 0.0, message)
                        else:
                            record_rows(rows)

    ordered = [outcomes[spec] for spec in unique]
    return SweepReport(
        outcomes=ordered,
        jobs=max(1, jobs),
        elapsed_s=time.perf_counter() - started,
        warm_groups=warm_groups,
    )


def results_grid(
    report: SweepReport,
    variant_params: Sequence[str] = (),
) -> Dict[Tuple, SimResult]:
    """Re-key a report as ``(benchmark, scheme, variant...) -> SimResult``.

    ``variant_params`` names the :class:`CellSpec` fields that distinguish
    machine variants in this sweep (e.g. ``("l2_size", "l2_block")`` for
    Figure 3); the returned keys carry those values in order.
    """
    grid: Dict[Tuple, SimResult] = {}
    for spec, result in report.results.items():
        variant = tuple(getattr(spec, param) for param in variant_params)
        grid[(spec.benchmark, spec.scheme.value) + variant] = result
    return grid
