"""Parallel sweep execution: fan cells out across worker processes.

Every cell is fully self-contained (config + benchmark + seed +
instruction counts), every simulation seeds its own RNGs, and results are
keyed by cell rather than by completion order — so a sweep is
*deterministic*: ``jobs=1`` and ``jobs=N`` produce bit-identical
:class:`SimResult` values, and a cached re-run returns exactly what the
cold run computed.

Flow per sweep: normalize + dedupe the requested cells, satisfy what the
result store already holds (a local
:class:`~repro.sim.sweep.diskcache.DiskCellCache` or a tiered
local+shared :class:`~repro.sim.sweep.store.TieredStore` — an L2 hit is
hydrated into L1 and reported per tier), then dispatch the misses as
warm groups through a cost-aware work-stealing queue
(:mod:`repro.sim.sweep.schedule`): groups go out costliest-first over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` stays
in-process), idle workers pull the next group, and oversized groups are
split dynamically when workers would starve.  Fresh results are written
back through the store and the sweep returns a :class:`SweepReport`
with per-cell timings, per-tier store accounting and the run/cached/
failed summary.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...kernels import resolve_kernels
from ..results import SimResult
from ..system import (
    packed_measure_default,
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)
from .fingerprint import cell_fingerprint, warm_fingerprint
from .schedule import CostModel, WorkQueue, balance_groups
from .spec import CellSpec
from .store import ResultStore

#: kept under its historical name — the static reference balancer the
#: work-stealing queue generalizes (tests pin both behaviors).
_balance_groups = balance_groups


def resolve_jobs(jobs: int) -> int:
    """``0`` means auto (one worker per CPU); anything else clamps to 1+."""
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def dedupe_cells(cells: Iterable[CellSpec]) -> List[CellSpec]:
    """Normalize cells and drop duplicates, preserving first-seen order.

    Figures share rows (fig4/fig5 are fig3 subsets), so a ``--figure
    all`` request contains many equivalent spellings of the same cell;
    every sweep front end — local or distributed — runs each exactly
    once.
    """
    unique: List[CellSpec] = []
    seen = set()
    for cell in cells:
        spec = cell.normalized()
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)
    return unique


def warm_groups_of(pending: Sequence[CellSpec]) -> List[List[CellSpec]]:
    """Partition cells into warm-sharing groups, deterministically ordered.

    Cells sharing a :func:`warm_fingerprint` form one group (warmed once,
    measured from restored snapshots); groups come back sorted by that
    fingerprint so every front end seeds identical groups.
    """
    grouped: Dict[str, List[CellSpec]] = {}
    for spec in pending:
        grouped.setdefault(warm_fingerprint(spec), []).append(spec)
    return [grouped[key] for key in sorted(grouped)]


def resolved_backend(spec: CellSpec) -> str:
    """The concrete backend label ``spec``'s measured suffix runs on.

    Execution metadata only (recorded on :class:`CellOutcome` and in
    store entries) — never part of cell identity, because every backend
    is bit-identical.
    """
    if not packed_measure_default():
        return "object"
    return resolve_kernels(spec.kernels)


def execute_cell(spec: CellSpec) -> SimResult:
    """Run one cell from scratch (module-level so workers can pickle it)."""
    return run_benchmark(
        spec.build_config(),
        spec.benchmark,
        instructions=spec.instructions,
        warmup=spec.warmup,
        seed=spec.seed,
        kernels=spec.kernels,
    )


def _timed_execute(spec: CellSpec) -> Tuple[SimResult, float, str]:
    backend = resolved_backend(spec)
    start = time.perf_counter()
    result = execute_cell(spec)
    return result, time.perf_counter() - start, backend


#: One cell's result inside a group:
#: (spec, result, elapsed, warm, measure, backend, error).
_GroupRow = Tuple[CellSpec, Optional[SimResult], float, float, float,
                  Optional[str], Optional[str]]


def execute_group(specs: Sequence[CellSpec]) -> List[_GroupRow]:
    """Run one warm-sharing group (module-level so workers can pickle it).

    Every spec in ``specs`` shares a :func:`warm_fingerprint`, so the
    group warms **once** (charged to the first cell's ``warm`` column) and
    every cell measures from a restored copy of that state — bit-identical
    to warming each cell from scratch.  A warm-up failure fails the whole
    group; a measurement failure fails only its own cell.
    """
    first = specs[0]
    try:
        start = time.perf_counter()
        warm_state = prepare_warm_state(
            first.build_config(),
            first.benchmark,
            warmup=first.warmup,
            seed=first.seed,
            kernels=first.kernels,
        )
        warm_s = time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - group isolation
        message = f"{type(error).__name__}: {error}"
        return [(spec, None, 0.0, 0.0, 0.0, None, message) for spec in specs]
    rows: List[_GroupRow] = []
    for index, spec in enumerate(specs):
        cell_warm = warm_s if index == 0 else 0.0
        try:
            backend = resolved_backend(spec)
            start = time.perf_counter()
            result = run_from_warm_state(
                spec.build_config(),
                spec.benchmark,
                warm_state,
                instructions=spec.instructions,
                kernels=spec.kernels,
            )
            measure_s = time.perf_counter() - start
        except Exception as error:  # noqa: BLE001 - cell isolation
            rows.append((spec, None, 0.0, 0.0, 0.0, None,
                         f"{type(error).__name__}: {error}"))
        else:
            rows.append((spec, result, cell_warm + measure_s, cell_warm,
                         measure_s, backend, None))
    return rows


@dataclass(frozen=True)
class CellOutcome:
    """How one cell of a sweep was satisfied."""

    spec: CellSpec
    result: Optional[SimResult]
    elapsed_s: float
    #: ``"run"``, ``"cached"`` or ``"failed"``.
    source: str
    error: Optional[str] = None
    #: Warm-up seconds charged to this cell (the cell that actually warmed
    #: its group carries the whole group's warm-up; reusers carry 0).
    warm_s: float = 0.0
    #: Seconds spent simulating the measured suffix.
    measure_s: float = 0.0
    #: Concrete kernel backend the measured suffix ran on (``numpy``/
    #: ``fallback``/``packed``/``object``; ``None`` for cached or failed
    #: cells).  Metadata only — backends are bit-identical.
    backend: Optional[str] = None
    #: Store tier that satisfied a ``cached`` cell (``"local"`` for the
    #: L1 directory, ``"shared"`` for an L2 hit hydrated into L1);
    #: ``None`` for run/failed cells.
    tier: Optional[str] = None
    #: Remote worker that computed a distributed cell (``None`` for
    #: cells run in this process or served from the store).
    worker: Optional[str] = None


@dataclass
class SweepReport:
    """Everything one sweep produced, plus its cost accounting."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    jobs: int = 1
    elapsed_s: float = 0.0
    #: Warm-sharing groups actually dispatched (0 when nothing ran or
    #: sharing was disabled).
    warm_groups: int = 0
    #: Dynamic group splits the work-stealing queue performed to keep
    #: idle workers busy (each costs one redundant warm-up).
    steals: int = 0
    #: Whether a result store was consulted (False for ``cache=None``).
    store_used: bool = False
    #: Store lookups that missed every tier (the cells that had to run).
    store_misses: int = 0
    #: Expired-lease requeues a distributed sweep's coordinator performed
    #: (each one is a dead or wedged worker's group handed to a live one).
    requeues: int = 0
    #: Per-remote-worker accounting of a distributed sweep:
    #: ``name -> {"cells", "claims", "requeues", "failures"}``.
    workers: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def results(self) -> Dict[CellSpec, SimResult]:
        """Successful results keyed by normalized :class:`CellSpec`."""
        return {
            outcome.spec: outcome.result
            for outcome in self.outcomes
            if outcome.result is not None
        }

    def _by_source(self, source: str) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.source == source]

    @property
    def ran(self) -> List[CellOutcome]:
        return self._by_source("run")

    @property
    def cached(self) -> List[CellOutcome]:
        return self._by_source("cached")

    @property
    def failed(self) -> List[CellOutcome]:
        return self._by_source("failed")

    def cached_by_tier(self) -> Dict[str, int]:
        """Cached-cell counts per store tier (``local``/``shared``)."""
        counts: Dict[str, int] = {}
        for outcome in self.cached:
            tier = outcome.tier or "local"
            counts[tier] = counts.get(tier, 0) + 1
        return counts

    def summary(self) -> str:
        """Multi-line sweep accounting for the end of a CLI run."""
        ran, cached, failed = self.ran, self.cached, self.failed
        lines = [
            f"sweep: {len(self.outcomes)} cells — {len(ran)} run, "
            f"{len(cached)} cached, {len(failed)} failed "
            f"in {self.elapsed_s:.1f}s wall ({self.jobs} jobs)"
        ]
        if self.store_used:
            tiers = self.cached_by_tier()
            lines.append(
                f"  store: {tiers.get('local', 0)} local (L1) hits, "
                f"{tiers.get('shared', 0)} shared (L2) hits, "
                f"{self.store_misses} misses"
            )
        if ran:
            cell_time = sum(o.elapsed_s for o in ran)
            lines.append(
                f"  simulated {cell_time:.1f}s of cell work "
                f"({cell_time / len(ran):.2f}s/cell avg, "
                f"{max(o.elapsed_s for o in ran):.2f}s max)"
            )
            backends = sorted({o.backend for o in ran if o.backend})
            if backends:
                lines.append(f"  kernels backend: {', '.join(backends)}")
            warm_time = sum(o.warm_s for o in ran)
            measure_time = sum(o.measure_s for o in ran)
            if warm_time or measure_time:
                split = (
                    f"  warm-up {warm_time:.1f}s / measure {measure_time:.1f}s"
                )
                if self.warm_groups:
                    split += (
                        f" ({len(ran)} cells warmed via "
                        f"{self.warm_groups} shared group"
                        f"{'s' if self.warm_groups != 1 else ''})"
                    )
                lines.append(split)
            if self.steals:
                lines.append(
                    f"  work stealing: {self.steals} idle split"
                    f"{'s' if self.steals != 1 else ''} "
                    f"(extra warm-ups traded for parallelism)"
                )
        if self.requeues:
            lines.append(
                f"  lease requeues: {self.requeues} expired lease"
                f"{'s' if self.requeues != 1 else ''} handed to live workers"
            )
        for name in sorted(self.workers):
            stats = self.workers[name]
            lines.append(
                f"  worker {name}: {stats.get('cells', 0)} cells over "
                f"{stats.get('claims', 0)} claims"
                + (f", {stats['requeues']} lease(s) lost"
                   if stats.get("requeues") else "")
                + (f", {stats['failures']} failure(s)"
                   if stats.get("failures") else "")
            )
        if failed:
            for outcome in failed:
                lines.append(f"  FAILED {outcome.spec.label()}: {outcome.error}")
        return "\n".join(lines)


ProgressFn = Callable[[CellOutcome], None]


def run_cells(
    cells: Iterable[CellSpec],
    jobs: int = 1,
    cache: Optional[ResultStore] = None,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
    share_warm: bool = True,
) -> SweepReport:
    """Run a sweep; see module docstring for the exact flow.

    ``cache`` is any :class:`~repro.sim.sweep.store.ResultStore` — the
    plain local :class:`DiskCellCache`, a shared
    :class:`~repro.sim.sweep.store.DirectoryStore`/``HttpStore``, or a
    :class:`~repro.sim.sweep.store.TieredStore` combining both.
    ``cache=None`` disables persistence entirely; ``fresh=True`` keeps
    the store but ignores existing entries (recomputing and overwriting
    them).  Duplicate cells (figures share rows) are computed once.

    ``jobs=0`` means one worker per CPU (``os.cpu_count()``).

    ``share_warm`` (default on) schedules the cache-miss cells in groups
    keyed by :func:`warm_fingerprint` through the work-stealing queue:
    each group warms once and every member cell measures from a restored
    snapshot of that state.  Results are bit-identical with sharing on
    or off, for any store tiering, and for any ``jobs`` — only the
    wall-clock changes.
    """
    started = time.perf_counter()
    jobs = resolve_jobs(jobs)
    unique = dedupe_cells(cells)

    fingerprints = {spec: cell_fingerprint(spec) for spec in unique}
    outcomes: Dict[CellSpec, CellOutcome] = {}
    pending: List[CellSpec] = []
    store_misses = 0

    for spec in unique:
        fetched = None
        if cache is not None and not fresh:
            fetched = cache.fetch(fingerprints[spec])
            if fetched is None:
                store_misses += 1
        if fetched is not None:
            outcome = CellOutcome(spec, fetched.result, 0.0, "cached",
                                  tier=fetched.tier)
            outcomes[spec] = outcome
            if progress is not None:
                progress(outcome)
        else:
            pending.append(spec)

    def record(spec: CellSpec, result: Optional[SimResult], elapsed: float,
               error: Optional[str] = None, warm_s: float = 0.0,
               measure_s: float = 0.0,
               backend: Optional[str] = None) -> None:
        source = "failed" if result is None else "run"
        outcome = CellOutcome(spec, result, elapsed, source, error,
                              warm_s=warm_s, measure_s=measure_s,
                              backend=backend)
        outcomes[spec] = outcome
        if result is not None and cache is not None:
            cache.put(fingerprints[spec], spec, result, elapsed,
                      backend=backend)
        if progress is not None:
            progress(outcome)

    def record_rows(rows: Sequence[_GroupRow]) -> None:
        for spec, result, elapsed, warm_s, measure_s, backend, error in rows:
            record(spec, result, elapsed, error,
                   warm_s=warm_s, measure_s=measure_s, backend=backend)

    cost_model = CostModel.from_store(cache) if pending else CostModel()
    warm_groups = 0
    steals = 0
    if not share_warm:
        # costliest-first submission order: the executor's own task queue
        # already gives dynamic per-cell pulling, LPT ordering just keeps
        # the long poles from landing last
        ordered = sorted(pending,
                         key=lambda s: (-cost_model.cell_cost(s), s.label()))
        if jobs <= 1 or len(ordered) <= 1:
            for spec in ordered:
                try:
                    result, elapsed, backend = _timed_execute(spec)
                except Exception as error:  # noqa: BLE001 - cell isolation
                    record(spec, None, 0.0, f"{type(error).__name__}: {error}")
                else:
                    record(spec, result, elapsed, backend=backend)
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(_timed_execute, spec): spec
                           for spec in ordered}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in sorted(done, key=lambda f: str(futures[f])):
                        spec = futures[future]
                        try:
                            result, elapsed, backend = future.result()
                        except Exception as error:  # noqa: BLE001
                            record(spec, None, 0.0,
                                   f"{type(error).__name__}: {error}")
                        else:
                            record(spec, result, elapsed, backend=backend)
    elif pending:
        queue = WorkQueue(warm_groups_of(pending), cost_model)
        if jobs <= 1:
            while True:
                group = queue.take(1)
                if group is None:
                    break
                record_rows(execute_group(group))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                in_flight: Dict = {}
                while True:
                    # idle workers pull; the queue splits the costliest
                    # group when fewer groups remain than idle workers
                    while len(in_flight) < jobs:
                        group = queue.take(jobs - len(in_flight))
                        if group is None:
                            break
                        in_flight[pool.submit(execute_group, group)] = group
                    if not in_flight:
                        break
                    done, _ = wait(set(in_flight),
                                   return_when=FIRST_COMPLETED)
                    for future in sorted(done,
                                         key=lambda f: str(in_flight[f])):
                        group = in_flight.pop(future)
                        try:
                            rows = future.result()
                        except Exception as error:  # noqa: BLE001
                            message = f"{type(error).__name__}: {error}"
                            for spec in group:
                                record(spec, None, 0.0, message)
                        else:
                            record_rows(rows)
        warm_groups = queue.dispatched
        steals = queue.splits

    ordered_outcomes = [outcomes[spec] for spec in unique]
    return SweepReport(
        outcomes=ordered_outcomes,
        jobs=jobs,
        elapsed_s=time.perf_counter() - started,
        warm_groups=warm_groups,
        steals=steals,
        store_used=cache is not None,
        store_misses=store_misses,
    )


def results_grid(
    report: SweepReport,
    variant_params: Sequence[str] = (),
) -> Dict[Tuple, SimResult]:
    """Re-key a report as ``(benchmark, scheme, variant...) -> SimResult``.

    ``variant_params`` names the :class:`CellSpec` fields that distinguish
    machine variants in this sweep (e.g. ``("l2_size", "l2_block")`` for
    Figure 3); the returned keys carry those values in order.
    """
    grid: Dict[Tuple, SimResult] = {}
    for spec, result in report.results.items():
        variant = tuple(getattr(spec, param) for param in variant_params)
        grid[(spec.benchmark, spec.scheme.value) + variant] = result
    return grid
