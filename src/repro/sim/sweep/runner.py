"""Parallel sweep execution: fan cells out across worker processes.

Every cell is fully self-contained (config + benchmark + seed +
instruction counts), every simulation seeds its own RNGs, and results are
keyed by cell rather than by completion order — so a sweep is
*deterministic*: ``jobs=1`` and ``jobs=N`` produce bit-identical
:class:`SimResult` values, and a cached re-run returns exactly what the
cold run computed.

Flow per sweep: normalize + dedupe the requested cells, satisfy what the
:class:`~repro.sim.sweep.diskcache.DiskCellCache` already holds, fan the
misses out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs=1`` stays in-process), write fresh results back, and return a
:class:`SweepReport` with per-cell wall-clock timings and a run/cached/
failed summary.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..results import SimResult
from ..system import run_benchmark
from .diskcache import DiskCellCache
from .fingerprint import cell_fingerprint
from .spec import CellSpec


def execute_cell(spec: CellSpec) -> SimResult:
    """Run one cell from scratch (module-level so workers can pickle it)."""
    return run_benchmark(
        spec.build_config(),
        spec.benchmark,
        instructions=spec.instructions,
        warmup=spec.warmup,
        seed=spec.seed,
    )


def _timed_execute(spec: CellSpec) -> Tuple[SimResult, float]:
    start = time.perf_counter()
    result = execute_cell(spec)
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class CellOutcome:
    """How one cell of a sweep was satisfied."""

    spec: CellSpec
    result: Optional[SimResult]
    elapsed_s: float
    #: ``"run"``, ``"cached"`` or ``"failed"``.
    source: str
    error: Optional[str] = None


@dataclass
class SweepReport:
    """Everything one sweep produced, plus its cost accounting."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    jobs: int = 1
    elapsed_s: float = 0.0

    @property
    def results(self) -> Dict[CellSpec, SimResult]:
        """Successful results keyed by normalized :class:`CellSpec`."""
        return {
            outcome.spec: outcome.result
            for outcome in self.outcomes
            if outcome.result is not None
        }

    def _by_source(self, source: str) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.source == source]

    @property
    def ran(self) -> List[CellOutcome]:
        return self._by_source("run")

    @property
    def cached(self) -> List[CellOutcome]:
        return self._by_source("cached")

    @property
    def failed(self) -> List[CellOutcome]:
        return self._by_source("failed")

    def summary(self) -> str:
        """Multi-line sweep accounting for the end of a CLI run."""
        ran, cached, failed = self.ran, self.cached, self.failed
        lines = [
            f"sweep: {len(self.outcomes)} cells — {len(ran)} run, "
            f"{len(cached)} cached, {len(failed)} failed "
            f"in {self.elapsed_s:.1f}s wall ({self.jobs} jobs)"
        ]
        if ran:
            cell_time = sum(o.elapsed_s for o in ran)
            lines.append(
                f"  simulated {cell_time:.1f}s of cell work "
                f"({cell_time / len(ran):.2f}s/cell avg, "
                f"{max(o.elapsed_s for o in ran):.2f}s max)"
            )
        if failed:
            for outcome in failed:
                lines.append(f"  FAILED {outcome.spec.label()}: {outcome.error}")
        return "\n".join(lines)


ProgressFn = Callable[[CellOutcome], None]


def run_cells(
    cells: Iterable[CellSpec],
    jobs: int = 1,
    cache: Optional[DiskCellCache] = None,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepReport:
    """Run a sweep; see module docstring for the exact flow.

    ``cache=None`` disables the disk cache entirely; ``fresh=True`` keeps
    the cache but ignores existing entries (recomputing and overwriting
    them).  Duplicate cells (figures share rows) are computed once.
    """
    started = time.perf_counter()
    unique: List[CellSpec] = []
    seen = set()
    for cell in cells:
        spec = cell.normalized()
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    fingerprints = {spec: cell_fingerprint(spec) for spec in unique}
    outcomes: Dict[CellSpec, CellOutcome] = {}
    pending: List[CellSpec] = []

    for spec in unique:
        cached = None
        if cache is not None and not fresh:
            cached = cache.get(fingerprints[spec])
        if cached is not None:
            outcome = CellOutcome(spec, cached, 0.0, "cached")
            outcomes[spec] = outcome
            if progress is not None:
                progress(outcome)
        else:
            pending.append(spec)

    def record(spec: CellSpec, result: Optional[SimResult], elapsed: float,
               error: Optional[str] = None) -> None:
        source = "failed" if result is None else "run"
        outcome = CellOutcome(spec, result, elapsed, source, error)
        outcomes[spec] = outcome
        if result is not None and cache is not None:
            cache.put(fingerprints[spec], spec, result, elapsed)
        if progress is not None:
            progress(outcome)

    if jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            try:
                result, elapsed = _timed_execute(spec)
            except Exception as error:  # noqa: BLE001 - cell isolation
                record(spec, None, 0.0, f"{type(error).__name__}: {error}")
            else:
                record(spec, result, elapsed)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_timed_execute, spec): spec
                       for spec in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    try:
                        result, elapsed = future.result()
                    except Exception as error:  # noqa: BLE001 - cell isolation
                        record(spec, None, 0.0,
                               f"{type(error).__name__}: {error}")
                    else:
                        record(spec, result, elapsed)

    ordered = [outcomes[spec] for spec in unique]
    return SweepReport(
        outcomes=ordered,
        jobs=max(1, jobs),
        elapsed_s=time.perf_counter() - started,
    )


def results_grid(
    report: SweepReport,
    variant_params: Sequence[str] = (),
) -> Dict[Tuple, SimResult]:
    """Re-key a report as ``(benchmark, scheme, variant...) -> SimResult``.

    ``variant_params`` names the :class:`CellSpec` fields that distinguish
    machine variants in this sweep (e.g. ``("l2_size", "l2_block")`` for
    Figure 3); the returned keys carry those values in order.
    """
    grid: Dict[Tuple, SimResult] = {}
    for spec, result in report.results.items():
        variant = tuple(getattr(spec, param) for param in variant_params)
        grid[(spec.benchmark, spec.scheme.value) + variant] = result
    return grid
