"""Tiered, shareable content-addressed result stores for the sweep engine.

Every finished cell is one JSON *entry* keyed by its SHA-256
:func:`~repro.sim.sweep.fingerprint.cell_fingerprint` — the fingerprint
covers everything that determines the result, so an entry computed on
any host is valid on every other host by construction.  This module
generalizes the original single-directory ``DiskCellCache`` into a
small store hierarchy:

* :class:`DirectoryStore` — entries as ``<fingerprint>.json`` files
  under one root (a local ``.repro_cache/`` or any shared filesystem
  path, e.g. NFS);
* :class:`HttpStore` — the same entries behind a coordinator speaking
  plain HTTP (``GET``/``PUT /cells/<fingerprint>``), served by
  ``python -m repro store-serve`` (:func:`make_store_server`) — both
  ends stdlib-only;
* :class:`TieredStore` — a read-through / write-back pair: the local
  directory is L1, a shared directory or HTTP store is L2.  An L2 hit
  is *hydrated* into L1 so the next sweep on this host never leaves
  the local disk; a fresh result is written back to both tiers so
  every pooled host benefits.

Robustness contract (inherited from the original cache): a corrupted,
truncated, schema-mismatched or unreachable entry is a logged *miss*,
never an error — the sweep recomputes and overwrites it.  Writes are
atomic (unique temporary file + ``os.replace``); temporary names embed
the hostname, PID and a monotonic nonce so concurrent writers on a
shared filesystem can never clobber each other's half-written files.

Each directory store also keeps a ``_costs.json`` sidecar aggregating
the observed ``elapsed_s`` per ``benchmark/scheme`` — the cost history
the work-stealing scheduler (:mod:`repro.sim.sweep.schedule`) uses to
order warm groups.  The sidecar is an *advisory hint*: it never affects
results, only dispatch order, and a lost update merely degrades the
schedule estimate.
"""

from __future__ import annotations

import gzip
import http.client
import itertools
import json
import logging
import os
import re
import socket
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple, Union
from urllib.parse import urlsplit

from ...checks.tsan import guarded_dict, new_lock, new_rlock
from ..results import SimResult
from .fingerprint import CACHE_SCHEMA_VERSION, config_from_dict, config_to_dict
from .spec import CellSpec

logger = logging.getLogger(__name__)

#: default local (L1) store root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: environment variable naming the shared (L2) store for ``repro sweep``.
STORE_ENV = "REPRO_STORE"

#: a store entry's file name stem: the 64-hex-digit cell fingerprint.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")

#: errors the robustness contract converts into logged misses.
_STORE_ERRORS = (OSError, ValueError, KeyError, TypeError)

#: cost-history sidecar file name (never a valid fingerprint name).
_COSTS_NAME = "_costs.json"

#: bodies at or above this size are gzip-compressed on the wire (both
#: directions).  Cell entries are a few tens of KB of highly repetitive
#: JSON, so this saves ~10x on the bulk transfers while leaving small
#: control messages untouched.
GZIP_MIN_BYTES = 4096

#: connection-level failures a keep-alive client heals by reconnecting
#: once: the server closed the idle socket (RemoteDisconnected /
#: BadStatusLine) or the kernel reset it under us.
_RECONNECT_ERRORS = (http.client.RemoteDisconnected,
                     http.client.BadStatusLine,
                     ConnectionError)


def _speaks_gzip(server_header: str) -> bool:
    """Whether a ``Server`` header names a gzip-capable store server.

    ``repro-store/1`` predates compression; ``/2`` and later decode
    ``Content-Encoding: gzip`` bodies and compress large responses.
    """
    match = re.search(r"repro-store/(\d+)", server_header)
    return match is not None and int(match.group(1)) >= 2


def result_to_dict(result: SimResult) -> dict:
    """Serialize a :class:`SimResult` (config tree included) to plain data."""
    return {
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "config": config_to_dict(result.config),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "stats": dict(result.stats),
    }


def result_from_dict(data: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output."""
    return SimResult(
        benchmark=data["benchmark"],
        scheme=data["scheme"],
        config=config_from_dict(data["config"]),
        instructions=data["instructions"],
        cycles=data["cycles"],
        stats=dict(data["stats"]),
    )


def entry_for(fingerprint: str, spec: CellSpec, result: SimResult,
              elapsed_s: float, backend: Optional[str] = None) -> dict:
    """The canonical store entry for one finished cell."""
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "cell": spec.label(),
        "elapsed_s": round(elapsed_s, 4),
        "backend": backend,
        "result": result_to_dict(result),
    }


def validate_entry(fingerprint: str, data: dict) -> SimResult:
    """Check an entry's self-description and rebuild its result.

    Raises ``ValueError``/``KeyError``/``TypeError`` on any mismatch —
    callers go through :meth:`ResultStore.read_valid`, which downgrades
    every such failure to a miss.
    """
    if not isinstance(data, dict):
        raise ValueError(f"entry is {type(data).__name__}, not an object")
    if data.get("schema") != CACHE_SCHEMA_VERSION:
        raise ValueError(f"schema {data.get('schema')!r} != "
                         f"{CACHE_SCHEMA_VERSION}")
    if data.get("fingerprint") != fingerprint:
        raise ValueError("fingerprint mismatch inside entry")
    return result_from_dict(data["result"])


def cost_key(entry: dict) -> Optional[str]:
    """The ``benchmark/scheme`` cost-history bucket of an entry."""
    label = entry.get("cell")
    if not isinstance(label, str):
        return None
    parts = label.split("/")
    if len(parts) < 2:
        return None
    return f"{parts[0]}/{parts[1]}"


class Fetched(NamedTuple):
    """One successful store lookup: the result plus the tier that had it."""

    result: SimResult
    tier: str


@dataclass
class PruneReport:
    """What ``prune`` removed (and what it left alone)."""

    removed: int = 0
    reclaimed_bytes: int = 0
    kept: int = 0

    def merge(self, other: "PruneReport") -> "PruneReport":
        return PruneReport(self.removed + other.removed,
                           self.reclaimed_bytes + other.reclaimed_bytes,
                           self.kept + other.kept)

    def summary(self) -> str:
        return (f"pruned {self.removed} file(s), reclaimed "
                f"{self.reclaimed_bytes} bytes ({self.kept} entries kept)")


class ResultStore:
    """Interface + shared policy for every store tier.

    Subclasses implement the transport pair :meth:`read_entry` /
    :meth:`write_entry`; everything above that — validation, hit/miss
    accounting, the miss-on-corruption contract, cost recording — lives
    here so every tier behaves identically.
    """

    #: tier label used in reports (``local`` for L1, ``shared`` for L2).
    label = "store"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        # stores are shared across worker threads (the coordinator's
        # handler pool, TieredStore under a parallel sweep), and `+= 1`
        # is a read-modify-write — so the counters get their own lock.
        self._stats_lock = new_lock(f"{type(self).__name__}._stats_lock")

    def _count_hit(self) -> None:
        with self._stats_lock:
            self.hits += 1

    def _count_miss(self) -> None:
        with self._stats_lock:
            self.misses += 1

    # -- transport (subclass responsibility) ------------------------------

    def read_entry(self, fingerprint: str) -> Optional[dict]:
        """The raw entry dict, ``None`` when absent; may raise on trouble."""
        raise NotImplementedError

    def write_entry(self, fingerprint: str, entry: dict) -> None:
        """Store ``entry`` durably and atomically; may raise on trouble."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location (path or URL) for log/CLI lines."""
        return type(self).__name__

    # -- shared policy -----------------------------------------------------

    def read_valid(self, fingerprint: str) -> Optional[Tuple[dict, SimResult]]:
        """The validated ``(entry, result)`` pair, counting hits/misses.

        Any transport or validation failure is a logged miss, never an
        error — the caller recomputes the cell.
        """
        data = None
        try:
            data = self.read_entry(fingerprint)
        except _STORE_ERRORS as err:
            logger.warning("ignoring unreadable cache entry %s in %s: %s",
                           fingerprint[:12], self.describe(), err)
        if data is not None:
            try:
                return data, validate_entry(fingerprint, data)
            except _STORE_ERRORS as err:
                logger.warning("ignoring unreadable cache entry %s in %s: %s",
                               fingerprint[:12], self.describe(), err)
        self._count_miss()
        return None

    def fetch(self, fingerprint: str) -> Optional[Fetched]:
        """The cached result tagged with the tier that served it."""
        valid = self.read_valid(fingerprint)
        if valid is None:
            return None
        self._count_hit()
        return Fetched(valid[1], self.label)

    def get(self, fingerprint: str) -> Optional[SimResult]:
        """The cached result for ``fingerprint``, or ``None`` on any miss."""
        fetched = self.fetch(fingerprint)
        return None if fetched is None else fetched.result

    def put(self, fingerprint: str, spec: CellSpec, result: SimResult,
            elapsed_s: float, backend: Optional[str] = None) -> bool:
        """Store ``result``; failures are logged, not raised.

        ``backend`` records which kernel backend produced the entry —
        pure provenance metadata: it never enters the fingerprint, and
        reads ignore it, because backends are bit-identical.  Returns
        whether the entry was durably written (distributed workers use
        this to tell the coordinator when a result did *not* land).
        """
        return self.submit_entry(fingerprint,
                                 entry_for(fingerprint, spec, result,
                                           elapsed_s, backend))

    def submit_entry(self, fingerprint: str, entry: dict) -> bool:
        """Write a fresh entry + record its cost; failures are logged.

        Returns ``True`` when the write succeeded.
        """
        try:
            self.write_entry(fingerprint, entry)
            self.record_cost(entry)
            return True
        except _STORE_ERRORS as err:
            logger.warning("could not write cache entry %s to %s: %s",
                           fingerprint[:12], self.describe(), err)
            return False

    def hydrate(self, fingerprint: str, entry: dict) -> None:
        """Copy an already-validated entry into this tier (no cost record)."""
        try:
            self.write_entry(fingerprint, entry)
        except _STORE_ERRORS as err:
            logger.warning("could not hydrate cache entry %s into %s: %s",
                           fingerprint[:12], self.describe(), err)

    # -- optional services -------------------------------------------------

    def record_cost(self, entry: dict) -> None:
        """Fold one entry's ``elapsed_s`` into the cost history (if kept)."""

    def cost_history(self) -> Dict[str, dict]:
        """``benchmark/scheme -> {"total_s", "cells"}`` advisory history."""
        return {}

    def flush_costs(self) -> None:
        """Force any batched cost history to durable storage (if kept)."""

    def prune(self, remove_entries: bool = True) -> PruneReport:
        """Remove droppings (and bad entries); no-op for remote tiers."""
        return PruneReport()

    def counter_lines(self) -> List[str]:
        """One accounting line per tier, for the end of a CLI sweep."""
        with self._stats_lock:
            hits, misses = self.hits, self.misses
        return [f"{self.label}: {hits} hits, {misses} misses "
                f"({self.describe()})"]


def _safe_hostname() -> str:
    """The hostname with path-hostile characters squeezed out."""
    try:
        name = socket.gethostname()
    except OSError:  # pragma: no cover - no hostname configured
        name = "unknown-host"
    return re.sub(r"[^A-Za-z0-9._-]", "-", name) or "unknown-host"


#: per-process monotonic nonce for temporary file names.
_TMP_NONCE = itertools.count()
_HOSTNAME = _safe_hostname()


class DirectoryStore(ResultStore):
    """Entries as ``<fingerprint>.json`` files under one directory.

    Used both as the local L1 (``.repro_cache/``) and, pointed at a
    shared filesystem path, as a multi-host L2.  Writes are atomic and
    collision-free across hosts: the temporary name embeds hostname,
    PID and a per-process nonce, and a failed ``os.replace`` cleans the
    temporary file up instead of leaving a dropping behind.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 label: str = "local", cost_flush_every: int = 1):
        super().__init__()
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.label = label
        #: with the default of 1 every cost record is a read-merge-write
        #: of the sidecar (multi-process safe on a shared root); a store
        #: that *owns* its root — the serving coordinator — batches
        #: updates in memory and flushes every N records / on shutdown.
        self.cost_flush_every = max(1, cost_flush_every)
        self._costs_lock = threading.RLock()
        self._costs_cache: Optional[Dict[str, dict]] = None
        self._pending_costs = 0

    def describe(self) -> str:
        return str(self.root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def read_entry(self, fingerprint: str) -> Optional[dict]:
        try:
            with open(self.path_for(fingerprint), "r",
                      encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def write_entry(self, fingerprint: str, entry: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(fingerprint)
        self._atomic_write(path, json.dumps(entry, separators=(",", ":")))

    def _atomic_write(self, path: Path, text: str) -> None:
        """Unique tmp + ``os.replace``; the tmp never survives a failure."""
        tmp = path.with_name(
            f"{path.name}.tmp-{_HOSTNAME}-{os.getpid()}-{next(_TMP_NONCE)}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- cost history ------------------------------------------------------

    def _costs_path(self) -> Path:
        return self.root / _COSTS_NAME

    def record_cost(self, entry: dict) -> None:
        key = cost_key(entry)
        elapsed = entry.get("elapsed_s")
        if key is None or not isinstance(elapsed, (int, float)):
            return
        with self._costs_lock:
            if self.cost_flush_every == 1:
                # read-merge-write each time so concurrent processes on a
                # shared root fold their histories together
                costs = self._read_costs_file()
                self._bump(costs, key, float(elapsed))
                self._write_costs(costs)
                return
            if self._costs_cache is None:
                self._costs_cache = self._read_costs_file()
            self._bump(self._costs_cache, key, float(elapsed))
            self._pending_costs += 1
            if self._pending_costs >= self.cost_flush_every:
                self._write_costs(self._costs_cache)
                self._pending_costs = 0

    @staticmethod
    def _bump(costs: Dict[str, dict], key: str, elapsed: float) -> None:
        bucket = costs.setdefault(key, {"total_s": 0.0, "cells": 0})
        bucket["total_s"] = round(bucket["total_s"] + elapsed, 4)
        bucket["cells"] += 1

    def _write_costs(self, costs: Dict[str, dict]) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._atomic_write(self._costs_path(),
                               json.dumps(costs, sort_keys=True,
                                          separators=(",", ":")))
        except OSError as err:  # advisory only — never fail the sweep
            logger.debug("could not update cost history in %s: %s",
                         self.root, err)

    def flush_costs(self) -> None:
        with self._costs_lock:
            if self._costs_cache is not None and self._pending_costs:
                self._write_costs(self._costs_cache)
                self._pending_costs = 0

    def _read_costs_file(self) -> Dict[str, dict]:
        try:
            with open(self._costs_path(), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except _STORE_ERRORS:
            return {}
        if not isinstance(data, dict):
            return {}
        history: Dict[str, dict] = {}
        for key, bucket in data.items():
            if (isinstance(bucket, dict)
                    and isinstance(bucket.get("total_s"), (int, float))
                    and isinstance(bucket.get("cells"), int)
                    and bucket["cells"] > 0):
                history[key] = {"total_s": float(bucket["total_s"]),
                                "cells": bucket["cells"]}
        return history

    def cost_history(self) -> Dict[str, dict]:
        with self._costs_lock:
            if self._costs_cache is not None:
                # deep-enough copy: callers mutate buckets when merging
                return {key: dict(bucket)
                        for key, bucket in self._costs_cache.items()}
        return self._read_costs_file()

    # -- maintenance -------------------------------------------------------

    def _entry_paths(self) -> List[Path]:
        try:
            paths = list(self.root.glob("*.json"))
        except OSError:  # pragma: no cover - disk trouble
            return []
        return [p for p in paths if _FINGERPRINT_RE.match(p.stem)]

    def __len__(self) -> int:
        return len(self._entry_paths())

    def prune(self, remove_entries: bool = True) -> PruneReport:
        """Delete tmp droppings and (optionally) unreadable entries.

        Droppings are ``*.json.tmp*`` files left by a killed writer;
        with ``remove_entries`` every entry that would read as a miss
        (corrupt, truncated, schema-mismatched, wrong fingerprint) is
        removed too.  Returns what was reclaimed.  Not safe to run
        concurrently with an *active* writer on the same root — a live
        temporary file is indistinguishable from a stale one.
        """
        report = PruneReport()
        try:
            droppings = sorted(self.root.glob("*.json.tmp*"))
        except OSError:  # pragma: no cover - disk trouble
            droppings = []
        for path in droppings:
            report.removed += 1
            report.reclaimed_bytes += self._unlink_size(path)
        for path in sorted(self._entry_paths()):
            bad = False
            if remove_entries:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        validate_entry(path.stem, json.load(handle))
                except _STORE_ERRORS:
                    bad = True
            if bad:
                report.removed += 1
                report.reclaimed_bytes += self._unlink_size(path)
            else:
                report.kept += 1
        return report

    @staticmethod
    def _unlink_size(path: Path) -> int:
        try:
            size = path.stat().st_size
            path.unlink()
            return size
        except OSError:  # pragma: no cover - raced or unreadable
            return 0


class HttpResponse(NamedTuple):
    """One decoded HTTP exchange: status + already-gunzipped body."""

    status: int
    body: bytes
    #: the peer's ``Server`` header (gzip-capability negotiation).
    server: str = ""


class HttpChannel:
    """One persistent keep-alive connection per thread to one base URL.

    The original client opened (and tore down) a fresh ``urllib`` socket
    per request — three syscall-heavy round trips of TCP setup for every
    few-KB entry.  This channel keeps one ``http.client.HTTPConnection``
    alive per *thread* (connections are not thread-safe; thread-local
    storage makes sharing one channel across a pool of workers safe) and
    transparently reconnects once when the server closed the idle socket
    (``RemoteDisconnected`` et al.).  A request that cannot be retried
    safely after partial transmission is simply re-sent: every verb the
    store and the dispatch protocol use is either idempotent (``GET``,
    ``PUT``, heartbeats) or re-sendable by design (a replayed claim can
    only orphan a lease, which the lease TTL reclaims).

    Bodies at or above :data:`GZIP_MIN_BYTES` are gzip-compressed with
    ``Content-Encoding: gzip``; responses are requested (and decoded)
    the same way.  Old servers that predate compression reject a gzip
    body as unparseable (HTTP 400) — :meth:`request` then retries once
    uncompressed and disables compression for the channel's lifetime, so
    new clients interoperate with old coordinators at worst one wasted
    round trip per process.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(f"unsupported store URL scheme: {base_url!r}")
        self._https = parts.scheme == "https"
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port
        self._prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self._local = threading.local()
        #: flipped off permanently after a server rejects a gzip body.
        self.send_gzip = True

    # -- connection lifecycle ---------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            factory = (http.client.HTTPSConnection if self._https
                       else http.client.HTTPConnection)
            conn = factory(self._host, self._port, timeout=self.timeout)
            try:
                # connect eagerly to disable Nagle: header and body go out
                # in separate small writes, and on a keep-alive connection
                # Nagle + delayed ACK turns every request into a ~40 ms
                # stall — slower than reconnecting per request!
                conn.connect()
                if conn.sock is not None:
                    conn.sock.setsockopt(socket.IPPROTO_TCP,
                                         socket.TCP_NODELAY, 1)
            except OSError:
                pass  # surface the failure on the first request instead
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's connection (the next request reconnects)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:  # pragma: no cover - already dead
                pass

    # -- requests ----------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[bytes] = None,
                content_type: str = "application/json") -> HttpResponse:
        """One round trip; raises ``OSError`` on any transport failure."""
        compressed = (self.send_gzip and body is not None
                      and len(body) >= GZIP_MIN_BYTES)
        response = self._round_trip(method, path, body, content_type,
                                    compressed)
        if (compressed and response.status == 400
                and not _speaks_gzip(response.server)):
            # an old (pre-gzip) server parsed raw gzip bytes as JSON and
            # rejected the request — fall back to identity for good.  A
            # gzip-capable server advertises itself in its Server header,
            # so its legitimate 400s (invalid entries) never trip this.
            # repro-check: disable=lock-unguarded-shared -- one-way False latch; a racing reader merely sends one more request compressed and retries it, and the flag never flips back
            self.send_gzip = False
            response = self._round_trip(method, path, body, content_type,
                                        False)
        return response

    def _round_trip(self, method: str, path: str, body: Optional[bytes],
                    content_type: str, compressed: bool) -> HttpResponse:
        payload = body
        headers = {"Accept-Encoding": "gzip"}
        if body is not None:
            headers["Content-Type"] = content_type
            if compressed:
                payload = gzip.compress(body)
                headers["Content-Encoding"] = "gzip"
        last_error: Optional[Exception] = None
        for attempt in range(2):
            conn = self._connection()
            try:
                conn.request(method, self._prefix + path, body=payload,
                             headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.getheader("Content-Encoding") == "gzip":
                    data = gzip.decompress(data)
                return HttpResponse(response.status, data,
                                    response.getheader("Server", "") or "")
            except _RECONNECT_ERRORS as err:
                # stale keep-alive socket (or a flaky peer): reconnect
                # once on a fresh connection before giving up
                self.close()
                last_error = err
            except (http.client.HTTPException, OSError) as err:
                self.close()
                raise err if isinstance(err, OSError) \
                    else OSError(f"{type(err).__name__}: {err}")
        raise last_error if isinstance(last_error, OSError) \
            else OSError(f"{type(last_error).__name__}: {last_error}")


class HttpStore(ResultStore):
    """Client half of the stdlib HTTP store pair (L2 over the network).

    Talks to the ``python -m repro store-serve`` coordinator:
    ``GET /cells/<fingerprint>`` (200 entry JSON / 404 miss),
    ``PUT /cells/<fingerprint>`` (entry JSON body), ``GET /costs``
    (advisory cost history) — all over one per-thread keep-alive
    :class:`HttpChannel`, with large entries gzip-compressed in both
    directions.  Every network failure follows the store contract:
    logged miss on read, logged drop on write.
    """

    label = "shared"

    def __init__(self, base_url: str, timeout: float = 10.0):
        super().__init__()
        self.channel = HttpChannel(base_url, timeout=timeout)
        self.base_url = self.channel.base_url
        self.timeout = timeout

    def describe(self) -> str:
        return self.base_url

    def close(self) -> None:
        self.channel.close()

    def read_entry(self, fingerprint: str) -> Optional[dict]:
        response = self.channel.request("GET", f"/cells/{fingerprint}")
        if response.status == 404:
            return None
        if response.status != 200:
            raise OSError(f"HTTP {response.status} reading {fingerprint[:12]}")
        return json.loads(response.body.decode("utf-8"))

    def write_entry(self, fingerprint: str, entry: dict) -> None:
        body = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        response = self.channel.request("PUT", f"/cells/{fingerprint}", body)
        if response.status not in (200, 201, 204):
            detail = response.body.decode("utf-8", "replace")[:200]
            raise OSError(f"HTTP {response.status} writing "
                          f"{fingerprint[:12]}: {detail}")

    def cost_history(self) -> Dict[str, dict]:
        try:
            response = self.channel.request("GET", "/costs")
            if response.status != 200:
                return {}
            data = json.loads(response.body.decode("utf-8"))
        except _STORE_ERRORS:
            return {}
        return data if isinstance(data, dict) else {}


class TieredStore(ResultStore):
    """Read-through / write-back pair: local L1 + shared L2.

    * ``fetch``: L1 first; an L2 hit is hydrated into L1 (so repeat
      sweeps on this host stay local) and reported with tier
      ``shared``.
    * ``put``: written to both tiers, so every host pooling the L2
      sees fresh results.
    * cost history: merged, shared first, so a brand-new host inherits
      the pool's timings for scheduling.
    """

    label = "tiered"

    def __init__(self, local: DirectoryStore, shared: ResultStore):
        super().__init__()
        self.local = local
        self.shared = shared

    def describe(self) -> str:
        return f"{self.local.describe()} + {self.shared.describe()}"

    def fetch(self, fingerprint: str) -> Optional[Fetched]:
        fetched = self.local.fetch(fingerprint)
        if fetched is not None:
            self._count_hit()
            return fetched
        valid = self.shared.read_valid(fingerprint)
        if valid is None:
            self._count_miss()
            return None
        self.shared._count_hit()
        entry, result = valid
        self.local.hydrate(fingerprint, entry)
        self._count_hit()
        return Fetched(result, self.shared.label)

    def get(self, fingerprint: str) -> Optional[SimResult]:
        fetched = self.fetch(fingerprint)
        return None if fetched is None else fetched.result

    def put(self, fingerprint: str, spec: CellSpec, result: SimResult,
            elapsed_s: float, backend: Optional[str] = None) -> bool:
        entry = entry_for(fingerprint, spec, result, elapsed_s, backend)
        self.local.submit_entry(fingerprint, entry)
        # the *shared* write is the one that makes a distributed result
        # visible to the coordinator — its success is what callers need
        return self.shared.submit_entry(fingerprint, entry)

    def flush_costs(self) -> None:
        self.local.flush_costs()
        self.shared.flush_costs()

    def cost_history(self) -> Dict[str, dict]:
        merged = dict(self.shared.cost_history())
        for key, bucket in self.local.cost_history().items():
            if key in merged:
                merged[key] = {
                    "total_s": merged[key]["total_s"] + bucket["total_s"],
                    "cells": merged[key]["cells"] + bucket["cells"],
                }
            else:
                merged[key] = bucket
        return merged

    def prune(self, remove_entries: bool = True) -> PruneReport:
        return self.local.prune(remove_entries).merge(
            self.shared.prune(remove_entries))

    def counter_lines(self) -> List[str]:
        return self.local.counter_lines() + self.shared.counter_lines()


def open_store(spec: str, label: str = "shared") -> ResultStore:
    """A store from a ``--store`` / ``REPRO_STORE`` spec.

    ``http(s)://...`` opens an :class:`HttpStore` client; anything else
    is a filesystem path (typically on a shared mount) opened as a
    :class:`DirectoryStore`.
    """
    if spec.startswith("http://") or spec.startswith("https://"):
        return HttpStore(spec)
    return DirectoryStore(spec, label=label)


def build_store(cache_dir: Union[str, Path, None] = None,
                store_spec: Optional[str] = None) -> ResultStore:
    """The sweep's store: local L1, tiered with a shared L2 when given."""
    local = DirectoryStore(cache_dir)
    if not store_spec:
        return local
    return TieredStore(local, open_store(store_spec))


# --------------------------------------------------------------------------
# the coordinator: ``python -m repro store-serve``
# --------------------------------------------------------------------------

class _StoreHandler(BaseHTTPRequestHandler):
    """Request handler bound to one server's :class:`DirectoryStore`.

    Version 2 of the protocol adds transparent gzip (large bodies in
    both directions, negotiated via the standard ``Content-Encoding`` /
    ``Accept-Encoding`` headers) and, when the server carries a
    :class:`~repro.sim.sweep.dispatch.LeaseBoard`, the work-lease
    endpoints under ``/work/`` that turn a store server into a sweep
    coordinator (``POST /work/seed|claim``, ``POST
    /work/<lease>/heartbeat|done``, ``GET /work/status``).
    """

    server_version = "repro-store/2"
    protocol_version = "HTTP/1.1"
    #: response headers and bodies are separate writes too — without this
    #: the *client* sees the same Nagle/delayed-ACK stall on reads.
    disable_nagle_algorithm = True
    #: upper bound on a request body (after decompression); a cell entry
    #: is a few tens of KB, a seed request a few hundred KB at most.
    max_body_bytes = 16 * 1024 * 1024

    def _store(self) -> DirectoryStore:
        return self.server.store  # type: ignore[attr-defined]

    def _board(self):
        return getattr(self.server, "board", None)

    def _accepts_gzip(self) -> bool:
        return "gzip" in self.headers.get("Accept-Encoding", "")

    def _send_json(self, code: int, payload: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        if self._accepts_gzip() and len(payload) >= GZIP_MIN_BYTES:
            payload = gzip.compress(payload)
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_object(self, code: int, payload: dict) -> None:
        self._send_json(code, json.dumps(payload, sort_keys=True,
                                         separators=(",", ":"))
                        .encode("utf-8"))

    def _send_empty(self, code: int, message: str = "") -> None:
        body = message.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[bytes]:
        """The request body, gunzipped if needed; ``None`` = error sent."""
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_empty(411, "length required")
            return None
        if not 0 < length <= self.max_body_bytes:
            self._send_empty(413, "body too large")
            return None
        body = self.rfile.read(length)
        if self.headers.get("Content-Encoding") == "gzip":
            try:
                body = gzip.decompress(body)
            except (OSError, EOFError):
                self._send_empty(400, "bad gzip body")
                return None
            if len(body) > self.max_body_bytes:
                self._send_empty(413, "body too large")
                return None
        return body

    def _fingerprint_of(self) -> Optional[str]:
        parts = self.path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "cells" \
                and _FINGERPRINT_RE.match(parts[1]):
            return parts[1]
        return None

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        store = self._store()
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        # repro-check: disable=wire-endpoint-unused -- health/identity endpoint for humans, probes and load balancers; no in-repo client calls it on purpose
        if path == "":
            board = self._board()
            status = {"store": "repro", "schema": CACHE_SCHEMA_VERSION,
                      "entries": len(store),
                      "work": board is not None}
            self._send_json(200, json.dumps(status).encode("utf-8"))
            return
        if path == "/costs":
            payload = json.dumps(store.cost_history(), sort_keys=True)
            self._send_json(200, payload.encode("utf-8"))
            return
        if path == "/work/status":
            board = self._board()
            if board is None:
                self._send_empty(404, "no work coordination on this server")
                return
            since = 0
            match = re.search(r"(?:^|&)since=(\d+)", query)
            if match:
                since = int(match.group(1))
            self._send_object(200, board.status(since=since))
            return
        fingerprint = self._fingerprint_of()
        if fingerprint is None:
            self._send_empty(404, "unknown path")
            return
        try:
            with open(store.path_for(fingerprint), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            self._send_empty(404, "no such cell")
            return
        except OSError:
            self._send_empty(500, "unreadable entry")
            return
        self._send_json(200, payload)

    def do_PUT(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        fingerprint = self._fingerprint_of()
        if fingerprint is None:
            self._send_empty(404, "unknown path")
            return
        body = self._read_body()
        if body is None:
            return
        store = self._store()
        try:
            entry = json.loads(body.decode("utf-8"))
            validate_entry(fingerprint, entry)
            store.write_entry(fingerprint, entry)
            store.record_cost(entry)
        except _STORE_ERRORS as err:
            self._send_empty(400, f"rejected entry: {err}")
            return
        self._send_empty(204)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        board = self._board()
        parts = self.path.strip("/").split("/")
        if board is None or not parts or parts[0] != "work":
            self._send_empty(404, "unknown path")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("request body is not an object")
        except ValueError as err:
            self._send_empty(400, f"bad request body: {err}")
            return
        try:
            if parts[1:] == ["seed"]:
                self._send_object(200, board.seed(
                    payload.get("groups", []),
                    ttl_s=payload.get("ttl_s"),
                    fresh=bool(payload.get("fresh", False)),
                ))
            elif parts[1:] == ["claim"]:
                self._send_object(200, board.claim(
                    str(payload.get("worker", "anonymous"))))
            elif len(parts) == 3 and parts[2] == "heartbeat":
                renewed = board.heartbeat(parts[1],
                                          str(payload.get("worker", "")))
                self._send_object(200 if renewed.get("ok") else 410, renewed)
            elif len(parts) == 3 and parts[2] == "done":
                retired = board.done(parts[1],
                                     str(payload.get("worker", "")),
                                     payload.get("cells", []))
                self._send_object(200, retired)
            else:
                self._send_empty(404, "unknown work endpoint")
        except (ValueError, KeyError, TypeError) as err:
            self._send_empty(400, f"rejected work request: "
                                  f"{type(err).__name__}: {err}")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("store-serve %s %s", self.address_string(),
                     format % args)


def make_store_server(root: Union[str, Path],
                      host: str = "127.0.0.1",
                      port: int = 8737,
                      work: bool = True,
                      lease_ttl_s: float = 60.0) -> ThreadingHTTPServer:
    """A ready-to-run coordinator over ``root`` (call ``serve_forever``).

    ``port=0`` binds an ephemeral port (useful in tests); the bound
    address is ``server.server_address``.  The server validates every
    ``PUT`` before storing it, so one misbehaving client cannot poison
    the pool — and the on-disk layout is exactly a
    :class:`DirectoryStore`, so the same root can simultaneously be
    mounted and used as a filesystem store.

    With ``work=True`` (the default) the server also carries a
    :class:`~repro.sim.sweep.dispatch.LeaseBoard` behind the ``/work/``
    endpoints, making it the coordinator of distributed sweeps: drivers
    seed warm groups, ``python -m repro worker`` processes claim and
    complete them under ``lease_ttl_s``-second leases.  Cost records are
    batched in memory (the server owns its root) and flushed every few
    records — call ``server.store.flush_costs()`` on shutdown.
    """
    from .dispatch import LeaseBoard  # circular at module level

    server = ThreadingHTTPServer((host, port), _StoreHandler)
    server.daemon_threads = True
    store = DirectoryStore(root, label="served", cost_flush_every=8)
    server.store = store  # type: ignore[attr-defined]
    server.board = (LeaseBoard(store, lease_ttl_s=lease_ttl_s)  # type: ignore[attr-defined]
                    if work else None)
    return server
