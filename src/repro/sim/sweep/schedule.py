"""Cost-aware work-stealing dispatch for the sweep runner.

The runner's unit of dispatch is a *warm group* — cells sharing one
:func:`~repro.sim.sweep.fingerprint.warm_fingerprint`, warmed once and
measured from restored snapshots.  Group runtimes vary wildly (a
streaming benchmark's group can cost 5× a cache-friendly one), so a
static partition leaves workers idle behind the longest group.  This
module replaces it with a coordinator-side queue:

* groups are ordered by **estimated cost**, costliest first (classic
  LPT), from the advisory ``elapsed_s`` history the store keeps per
  ``benchmark/scheme`` (:meth:`ResultStore.cost_history`) — a pooled
  shared store means a brand-new host starts with the whole pool's
  timing knowledge;
* idle workers **pull** the next group off the queue as they finish —
  dynamic self-balancing regardless of how wrong the estimates are;
* when workers would go idle with too few groups queued, the costliest
  splittable group is **split in half** (one extra warm-up buys
  restored parallelism) — dynamically, at the moment of starvation,
  not by a static up-front partition.

None of this can change a result: measuring from a restored snapshot
is bit-identical to warming from scratch, so any split, any ordering
and any worker count produce the same :class:`SimResult` per cell —
only wall-clock moves.  The queue itself is deterministic (cost ties
break on cell labels), so two sweeps over the same store history also
*dispatch* identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .spec import CellSpec
from .store import ResultStore

#: cost assumed for a cell with no history anywhere (arbitrary unit —
#: only *relative* costs matter for ordering).
DEFAULT_CELL_COST = 1.0


class CostModel:
    """Per-cell cost estimates from the store's ``elapsed_s`` history.

    History buckets are keyed ``benchmark/scheme`` — coarse on purpose:
    pending cells are cache *misses*, so their exact fingerprints have
    no history by definition, but their benchmark/scheme family almost
    always does after one sweep.  Estimates are advisory: they order
    and split work, never touch results.
    """

    def __init__(self, history: Optional[Dict[str, dict]] = None):
        self.history: Dict[str, float] = {}
        total = 0.0
        cells = 0
        for key, bucket in (history or {}).items():
            try:
                bucket_total = float(bucket["total_s"])
                bucket_cells = int(bucket["cells"])
            except (KeyError, TypeError, ValueError):
                continue
            if bucket_cells <= 0:
                continue
            self.history[key] = bucket_total / bucket_cells
            total += bucket_total
            cells += bucket_cells
        #: mean cost across every bucket — the estimate for families
        #: never seen before (better than a constant once *any* history
        #: exists, because it is at least in this machine's units).
        self.default = total / cells if cells else DEFAULT_CELL_COST

    @classmethod
    def from_store(cls, store: Optional[ResultStore]) -> "CostModel":
        return cls(store.cost_history() if store is not None else None)

    def cell_cost(self, spec: CellSpec) -> float:
        key = f"{spec.benchmark}/{spec.scheme.value}"
        return self.history.get(key, self.default)

    def group_cost(self, group: Sequence[CellSpec]) -> float:
        return sum(self.cell_cost(spec) for spec in group)


def split_group(group: Sequence[CellSpec]) -> Tuple[List[CellSpec],
                                                    List[CellSpec]]:
    """Halve one warm group (caller guarantees ``len(group) >= 2``).

    Safe by construction: both halves re-warm independently and every
    member still measures from a snapshot bit-identical to its own
    from-scratch warm-up.
    """
    half = len(group) // 2
    return list(group[:half]), list(group[half:])


def balance_groups(groups: List[List[CellSpec]],
                   jobs: int) -> List[List[CellSpec]]:
    """The historical *static* partition: split the largest groups until
    every worker can get one.

    Kept as the reference balancer (and for callers that want a fixed
    partition up front); the runner now uses :class:`WorkQueue`, which
    reproduces this exact behavior on its first fill and keeps
    rebalancing afterwards.
    """
    total = sum(len(group) for group in groups)
    target = min(jobs, total)
    groups = [list(group) for group in groups]
    while len(groups) < target:
        largest = max(range(len(groups)), key=lambda i: len(groups[i]))
        group = groups[largest]
        if len(group) < 2:
            break
        first, second = split_group(group)
        groups[largest] = first
        groups.append(second)
    return groups


class WorkQueue:
    """Coordinator-side queue of warm groups; workers pull, queue splits.

    ``take(idle_workers)`` hands out the costliest queued group.  Before
    popping it tops the queue up: while fewer groups are queued than
    workers are idle, the costliest splittable group is halved (counted
    in :attr:`splits` — the "stolen" warm-ups the sweep paid to keep
    workers busy).  When nothing splittable remains the queue simply
    runs dry and ``take`` returns ``None``.
    """

    def __init__(self, groups: Sequence[Sequence[CellSpec]],
                 cost_model: Optional[CostModel] = None):
        self.model = cost_model or CostModel()
        #: (estimated cost, tie-break label, group), kept sorted
        #: costliest-first; labels make ordering fully deterministic.
        self._queue: List[Tuple[float, str, List[CellSpec]]] = [
            self._item(list(group)) for group in groups if group
        ]
        self._sort()
        self.splits = 0
        self.dispatched = 0

    def _item(self, group: List[CellSpec]) -> Tuple[float, str,
                                                    List[CellSpec]]:
        return (self.model.group_cost(group), group[0].label(), group)

    def _sort(self) -> None:
        self._queue.sort(key=lambda item: (-item[0], item[1]))

    def __len__(self) -> int:
        return len(self._queue)

    def queued_cells(self) -> int:
        return sum(len(item[2]) for item in self._queue)

    def add(self, group: Sequence[CellSpec]) -> None:
        """Queue one more group (a late seed or a requeued expired lease)."""
        if not group:
            return
        self._queue.append(self._item(list(group)))
        self._sort()

    def reprice(self, cost_model: CostModel) -> None:
        """Re-estimate every queued group under a fresh cost model.

        The coordinator calls this as completions stream in, so LPT
        ordering improves *during* a run instead of being frozen at seed
        time.  Purely advisory: ordering can never change results.
        """
        self.model = cost_model
        self._queue = [self._item(group) for _cost, _label, group
                       in self._queue]
        self._sort()

    def discard_cells(self, should_drop) -> int:
        """Drop queued cells ``should_drop`` matches; returns the count.

        The coordinator uses this when a presumed-dead worker's results
        arrive *after* its lease expired and its group was requeued: the
        late results are valid (content-addressed, bit-identical), so
        the requeued copies are redundant work.
        """
        dropped = 0
        rebuilt = []
        for _cost, _label, group in self._queue:
            kept = [cell for cell in group if not should_drop(cell)]
            dropped += len(group) - len(kept)
            if kept:
                rebuilt.append(self._item(kept))
        if dropped:
            self._queue = rebuilt
            self._sort()
        return dropped

    def _split_costliest(self) -> bool:
        """Halve the costliest group with >= 2 cells; False when none."""
        for index, (_cost, _label, group) in enumerate(self._queue):
            if len(group) >= 2:
                first, second = split_group(group)
                self._queue[index] = self._item(first)
                self._queue.append(self._item(second))
                self.splits += 1
                self._sort()
                return True
        return False

    def take(self, idle_workers: int = 1) -> Optional[List[CellSpec]]:
        """The next group to dispatch, splitting to feed idle workers."""
        if not self._queue:
            return None
        while len(self._queue) < idle_workers and self._split_costliest():
            pass
        _cost, _label, group = self._queue.pop(0)
        self.dispatched += 1
        return group
