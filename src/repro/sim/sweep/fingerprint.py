"""Content-addressed cell identity for the persistent result cache.

A cell's fingerprint is a SHA-256 over the canonical JSON of everything
that determines its result:

* the **built** :class:`~repro.common.config.SystemConfig` dataclass tree
  (serialized field by field, so *any* config change — scheme, cache
  geometry, bus, hash engine, chunking — changes the key);
* the workload profile of the benchmark (so recalibrating a profile
  invalidates its cells automatically);
* the run parameters: instruction count, warm-up length, seed, and the
  protected-memory size;
* :data:`CACHE_SCHEMA_VERSION`, bumped whenever the simulator's timing
  semantics change in a result-affecting way.

Because the fingerprint is computed from the *built* config, two spec
spellings that build the same machine (say ``l2_size=1 MB`` explicit vs
defaulted) hash identically — the disk cache can never diverge from the
session-cache normalization in :mod:`repro.sim.sweep.spec`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Optional

from ...cache.hierarchy import DEFAULT_PROTECTED_BYTES
from ..system import default_warmup
from ...common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    HashEngineConfig,
    SchemeKind,
    SystemConfig,
    TLBConfig,
)
from ...workloads.spec import SPEC_PROFILES
from .spec import CellSpec

#: Bump when simulator changes alter results for an unchanged config —
#: old cache entries then read as misses instead of stale hits.
CACHE_SCHEMA_VERSION = 2


def to_canonical(value: Any) -> Any:
    """Recursively convert dataclasses/enums into plain JSON-able data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [to_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_canonical(val) for key, val in value.items()}
    return value


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Serialize a full config tree to plain nested dicts."""
    return to_canonical(config)


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output."""
    return SystemConfig(
        scheme=SchemeKind(data["scheme"]),
        core=CoreConfig(**data["core"]),
        l1i=CacheConfig(**data["l1i"]),
        l1d=CacheConfig(**data["l1d"]),
        l2=CacheConfig(**data["l2"]),
        tlb=TLBConfig(**data["tlb"]),
        bus=BusConfig(**data["bus"]),
        dram=DramConfig(**data["dram"]),
        hash_engine=HashEngineConfig(**data["hash_engine"]),
        memory_bytes=data["memory_bytes"],
        blocks_per_chunk=data["blocks_per_chunk"],
        write_allocate_valid_bits=data["write_allocate_valid_bits"],
    )


def cell_fingerprint(
    spec: CellSpec,
    protected_bytes: int = DEFAULT_PROTECTED_BYTES,
    config: Optional[SystemConfig] = None,
) -> str:
    """Stable hex fingerprint of one cell (see module docstring)."""
    if config is None:
        config = spec.build_config()
    profile = SPEC_PROFILES.get(spec.benchmark)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "benchmark": spec.benchmark,
        "profile": to_canonical(profile) if profile is not None else None,
        "instructions": spec.instructions,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "protected_bytes": protected_bytes,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def warm_fingerprint(
    spec: CellSpec,
    protected_bytes: int = DEFAULT_PROTECTED_BYTES,
    config: Optional[SystemConfig] = None,
) -> str:
    """Fingerprint of a cell's *functional warm-up state*.

    Warm-up runs with the bus and hash engine timing-disabled, so its end
    state — cache tags/LRU/dirty bits, TLB entries, the hash blocks the
    scheme allocated in the L2 — depends only on:

    * the cache/TLB geometry (which sets exist and how wide they are);
    * the scheme kind and its tree layout (hash-block placement; ``None``
      for ``base``, which allocates no tree) plus the §5.3 valid-bit flag
      and the protected-memory size (tree height);
    * the workload: benchmark name, its profile, the RNG seed, and the
      *resolved* warm-up length (``spec.warmup`` or :func:`default_warmup`,
      which itself depends only on L2 geometry).

    Deliberately excluded: bus/DRAM widths and latencies, hash-engine
    throughput/latency/buffer depths, and every core parameter — none of
    them can reach warm-up state.  Cells that differ only in those
    (fig6/fig7-style timing sweeps) therefore share a warm fingerprint,
    and the sweep runner warms each such group once.
    """
    if config is None:
        config = spec.build_config()
    profile = SPEC_PROFILES.get(spec.benchmark)
    warmup = spec.warmup if spec.warmup is not None else default_warmup(config)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "scheme": config.scheme.value,
        "l1i": to_canonical(config.l1i),
        "l1d": to_canonical(config.l1d),
        "l2": to_canonical(config.l2),
        "tlb": to_canonical(config.tlb),
        "tree": (None if config.scheme is SchemeKind.BASE
                 else to_canonical(config.tree)),
        "valid_bits": config.write_allocate_valid_bits,
        "memory_bytes": config.memory_bytes,
        "benchmark": spec.benchmark,
        "profile": to_canonical(profile) if profile is not None else None,
        "warmup": warmup,
        "seed": spec.seed,
        "protected_bytes": protected_bytes,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
