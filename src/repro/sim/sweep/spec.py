"""Declarative sweep cells: one :class:`CellSpec` per simulation.

A cell is everything needed to reproduce one bar of one figure — the
benchmark, the scheme, the config deltas against Table 1, and the run
parameters (instruction count, warm-up length, seed).  Cells are frozen
and hashable, so they key session caches directly, and
:func:`cell_param_defaults` is the *single* table both the session-cache
normalization and the on-disk fingerprint derive from — a config delta
equal to the Table 1 default can therefore never produce a second cache
identity for the same machine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...common.config import SchemeKind, SystemConfig, table1_config

#: parameters a cell may override, in the order they appear in cache keys.
CELL_PARAMS = (
    "l2_size",
    "l2_block",
    "l1i_block",
    "hash_throughput",
    "buffer_entries",
    "blocks_per_chunk",
    "write_allocate_valid_bits",
)


def cell_param_defaults() -> Dict[str, object]:
    """The Table 1 default for every overridable cell parameter.

    Derived from :class:`SystemConfig` itself (never hand-copied) so the
    normalization below and any fingerprint logic can't drift from the
    config that actually gets built.
    """
    base = SystemConfig()
    return {
        "l2_size": base.l2.size_bytes,
        "l2_block": base.l2.block_bytes,
        "l1i_block": base.l1i.block_bytes,
        "hash_throughput": base.hash_engine.throughput_gb_per_s,
        "buffer_entries": base.hash_engine.read_buffer_entries,
        "blocks_per_chunk": base.blocks_per_chunk,
        "write_allocate_valid_bits": base.write_allocate_valid_bits,
    }


@dataclass(frozen=True)
class CellSpec:
    """One self-contained simulation cell of a sweep grid.

    ``None`` for any config parameter means "the Table 1 default"; an
    explicit value equal to the default is normalized to ``None`` by
    :meth:`normalized`, so equivalent cells compare (and hash) equal.
    """

    benchmark: str
    scheme: SchemeKind
    l2_size: Optional[int] = None
    l2_block: Optional[int] = None
    l1i_block: Optional[int] = None
    hash_throughput: Optional[float] = None
    buffer_entries: Optional[int] = None
    blocks_per_chunk: Optional[int] = None
    write_allocate_valid_bits: Optional[bool] = None
    instructions: int = 12_000
    warmup: Optional[int] = None
    seed: int = 0
    #: Kernel backend request (``auto``/``numpy``/``fallback``/``packed``;
    #: ``None`` defers to ``REPRO_KERNELS``).  Excluded from equality,
    #: hashing, :meth:`key` and both fingerprints: backends are
    #: bit-identical, so the backend is execution metadata, never cell
    #: identity.
    kernels: Optional[str] = dataclasses.field(default=None, compare=False)

    def normalized(self) -> "CellSpec":
        """Collapse explicit default values to ``None`` (one identity per
        distinct machine), symmetrically for every parameter in
        :func:`cell_param_defaults` — including ``False`` values."""
        defaults = cell_param_defaults()
        changes = {}
        for param, default in defaults.items():
            value = getattr(self, param)
            if value is not None and value == default:
                changes[param] = None
        return dataclasses.replace(self, **changes) if changes else self

    def build_config(self) -> SystemConfig:
        """The :class:`SystemConfig` this cell simulates."""
        config = table1_config(self.scheme)
        if self.l2_size is not None or self.l2_block is not None:
            config = config.with_l2(size_bytes=self.l2_size,
                                    block_bytes=self.l2_block)
        if self.l1i_block is not None:
            config = dataclasses.replace(
                config,
                l1i=dataclasses.replace(config.l1i,
                                        block_bytes=self.l1i_block),
            )
        engine_changes = {}
        if self.hash_throughput is not None:
            engine_changes["throughput_gb_per_s"] = self.hash_throughput
        if self.buffer_entries is not None:
            engine_changes["read_buffer_entries"] = self.buffer_entries
            engine_changes["write_buffer_entries"] = self.buffer_entries
        if engine_changes:
            config = dataclasses.replace(
                config,
                hash_engine=dataclasses.replace(config.hash_engine,
                                                **engine_changes),
            )
        if self.blocks_per_chunk is not None:
            config = dataclasses.replace(
                config, blocks_per_chunk=self.blocks_per_chunk
            )
        if self.write_allocate_valid_bits is not None:
            config = dataclasses.replace(
                config, write_allocate_valid_bits=self.write_allocate_valid_bits
            )
        return config

    def key(self) -> Tuple:
        """Normalized tuple identity, usable as a session-cache key."""
        spec = self.normalized()
        return (spec.benchmark, spec.scheme.value) + tuple(
            getattr(spec, param) for param in CELL_PARAMS
        ) + (spec.instructions, spec.warmup, spec.seed)

    def label(self) -> str:
        """Compact human-readable cell name for progress lines."""
        spec = self.normalized()
        parts = [spec.benchmark, spec.scheme.value]
        shorts = {
            "l2_size": "l2",
            "l2_block": "blk",
            "l1i_block": "il1",
            "hash_throughput": "ht",
            "buffer_entries": "buf",
            "blocks_per_chunk": "bpc",
            "write_allocate_valid_bits": "wavb",
        }
        for param in CELL_PARAMS:
            value = getattr(spec, param)
            if value is not None:
                if param == "l2_size":
                    value = _human_size(value)
                parts.append(f"{shorts[param]}={value}")
        return "/".join(parts)


def spec_to_dict(spec: CellSpec) -> Dict[str, object]:
    """Serialize a cell to plain JSON-able data (the dispatch wire format).

    Everything that defines the cell goes over the wire — including
    ``kernels``, so a driver's explicit backend request reaches remote
    workers — and :func:`spec_from_dict` round-trips it exactly.
    """
    data: Dict[str, object] = {
        "benchmark": spec.benchmark,
        "scheme": spec.scheme.value,
        "instructions": spec.instructions,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "kernels": spec.kernels,
    }
    for param in CELL_PARAMS:
        data[param] = getattr(spec, param)
    return data


def spec_from_dict(data: Dict[str, object]) -> CellSpec:
    """Rebuild a :class:`CellSpec` from :func:`spec_to_dict` output.

    Raises ``ValueError``/``KeyError``/``TypeError`` on malformed data —
    the coordinator uses that to reject a bad seed request outright
    instead of queueing work no worker could run.
    """
    if not isinstance(data, dict):
        raise ValueError(f"cell spec is {type(data).__name__}, not an object")
    defaults = cell_param_defaults()
    overrides: Dict[str, object] = {}
    for param in CELL_PARAMS:
        value = data.get(param)
        if value is not None:
            # type-check against the defaults table so a corrupt payload
            # (a string block size, a fractional entry count) fails here,
            # not as a TypeError deep inside a worker's simulation
            kind = type(defaults[param])
            if kind is bool:
                if not isinstance(value, bool):
                    raise ValueError(f"{param} must be a boolean, "
                                     f"got {value!r}")
            elif isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                raise ValueError(f"{param} must be a number, got {value!r}")
            elif kind is int and float(value) != int(value):
                raise ValueError(f"{param} must be integral, got {value!r}")
            else:
                value = kind(value)
        overrides[param] = value
    spec = CellSpec(
        benchmark=data["benchmark"],
        scheme=SchemeKind(data["scheme"]),
        instructions=int(data.get("instructions", 12_000)),
        warmup=data.get("warmup"),
        seed=int(data.get("seed", 0)),
        kernels=data.get("kernels"),
        **overrides,
    )
    if not isinstance(spec.benchmark, str) or not spec.benchmark:
        raise ValueError("cell spec has no benchmark")
    return spec.normalized()


def _human_size(size_bytes: int) -> str:
    """``262144 -> "256K"``, ``1048576 -> "1M"`` (exact multiples only)."""
    for shift, suffix in ((20, "M"), (10, "K")):
        if size_bytes >= (1 << shift) and size_bytes % (1 << shift) == 0:
            return f"{size_bytes >> shift}{suffix}"
    return str(size_bytes)
