"""The local on-disk cell cache — now the L1 tier of the store layer.

Historically this module held the whole persistent cache; the store
hierarchy grew out of it and lives in :mod:`repro.sim.sweep.store`.
:class:`DiskCellCache` remains as the canonical *local* store (default
root ``.repro_cache/``) with its original API — ``get``/``put``/
``path_for``/``len``/``hits``/``misses`` — so existing callers and the
benchmark harness keep working unchanged; tier it with a shared L2 via
:func:`repro.sim.sweep.store.build_store`.

Robustness contract (unchanged): a corrupted, truncated,
schema-mismatched or otherwise unreadable entry is a *miss* (logged at
warning level), never an error — the sweep recomputes and overwrites
it.  Writes go through a unique temporary file + :func:`os.replace`, so
a killed sweep can't leave a half-written entry behind and concurrent
writers on a shared filesystem can't collide.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .store import (
    DEFAULT_CACHE_DIR,
    DirectoryStore,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DiskCellCache",
    "result_from_dict",
    "result_to_dict",
]


class DiskCellCache(DirectoryStore):
    """Content-addressed store of finished cells under ``.repro_cache/``."""

    def __init__(self, root: Union[str, Path, None] = None):
        super().__init__(root, label="local")
