"""Persistent on-disk cell-result cache under ``.repro_cache/``.

Layout: one JSON file per cell, named ``<fingerprint>.json`` where the
fingerprint comes from :mod:`repro.sim.sweep.fingerprint`.  Each file
holds the schema version, the fingerprint (self-check), a human-readable
description of the cell, the serialized :class:`SimResult` and the
wall-clock cost of the run that produced it.

Robustness contract: a corrupted, truncated, schema-mismatched or
otherwise unreadable entry is a *miss* (logged at warning level), never an
error — the sweep recomputes and overwrites it.  Writes go through a
temporary file + :func:`os.replace` so a killed sweep can't leave a
half-written entry behind.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Optional, Union

from ..results import SimResult
from .fingerprint import CACHE_SCHEMA_VERSION, config_from_dict, config_to_dict
from .spec import CellSpec

logger = logging.getLogger(__name__)

#: default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def result_to_dict(result: SimResult) -> dict:
    """Serialize a :class:`SimResult` (config tree included) to plain data."""
    return {
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "config": config_to_dict(result.config),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "stats": dict(result.stats),
    }


def result_from_dict(data: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output."""
    return SimResult(
        benchmark=data["benchmark"],
        scheme=data["scheme"],
        config=config_from_dict(data["config"]),
        instructions=data["instructions"],
        cycles=data["cycles"],
        stats=dict(data["stats"]),
    )


class DiskCellCache:
    """Content-addressed store of finished cells."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.hits = 0
        self.misses = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[SimResult]:
        """The cached result for ``fingerprint``, or ``None`` on any miss."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {data.get('schema')!r} != "
                                 f"{CACHE_SCHEMA_VERSION}")
            if data.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch inside entry")
            result = result_from_dict(data["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            # ValueError covers json.JSONDecodeError and our own checks.
            logger.warning("ignoring unreadable cache entry %s: %s",
                           path, error)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, spec: CellSpec, result: SimResult,
            elapsed_s: float, backend: Optional[str] = None) -> None:
        """Store ``result`` atomically; failures are logged, not raised.

        ``backend`` records which kernel backend produced the entry —
        pure provenance metadata: it never enters the fingerprint, and
        :meth:`get` ignores it, because backends are bit-identical.
        """
        path = self.path_for(fingerprint)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "cell": spec.label(),
            "elapsed_s": round(elapsed_s, 4),
            "backend": backend,
            "result": result_to_dict(result),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp%d" % os.getpid())
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError as error:  # pragma: no cover - disk trouble
            logger.warning("could not write cache entry %s: %s", path, error)

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:  # pragma: no cover - disk trouble
            return 0
