"""Sweep engine: declarative cells, parallel runner, tiered result store.

``grid`` keeps the original sequential :func:`run_grid` API; everything
else is the cell-based engine: :class:`CellSpec` (declarative cells),
:func:`cell_fingerprint` (content-addressed identity), the
:mod:`~repro.sim.sweep.store` tier hierarchy (:class:`DiskCellCache` as
the local L1, :class:`DirectoryStore`/:class:`HttpStore` as shareable
L2s, :class:`TieredStore` combining them), the cost-aware work-stealing
:mod:`~repro.sim.sweep.schedule`, :func:`run_cells` (deterministic
parallel execution), and the :mod:`~repro.sim.sweep.dispatch` work-lease
coordinator that spreads one sweep across machines
(:func:`run_distributed` + :func:`run_worker`).
"""

from .diskcache import DiskCellCache
from .dispatch import (
    CoordinatorClient,
    CoordinatorError,
    LeaseBoard,
    run_distributed,
    run_worker,
)
from .figures import FIGURES, figure_cells
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    cell_fingerprint,
    config_from_dict,
    config_to_dict,
    warm_fingerprint,
)
from .grid import baseline_of, run_grid
from .runner import (
    CellOutcome,
    SweepReport,
    dedupe_cells,
    execute_cell,
    execute_group,
    resolve_jobs,
    results_grid,
    run_cells,
    warm_groups_of,
)
from .schedule import CostModel, WorkQueue, balance_groups, split_group
from .spec import (
    CELL_PARAMS,
    CellSpec,
    cell_param_defaults,
    spec_from_dict,
    spec_to_dict,
)
from .store import (
    DEFAULT_CACHE_DIR,
    STORE_ENV,
    DirectoryStore,
    Fetched,
    HttpChannel,
    HttpStore,
    PruneReport,
    ResultStore,
    TieredStore,
    build_store,
    make_store_server,
    open_store,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CELL_PARAMS",
    "CellOutcome",
    "CellSpec",
    "CoordinatorClient",
    "CoordinatorError",
    "CostModel",
    "DEFAULT_CACHE_DIR",
    "DirectoryStore",
    "DiskCellCache",
    "FIGURES",
    "Fetched",
    "HttpChannel",
    "HttpStore",
    "LeaseBoard",
    "PruneReport",
    "ResultStore",
    "STORE_ENV",
    "SweepReport",
    "TieredStore",
    "WorkQueue",
    "balance_groups",
    "baseline_of",
    "build_store",
    "cell_fingerprint",
    "cell_param_defaults",
    "config_from_dict",
    "config_to_dict",
    "dedupe_cells",
    "execute_cell",
    "execute_group",
    "figure_cells",
    "make_store_server",
    "open_store",
    "resolve_jobs",
    "result_from_dict",
    "result_to_dict",
    "results_grid",
    "run_cells",
    "run_distributed",
    "run_grid",
    "run_worker",
    "spec_from_dict",
    "spec_to_dict",
    "split_group",
    "warm_fingerprint",
    "warm_groups_of",
]
