"""Sweep engine: declarative cells, parallel runner, tiered result store.

``grid`` keeps the original sequential :func:`run_grid` API; everything
else is the cell-based engine: :class:`CellSpec` (declarative cells),
:func:`cell_fingerprint` (content-addressed identity), the
:mod:`~repro.sim.sweep.store` tier hierarchy (:class:`DiskCellCache` as
the local L1, :class:`DirectoryStore`/:class:`HttpStore` as shareable
L2s, :class:`TieredStore` combining them), the cost-aware work-stealing
:mod:`~repro.sim.sweep.schedule`, and :func:`run_cells` (deterministic
parallel execution).
"""

from .diskcache import DiskCellCache
from .figures import FIGURES, figure_cells
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    cell_fingerprint,
    config_from_dict,
    config_to_dict,
    warm_fingerprint,
)
from .grid import baseline_of, run_grid
from .runner import (
    CellOutcome,
    SweepReport,
    execute_cell,
    execute_group,
    resolve_jobs,
    results_grid,
    run_cells,
)
from .schedule import CostModel, WorkQueue, balance_groups, split_group
from .spec import CELL_PARAMS, CellSpec, cell_param_defaults
from .store import (
    DEFAULT_CACHE_DIR,
    STORE_ENV,
    DirectoryStore,
    Fetched,
    HttpStore,
    PruneReport,
    ResultStore,
    TieredStore,
    build_store,
    make_store_server,
    open_store,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CELL_PARAMS",
    "CellOutcome",
    "CellSpec",
    "CostModel",
    "DEFAULT_CACHE_DIR",
    "DirectoryStore",
    "DiskCellCache",
    "FIGURES",
    "Fetched",
    "HttpStore",
    "PruneReport",
    "ResultStore",
    "STORE_ENV",
    "SweepReport",
    "TieredStore",
    "WorkQueue",
    "balance_groups",
    "baseline_of",
    "build_store",
    "cell_fingerprint",
    "cell_param_defaults",
    "config_from_dict",
    "config_to_dict",
    "execute_cell",
    "execute_group",
    "figure_cells",
    "make_store_server",
    "open_store",
    "resolve_jobs",
    "result_from_dict",
    "result_to_dict",
    "results_grid",
    "run_cells",
    "run_grid",
    "split_group",
    "warm_fingerprint",
]
