"""Sweep engine: declarative cells, parallel runner, persistent cache.

``grid`` keeps the original sequential :func:`run_grid` API; everything
else is the cell-based engine: :class:`CellSpec` (declarative cells),
:func:`cell_fingerprint` (content-addressed identity),
:class:`DiskCellCache` (persistent on-disk results) and :func:`run_cells`
(deterministic parallel execution).
"""

from .diskcache import DEFAULT_CACHE_DIR, DiskCellCache, result_from_dict, result_to_dict
from .figures import FIGURES, figure_cells
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    cell_fingerprint,
    config_from_dict,
    config_to_dict,
    warm_fingerprint,
)
from .grid import baseline_of, run_grid
from .runner import (
    CellOutcome,
    SweepReport,
    execute_cell,
    execute_group,
    results_grid,
    run_cells,
)
from .spec import CELL_PARAMS, CellSpec, cell_param_defaults

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CELL_PARAMS",
    "CellOutcome",
    "CellSpec",
    "DEFAULT_CACHE_DIR",
    "DiskCellCache",
    "FIGURES",
    "SweepReport",
    "baseline_of",
    "cell_fingerprint",
    "cell_param_defaults",
    "config_from_dict",
    "config_to_dict",
    "execute_cell",
    "execute_group",
    "figure_cells",
    "warm_fingerprint",
    "result_from_dict",
    "result_to_dict",
    "results_grid",
    "run_cells",
    "run_grid",
]
