"""Distributed sweep dispatch: work leases over the store's HTTP channel.

The figure grids are embarrassingly parallel across warm groups, but a
cold sweep used to be bounded by one machine: the tiered store pools
*results* across hosts, and the work-stealing queue balances *workers*
on one box.  This module adds the missing piece — a coordinator that
hands warm groups to remote workers over the same HTTP server the store
already speaks, so several machines split one cold ``--figure all``
sweep:

* :class:`LeaseBoard` — the coordinator's work-lease state machine,
  carried by ``python -m repro store-serve`` behind ``/work/``
  endpoints.  A driver **seeds** warm groups; workers **claim** the
  costliest queued group (the same :class:`CostModel`/:class:`WorkQueue`
  LPT ordering the local runner uses), **heartbeat** while computing,
  and **done** to retire the lease.  A lease that misses its TTL is
  requeued automatically, so a dead or wedged worker costs one lease
  TTL, not the sweep.
* :class:`CoordinatorClient` — the stdlib HTTP client side of that
  protocol, with bounded retry/backoff on transient failures, sharing
  the keep-alive gzip :class:`~repro.sim.sweep.store.HttpChannel`.
* :func:`run_worker` — the ``python -m repro worker`` loop: claim →
  warm once → measure every cell from restored snapshots → write the
  results back through a tiered store (local L1 + the coordinator as
  L2) → acknowledge.
* :func:`run_distributed` — the ``repro sweep --coordinator URL``
  driver: satisfy what the store already holds, seed the misses as warm
  groups, then stream per-worker completions into an ordinary
  :class:`~repro.sim.sweep.runner.SweepReport`.

None of this can change a result.  Workers run the exact
:func:`~repro.sim.sweep.runner.execute_group` path the local runner
uses, results are content-addressed by cell fingerprint, and duplicated
work (a re-leased group whose first worker turned out to be alive)
produces bit-identical entries — so any worker count, any join/leave
timing and any failure pattern yields the same report as ``--jobs 1``.

Determinism note: lease *timing* is wall-clock-driven by nature (that
is the failure detector), but timing only decides *who* computes a
cell, never *what* the cell computes.
"""

from __future__ import annotations

import json
import logging
import os
import re
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ...checks.tsan import guarded_dict, guarded_list, new_lock
from .fingerprint import cell_fingerprint
from .runner import (
    CellOutcome,
    SweepReport,
    dedupe_cells,
    execute_group,
    warm_groups_of,
)
from .schedule import CostModel, WorkQueue
from .spec import CellSpec, spec_from_dict, spec_to_dict
from .store import (
    DirectoryStore,
    HttpChannel,
    HttpStore,
    ResultStore,
    TieredStore,
)

logger = logging.getLogger(__name__)

#: a cell fingerprint on the wire (same shape the store enforces).
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")

#: default lease time-to-live.  Three missed heartbeats (workers beat at
#: ttl/3) mean the worker is presumed dead and its group is requeued.
DEFAULT_LEASE_TTL_S = 60.0


def default_worker_name() -> str:
    """``<hostname>-<pid>`` — unique enough per cluster, stable per run."""
    try:
        host = socket.gethostname()
    except OSError:  # pragma: no cover - no hostname configured
        host = "worker"
    host = re.sub(r"[^A-Za-z0-9._-]", "-", host) or "worker"
    return f"{host}-{os.getpid()}"


# --------------------------------------------------------------------------
# coordinator side: the lease board
# --------------------------------------------------------------------------

class _BoardCell:
    """One dispatched cell: wire payload + rebuilt spec.

    The rebuilt :class:`CellSpec` gives the board real labels and
    benchmark/scheme families, so the *existing* :class:`CostModel` and
    :class:`WorkQueue` order remote work exactly like local work.
    """

    __slots__ = ("fingerprint", "spec", "wire")

    def __init__(self, wire: dict):
        if not isinstance(wire, dict):
            raise ValueError(f"cell is {type(wire).__name__}, not an object")
        fingerprint = wire.get("fingerprint")
        if not isinstance(fingerprint, str) \
                or not _FINGERPRINT_RE.match(fingerprint):
            raise ValueError(f"bad cell fingerprint: {fingerprint!r}")
        self.fingerprint = fingerprint
        self.spec = spec_from_dict(wire.get("spec"))
        self.wire = {"fingerprint": fingerprint,
                     "spec": spec_to_dict(self.spec)}

    # -- the surface CostModel/WorkQueue use ------------------------------

    @property
    def benchmark(self) -> str:
        return self.spec.benchmark

    @property
    def scheme(self):
        return self.spec.scheme

    def label(self) -> str:
        # the fingerprint suffix keeps queue tie-breaks fully
        # deterministic even for cells sharing a display label
        return f"{self.spec.label()}#{self.fingerprint[:8]}"


@dataclass
class _Lease:
    """One outstanding claim: which worker holds which cells until when."""

    lease_id: str
    worker: str
    cells: List[_BoardCell]
    deadline: float
    ttl_s: float


def _worker_stats() -> Dict[str, int]:
    return {"claims": 0, "cells": 0, "failures": 0, "requeues": 0}


@dataclass
class LeaseBoard:
    """The coordinator's work-lease state machine (thread-safe).

    Lives inside the ``store-serve`` process next to its
    :class:`DirectoryStore`; every mutation happens under one lock, and
    expiry is evaluated lazily on each request (no timer thread), so a
    lease can only be observed as live or already requeued — never
    half-expired.

    Liveness contract: a claimed group is either acknowledged via
    :meth:`done` before its TTL runs out (heartbeats extend it), or it
    is requeued for the next claimer.  Results arriving *after* expiry
    are still accepted — they are bit-identical by construction — and
    cancel any still-queued requeued copy of the same cells.
    """

    store: Optional[ResultStore] = None
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    #: injectable monotonic clock (tests compress time with it).
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        # under REPRO_TSAN=1 the lock records acquisition order and the
        # containers assert it is held on every mutation; otherwise these
        # are the plain threading.Lock / dict / list they always were.
        self._lock = new_lock("LeaseBoard._lock")
        history = self.store.cost_history() if self.store else None
        self._queue = WorkQueue([], CostModel(history))
        self._leases: Dict[str, _Lease] = guarded_dict(
            self._lock, "LeaseBoard._leases")
        #: fingerprint -> "queued" | "leased" for every unfinished cell.
        self._pending: Dict[str, str] = guarded_dict(
            self._lock, "LeaseBoard._pending")
        #: fingerprint -> successful outcome (first completion wins).
        self._done: Dict[str, dict] = guarded_dict(
            self._lock, "LeaseBoard._done")
        #: append-only outcome log the drivers poll with a cursor.
        self._outcomes: List[dict] = guarded_list(
            self._lock, "LeaseBoard._outcomes")
        self._lease_seq = 0
        self._outcome_seq = 0
        #: workers that polled for work and found none (starvation
        #: signal: their presence makes claims split big groups).
        self._starving: Dict[str, float] = guarded_dict(
            self._lock, "LeaseBoard._starving")
        self.workers: Dict[str, Dict[str, int]] = guarded_dict(
            self._lock, "LeaseBoard.workers")
        self.seeded_groups = 0
        self.seeded_cells = 0
        self.done_groups = 0
        self.requeues = 0

    # -- protocol verbs ----------------------------------------------------

    def seed(self, groups: Sequence[Sequence[dict]],
             ttl_s: Optional[float] = None,
             fresh: bool = False) -> dict:
        """Queue warm groups of wire cells; malformed input raises.

        Cells already queued, leased, or (unless ``fresh``) completed on
        this board are skipped, so two drivers seeding overlapping grids
        never duplicate work — both will see the shared outcomes.
        """
        parsed = [[_BoardCell(wire) for wire in group]
                  for group in groups if group]
        with self._lock:
            if isinstance(ttl_s, (int, float)) and ttl_s > 0:
                self.lease_ttl_s = float(ttl_s)
            seeded_groups = seeded_cells = skipped = 0
            for group in parsed:
                wanted = []
                for cell in group:
                    if cell.fingerprint in self._pending \
                            or (not fresh and cell.fingerprint in self._done):
                        skipped += 1
                        continue
                    if fresh:
                        self._done.pop(cell.fingerprint, None)
                    wanted.append(cell)
                    self._pending[cell.fingerprint] = "queued"
                if wanted:
                    self._queue.add(wanted)
                    seeded_groups += 1
                    seeded_cells += len(wanted)
            self.seeded_groups += seeded_groups
            self.seeded_cells += seeded_cells
            return {"seeded_groups": seeded_groups,
                    "seeded_cells": seeded_cells,
                    "skipped_cells": skipped,
                    "lease_ttl_s": self.lease_ttl_s}

    def claim(self, worker: str) -> dict:
        """Lease the costliest queued group to ``worker`` (LPT order).

        When fewer groups are queued than workers are starving, the
        queue splits its costliest splittable group first — the
        distributed analog of local work stealing.  Returns one of
        ``{"status": "lease", ...}``, ``{"status": "wait"}`` (work is
        leased out; poll again) or ``{"status": "empty"}``.
        """
        now = self.clock()
        with self._lock:
            self._touch(worker, now)
            self._expire(now)
            stale = [name for name, seen in self._starving.items()
                     if now - seen > self.lease_ttl_s]
            for name in stale:
                del self._starving[name]
            if not len(self._queue):
                self._starving[worker] = now
                if self._leases:
                    return {"status": "wait",
                            "retry_s": round(
                                min(1.0, self.lease_ttl_s / 4), 3)}
                return {"status": "empty",
                        "seeded": self.seeded_groups > 0}
            idle = 1 + sum(1 for name in self._starving if name != worker)
            group = self._queue.take(idle)
            self._starving.pop(worker, None)
            self._lease_seq += 1
            lease = _Lease(
                lease_id=f"l{self._lease_seq}",
                worker=worker,
                cells=group,
                deadline=now + self.lease_ttl_s,
                ttl_s=self.lease_ttl_s,
            )
            self._leases[lease.lease_id] = lease
            for cell in group:
                self._pending[cell.fingerprint] = "leased"
            self.workers[worker]["claims"] += 1
            return {"status": "lease",
                    "lease": {"id": lease.lease_id,
                              "ttl_s": lease.ttl_s,
                              "cells": [cell.wire for cell in group]}}

    def heartbeat(self, lease_id: str, worker: str) -> dict:
        """Renew a lease; ``ok=False`` means it already expired."""
        now = self.clock()
        with self._lock:
            self._touch(worker, now)
            self._expire(now)
            lease = self._leases.get(lease_id)
            if lease is None:
                return {"ok": False,
                        "reason": "lease expired or unknown "
                                  "(group requeued)"}
            lease.deadline = now + lease.ttl_s
            return {"ok": True, "ttl_s": lease.ttl_s}

    def done(self, lease_id: str, worker: str,
             cell_reports: Sequence[dict]) -> dict:
        """Retire a lease with its per-cell results metadata.

        Each report row carries ``fingerprint``, ``elapsed_s`` /
        ``warm_s`` / ``measure_s`` / ``backend``, an optional ``error``,
        and ``stored`` — whether the worker's write-back to the shared
        store succeeded.  Rows that computed fine but did *not* land in
        the store are requeued (invisible work is no work); late reports
        from expired leases are accepted and cancel requeued duplicates.
        """
        now = self.clock()
        with self._lock:
            self._touch(worker, now)
            self._expire(now)
            lease = self._leases.pop(lease_id, None)
            by_fingerprint: Dict[str, dict] = {}
            for row in cell_reports:
                if isinstance(row, dict) \
                        and isinstance(row.get("fingerprint"), str):
                    by_fingerprint[row["fingerprint"]] = row
            known = {cell.fingerprint: cell for cell in lease.cells} \
                if lease else {}
            requeue: List[_BoardCell] = []
            resolved = set()
            accepted = 0
            for fingerprint, row in by_fingerprint.items():
                cell = known.get(fingerprint)
                error = row.get("error")
                stored = bool(row.get("stored"))
                if error is None and not stored:
                    # computed but never landed in the store: requeue if
                    # we still know the cell's spec (live lease), else
                    # leave the already-requeued copy to recompute it
                    if cell is not None:
                        requeue.append(cell)
                    self.workers[worker]["requeues"] += 1
                    continue
                if error is None:
                    self.workers[worker]["cells"] += 1
                else:
                    self.workers[worker]["failures"] += 1
                accepted += 1
                self._record_outcome(fingerprint, row, worker)
                resolved.add(fingerprint)
            # drop queued duplicates of anything just resolved (late
            # results from an expired-and-requeued lease)
            if resolved:
                self._queue.discard_cells(
                    lambda cell: cell.fingerprint in resolved)
            if requeue:
                for cell in requeue:
                    self._pending[cell.fingerprint] = "queued"
                self._queue.add(requeue)
            if lease is not None:
                self.done_groups += 1
                # cells the worker never reported on (crashed mid-group
                # but managed to call done?) go back on the queue too
                unreported = [cell for cell in lease.cells
                              if cell.fingerprint not in by_fingerprint
                              and self._pending.get(cell.fingerprint)
                              == "leased"]
                if unreported:
                    for cell in unreported:
                        self._pending[cell.fingerprint] = "queued"
                    self._queue.add(unreported)
                    self.requeues += 1
            # completions carry fresh elapsed_s history (recorded by the
            # store on PUT) — re-price the queue so LPT ordering keeps
            # improving while the cluster runs
            if self.store is not None and accepted:
                self._queue.reprice(CostModel(self.store.cost_history()))
            return {"retired": lease is not None, "accepted": accepted,
                    "requeued": len(requeue)}

    def status(self, since: int = 0) -> dict:
        """Board snapshot + every outcome with ``seq > since``."""
        now = self.clock()
        with self._lock:
            self._expire(now)
            outcomes = [row for row in self._outcomes if row["seq"] > since]
            workers = {
                name: dict(stats) for name, stats in self.workers.items()
            }
            return {
                "totals": {
                    "seeded_groups": self.seeded_groups,
                    "seeded_cells": self.seeded_cells,
                    "done_groups": self.done_groups,
                    "queued_groups": len(self._queue),
                    "queued_cells": self._queue.queued_cells(),
                    "leased_groups": len(self._leases),
                    "requeues": self.requeues,
                    "splits": self._queue.splits,
                    "outcome_seq": self._outcome_seq,
                    "lease_ttl_s": self.lease_ttl_s,
                },
                "drained": not self._pending and not self._leases,
                "workers": workers,
                "outcomes": outcomes,
            }

    # -- internals (call with the lock held) -------------------------------

    def _touch(self, worker: str, now: float) -> None:
        stats = self.workers.setdefault(worker, _worker_stats())
        stats["last_seen"] = round(now, 3)  # type: ignore[assignment]

    def _expire(self, now: float) -> None:
        expired = [lease for lease in self._leases.values()
                   if lease.deadline < now]
        for lease in sorted(expired, key=lambda item: item.lease_id):
            del self._leases[lease.lease_id]
            stale = [cell for cell in lease.cells
                     if self._pending.get(cell.fingerprint) == "leased"]
            for cell in stale:
                self._pending[cell.fingerprint] = "queued"
            if stale:
                self._queue.add(stale)
            self.requeues += 1
            self.workers.setdefault(lease.worker,
                                    _worker_stats())["requeues"] += 1
            logger.warning("lease %s (%s, %d cells) expired; requeued",
                           lease.lease_id, lease.worker, len(stale))

    def _record_outcome(self, fingerprint: str, row: dict,
                        worker: str) -> None:
        if row.get("error") is None and fingerprint in self._done:
            return  # duplicate completion (re-leased group) — keep first
        # both success and failure resolve the cell: a deterministic
        # failure requeued forever would wedge the board, so failures
        # surface to the driver instead
        self._pending.pop(fingerprint, None)
        self._outcome_seq += 1
        outcome = {
            "seq": self._outcome_seq,
            "fingerprint": fingerprint,
            "label": row.get("label"),
            "worker": worker,
            "elapsed_s": float(row.get("elapsed_s") or 0.0),
            "warm_s": float(row.get("warm_s") or 0.0),
            "measure_s": float(row.get("measure_s") or 0.0),
            "backend": row.get("backend"),
            "error": row.get("error"),
        }
        self._outcomes.append(outcome)
        if outcome["error"] is None:
            self._done[fingerprint] = outcome


# --------------------------------------------------------------------------
# client side: the coordinator protocol
# --------------------------------------------------------------------------

class CoordinatorError(OSError):
    """The coordinator is unreachable or rejected a request."""


class CoordinatorClient:
    """Stdlib client for the ``/work/`` endpoints, with bounded retry.

    Transient transport failures (connection refused/reset, timeouts,
    5xx) are retried ``max_tries`` times with deterministic exponential
    backoff; protocol rejections (4xx) raise immediately — retrying a
    malformed request cannot help.  Heartbeat's 410 (lease gone) is a
    *negative answer*, not an error, and comes back as ``ok=False``.
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 max_tries: int = 5, backoff_s: float = 0.25):
        self.channel = HttpChannel(base_url, timeout=timeout)
        self.base_url = self.channel.base_url
        self.max_tries = max(1, max_tries)
        self.backoff_s = backoff_s

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        last_error: Optional[Exception] = None
        for attempt in range(self.max_tries):
            if attempt:
                time.sleep(min(self.backoff_s * (2 ** (attempt - 1)), 8.0))
            try:
                response = self.channel.request(method, path, body)
            except OSError as err:
                last_error = err
                continue
            if response.status >= 500:
                last_error = CoordinatorError(
                    f"HTTP {response.status} from {self.base_url}{path}")
                continue
            if response.status >= 400 and response.status != 410:
                detail = response.body.decode("utf-8", "replace")[:200]
                raise CoordinatorError(
                    f"coordinator rejected {method} {path}: "
                    f"HTTP {response.status}: {detail}")
            try:
                data = json.loads(response.body.decode("utf-8")) \
                    if response.body else {}
            except ValueError as err:
                raise CoordinatorError(
                    f"unparseable coordinator response for {path}: {err}")
            if not isinstance(data, dict):
                raise CoordinatorError(
                    f"coordinator response for {path} is not an object")
            return data
        raise CoordinatorError(
            f"coordinator {self.base_url} unreachable after "
            f"{self.max_tries} tries: {last_error}")

    def seed(self, groups: Sequence[Sequence[dict]],
             ttl_s: Optional[float] = None, fresh: bool = False) -> dict:
        return self._request("POST", "/work/seed",
                             {"groups": [list(group) for group in groups],
                              "ttl_s": ttl_s, "fresh": fresh})

    def claim(self, worker: str) -> dict:
        return self._request("POST", "/work/claim", {"worker": worker})

    def heartbeat(self, lease_id: str, worker: str) -> dict:
        return self._request("POST", f"/work/{lease_id}/heartbeat",
                             {"worker": worker})

    def done(self, lease_id: str, worker: str,
             cells: Sequence[dict]) -> dict:
        return self._request("POST", f"/work/{lease_id}/done",
                             {"worker": worker, "cells": list(cells)})

    def status(self, since: int = 0) -> dict:
        return self._request("GET", f"/work/status?since={int(since)}")


# --------------------------------------------------------------------------
# the worker: ``python -m repro worker --coordinator URL``
# --------------------------------------------------------------------------

class _Heartbeat:
    """Background lease renewal while a group computes.

    Beats every ``ttl/3`` so a healthy worker misses its deadline only
    after three consecutive failures; a transient miss is harmless (the
    next beat renews), and a lost lease just means the group was
    requeued — the results are still submitted and deduplicated.
    """

    def __init__(self, client: CoordinatorClient, lease_id: str,
                 worker: str, ttl_s: float):
        self._client = client
        self._lease_id = lease_id
        self._worker = worker
        self._interval = max(0.05, ttl_s / 3.0)
        self._stop = threading.Event()
        self.lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._client.heartbeat(self._lease_id,
                                              self._worker).get("ok"):
                    self.lost.set()
                    return
            except CoordinatorError as err:
                logger.warning("heartbeat for %s failed: %s",
                               self._lease_id, err)


def run_worker(
    coordinator: str,
    cache_dir=None,
    name: Optional[str] = None,
    poll_s: float = 0.5,
    exit_when_idle: bool = False,
    max_groups: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """The worker loop: claim → warm once → run cells → store → ack.

    Results are written through a tiered store (local L1 under
    ``cache_dir``, the coordinator itself as the HTTP L2) before the
    lease is acknowledged, so a completed cell is always visible to the
    driver by the time its outcome streams down.  ``exit_when_idle``
    ends the loop once the board has been seeded and fully drained (the
    CI smoke and scripted clusters use it); the default is to keep
    polling for the next sweep.  Returns a process exit code.
    """
    worker = name or default_worker_name()
    client = CoordinatorClient(coordinator)
    store = TieredStore(DirectoryStore(cache_dir),
                        HttpStore(coordinator))
    say = log if log is not None else (lambda _line: None)
    completed = 0
    say(f"worker {worker}: polling {client.base_url}")
    while True:
        try:
            response = client.claim(worker)
        except CoordinatorError as err:
            say(f"worker {worker}: giving up: {err}")
            return 1
        status = response.get("status")
        if status == "lease":
            lease = response.get("lease") or {}
            completed += 1
            _run_lease(client, store, worker, lease, say)
            if max_groups is not None and completed >= max_groups:
                return 0
        elif status == "wait":
            time.sleep(float(response.get("retry_s") or poll_s))
        else:  # empty
            if exit_when_idle and response.get("seeded"):
                say(f"worker {worker}: board drained after "
                    f"{completed} group(s); exiting")
                return 0
            time.sleep(poll_s)


def _run_lease(client: CoordinatorClient, store: ResultStore, worker: str,
               lease: dict, say: Callable[[str], None]) -> None:
    """Execute one leased group and acknowledge it."""
    lease_id = str(lease.get("id"))
    ttl_s = float(lease.get("ttl_s") or DEFAULT_LEASE_TTL_S)
    wire_cells = lease.get("cells") or []
    specs: List[CellSpec] = []
    fingerprints: List[str] = []
    reports: List[dict] = []
    for wire in wire_cells:
        try:
            specs.append(spec_from_dict(wire.get("spec")))
            fingerprints.append(wire["fingerprint"])
        except (ValueError, KeyError, TypeError) as err:
            # un-runnable cell: report it failed so the driver sees it
            # instead of the board requeueing it forever
            reports.append({"fingerprint": wire.get("fingerprint"),
                            "error": f"unrunnable cell: {err}",
                            "stored": False})
    say(f"worker {worker}: lease {lease_id} "
        f"({len(specs)} cells, first {specs[0].label() if specs else '-'})")
    rows = []
    if specs:
        with _Heartbeat(client, lease_id, worker, ttl_s):
            rows = execute_group(specs)
    for fingerprint, row in zip(fingerprints, rows):
        spec, result, elapsed, warm_s, measure_s, backend, error = row
        stored = False
        if result is not None:
            stored = store.put(fingerprint, spec, result, elapsed,
                               backend=backend)
        reports.append({
            "fingerprint": fingerprint,
            "label": spec.label(),
            "elapsed_s": round(elapsed, 4),
            "warm_s": round(warm_s, 4),
            "measure_s": round(measure_s, 4),
            "backend": backend,
            "error": error,
            "stored": stored,
        })
    try:
        client.done(lease_id, worker, reports)
    except CoordinatorError as err:
        # the lease will expire and requeue; our stored results remain
        # visible, so the recomputation shrinks to whatever failed
        say(f"worker {worker}: could not acknowledge {lease_id}: {err}")


# --------------------------------------------------------------------------
# the driver: ``repro sweep --coordinator URL``
# --------------------------------------------------------------------------

def wire_group(group: Sequence[CellSpec],
               fingerprints: Dict[CellSpec, str]) -> List[dict]:
    """One warm group in wire form (fingerprint + serialized spec)."""
    return [{"fingerprint": fingerprints[spec],
             "spec": spec_to_dict(spec)} for spec in group]


def run_distributed(
    cells: Iterable[CellSpec],
    coordinator: str,
    cache_dir=None,
    fresh: bool = False,
    lease_ttl_s: Optional[float] = None,
    poll_s: float = 0.5,
    timeout_s: Optional[float] = None,
    progress=None,
) -> SweepReport:
    """Run a sweep by seeding a coordinator and streaming completions.

    Bit-identical to :func:`~repro.sim.sweep.runner.run_cells` with
    ``jobs=1`` for any worker count and any failure pattern: cached
    cells are satisfied from the tiered store exactly as locally, and
    every miss is computed remotely by the same ``execute_group`` path.
    Blocks until every seeded cell has an outcome (``timeout_s`` bounds
    the wait; ``None`` waits for workers indefinitely).
    """
    started = time.perf_counter()
    store = TieredStore(DirectoryStore(cache_dir), HttpStore(coordinator))
    client = CoordinatorClient(coordinator)
    unique = dedupe_cells(cells)
    fingerprints = {spec: cell_fingerprint(spec) for spec in unique}

    outcomes: Dict[CellSpec, CellOutcome] = {}
    pending: List[CellSpec] = []
    store_misses = 0
    for spec in unique:
        fetched = None
        if not fresh:
            fetched = store.fetch(fingerprints[spec])
            if fetched is None:
                store_misses += 1
        if fetched is not None:
            outcome = CellOutcome(spec, fetched.result, 0.0, "cached",
                                  tier=fetched.tier)
            outcomes[spec] = outcome
            if progress is not None:
                progress(outcome)
        else:
            pending.append(spec)

    groups = warm_groups_of(pending)
    seeded = client.seed([wire_group(group, fingerprints)
                          for group in groups],
                         ttl_s=lease_ttl_s, fresh=fresh)
    logger.info("seeded %s groups (%s cells, %s already known) on %s",
                seeded.get("seeded_groups"), seeded.get("seeded_cells"),
                seeded.get("skipped_cells"), client.base_url)

    waiting = {fingerprints[spec]: spec for spec in pending}
    fetch_retries: Dict[str, int] = {}
    since = 0
    board = client.status()
    while waiting:
        if timeout_s is not None \
                and time.perf_counter() - started > timeout_s:
            raise CoordinatorError(
                f"distributed sweep timed out with {len(waiting)} cells "
                f"outstanding after {timeout_s:.0f}s")
        board = client.status(since)
        since = board["totals"]["outcome_seq"]
        progressed = False
        for row in board.get("outcomes", []):
            fingerprint = row.get("fingerprint")
            spec = waiting.get(fingerprint)
            if spec is None:
                continue  # another driver's cell, or a duplicate
            if row.get("error"):
                outcome = CellOutcome(spec, None, 0.0, "failed",
                                      row["error"], worker=row.get("worker"))
            else:
                result = store.get(fingerprint)
                if result is None:
                    # done raced the PUT's visibility (or the entry was
                    # pruned between ack and fetch): retry a few polls,
                    # then surface the loss instead of spinning forever
                    tries = fetch_retries.get(fingerprint, 0) + 1
                    fetch_retries[fingerprint] = tries
                    if tries < 5:
                        continue
                    outcome = CellOutcome(
                        spec, None, 0.0, "failed",
                        "completed remotely but the result never "
                        "appeared in the store", worker=row.get("worker"))
                else:
                    outcome = CellOutcome(
                        spec, result, row.get("elapsed_s", 0.0), "run",
                        warm_s=row.get("warm_s", 0.0),
                        measure_s=row.get("measure_s", 0.0),
                        backend=row.get("backend"),
                        worker=row.get("worker"),
                    )
            del waiting[fingerprint]
            outcomes[spec] = outcome
            progressed = True
            if progress is not None:
                progress(outcome)
        if waiting and not progressed:
            time.sleep(poll_s)

    totals = board.get("totals", {})
    workers = {name: {key: value for key, value in stats.items()
                      if key != "last_seen"}
               for name, stats in board.get("workers", {}).items()}
    ordered = [outcomes[spec] for spec in unique]
    return SweepReport(
        outcomes=ordered,
        jobs=max(1, len(workers)),
        elapsed_s=time.perf_counter() - started,
        warm_groups=len(groups),
        steals=totals.get("splits", 0),
        store_used=True,
        store_misses=store_misses,
        requeues=totals.get("requeues", 0),
        workers=workers,
    )
