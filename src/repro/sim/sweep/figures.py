"""Declarative cell grids for the paper's figures.

One function per figure returns the exact list of :class:`CellSpec` cells
that figure needs; :func:`figure_cells` dispatches by name.  The grids
mirror the benchmark harness in ``benchmarks/`` cell for cell, so a sweep
primed here leaves the harness (and any other figure sharing rows — e.g.
Figure 4 reuses Figure 3's 256 KB and 4 MB columns, Figure 5 its 1 MB
column) nothing left to compute.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...common.config import KB, MB, SchemeKind
from ...workloads.spec import BENCHMARK_ORDER
from .spec import CellSpec

#: Figure 3 sweeps these L2 geometries over base/chash/naive.
FIG3_L2_SIZES = (256 * KB, 1 * MB, 4 * MB)
FIG3_L2_BLOCKS = (64, 128)
FIG3_SCHEMES = (SchemeKind.BASE, SchemeKind.CHASH, SchemeKind.NAIVE)

#: Figure 6 sweeps the hash-engine throughput (GB/s) at 1 MB / 64 B.
FIG6_THROUGHPUTS = (6.4, 3.2, 1.6, 0.8)

#: Figure 7 sweeps the hash read/write buffer depth at 1 MB / 64 B.
FIG7_BUFFER_SIZES = (1, 2, 4, 8, 16, 32)

#: Figure 8 compares the reduced-memory-overhead schemes at 1 MB.
FIG8_VARIANTS = (
    ("c-64B", SchemeKind.CHASH, 64, None),
    ("c-128B", SchemeKind.CHASH, 128, None),
    ("m-64B", SchemeKind.MHASH, 64, 2),
    ("i-64B", SchemeKind.IHASH, 64, 2),
)


def _benchmarks(benchmarks: Optional[Iterable[str]]) -> List[str]:
    return list(BENCHMARK_ORDER) if benchmarks is None else list(benchmarks)


def fig3_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """IPC across six L2 geometries x three schemes (the headline grid)."""
    return [
        CellSpec(bench, scheme, l2_size=size, l2_block=block,
                 instructions=instructions)
        for block in FIG3_L2_BLOCKS
        for size in FIG3_L2_SIZES
        for scheme in FIG3_SCHEMES
        for bench in _benchmarks(benchmarks)
    ]


def fig4_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """L2 data miss-rates, base vs chash at 256 KB and 4 MB (fig3 subset)."""
    return [
        CellSpec(bench, scheme, l2_size=size, l2_block=64,
                 instructions=instructions)
        for size in (256 * KB, 4 * MB)
        for scheme in (SchemeKind.BASE, SchemeKind.CHASH)
        for bench in _benchmarks(benchmarks)
    ]


def fig5_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """Memory bandwidth of verification at 1 MB / 64 B (fig3 subset)."""
    return [
        CellSpec(bench, scheme, l2_size=1 * MB, l2_block=64,
                 instructions=instructions)
        for scheme in FIG3_SCHEMES
        for bench in _benchmarks(benchmarks)
    ]


def fig6_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """chash IPC as the hash engine slows from 6.4 to 0.8 GB/s."""
    return [
        CellSpec(bench, SchemeKind.CHASH, l2_size=1 * MB, l2_block=64,
                 hash_throughput=throughput, instructions=instructions)
        for throughput in FIG6_THROUGHPUTS
        for bench in _benchmarks(benchmarks)
    ]


def fig7_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """chash IPC as the hash buffers shrink from 32 entries to 1."""
    return [
        CellSpec(bench, SchemeKind.CHASH, l2_size=1 * MB, l2_block=64,
                 buffer_entries=entries, instructions=instructions)
        for entries in FIG7_BUFFER_SIZES
        for bench in _benchmarks(benchmarks)
    ]


def fig8_cells(benchmarks: Optional[Iterable[str]] = None,
               instructions: int = 12_000) -> List[CellSpec]:
    """The reduced-memory-overhead schemes (c/m/i) against base at 1 MB."""
    cells = [
        CellSpec(bench, SchemeKind.BASE, l2_size=1 * MB, l2_block=64,
                 instructions=instructions)
        for bench in _benchmarks(benchmarks)
    ]
    for _label, scheme, block, blocks_per_chunk in FIG8_VARIANTS:
        cells.extend(
            CellSpec(bench, scheme, l2_size=1 * MB, l2_block=block,
                     blocks_per_chunk=blocks_per_chunk,
                     instructions=instructions)
            for bench in _benchmarks(benchmarks)
        )
    return cells


FIGURES: Dict[str, object] = {
    "fig3": fig3_cells,
    "fig4": fig4_cells,
    "fig5": fig5_cells,
    "fig6": fig6_cells,
    "fig7": fig7_cells,
    "fig8": fig8_cells,
}


def figure_cells(figure: str,
                 benchmarks: Optional[Iterable[str]] = None,
                 instructions: int = 12_000) -> List[CellSpec]:
    """The cell grid for ``figure`` (``"fig3"`` .. ``"fig8"`` or ``"all"``).

    ``"all"`` concatenates every figure's grid; the runner dedupes the
    generous overlap (fig4/fig5 are fig3 subsets; fig6/7/8 share their
    1 MB chash column with fig3).
    """
    if figure == "all":
        cells: List[CellSpec] = []
        for build in FIGURES.values():
            cells.extend(build(benchmarks, instructions))
        return cells
    try:
        build = FIGURES[figure]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise ValueError(f"unknown figure {figure!r} (known: {known}, all)")
    return build(benchmarks, instructions)
