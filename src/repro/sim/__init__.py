"""Full-system simulation: systems, results, and experiment sweeps."""

from .results import SimResult
from .sweep import baseline_of, run_grid
from .system import (
    MEASURE_PATH_ENV,
    SimulatedSystem,
    WarmState,
    default_warmup,
    packed_measure_default,
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)

__all__ = [
    "SimResult",
    "baseline_of",
    "run_grid",
    "MEASURE_PATH_ENV",
    "SimulatedSystem",
    "WarmState",
    "default_warmup",
    "packed_measure_default",
    "prepare_warm_state",
    "run_benchmark",
    "run_from_warm_state",
]
