"""Full-system simulation: systems, results, and experiment sweeps."""

from .results import SimResult
from .sweep import baseline_of, run_grid
from .system import SimulatedSystem, run_benchmark

__all__ = [
    "SimResult",
    "baseline_of",
    "run_grid",
    "SimulatedSystem",
    "run_benchmark",
]
