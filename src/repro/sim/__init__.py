"""Full-system simulation: systems, results, and experiment sweeps."""

from .results import SimResult
from .sweep import baseline_of, run_grid
from .system import (
    SimulatedSystem,
    WarmState,
    default_warmup,
    prepare_warm_state,
    run_benchmark,
    run_from_warm_state,
)

__all__ = [
    "SimResult",
    "baseline_of",
    "run_grid",
    "SimulatedSystem",
    "WarmState",
    "default_warmup",
    "prepare_warm_state",
    "run_benchmark",
    "run_from_warm_state",
]
