"""Full-system simulator: config + workload in, :class:`SimResult` out.

This is the top of the timing stack — the equivalent of the paper's
modified SimpleScalar run.  It owns cache warm-up (the paper fast-forwards
1.5 billion instructions; we warm structures with a prefix of the same
instruction stream before measuring).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..cache.hierarchy import DEFAULT_PROTECTED_BYTES, MemoryHierarchy
from ..common.config import SystemConfig
from ..cpu.isa import Instruction
from ..cpu.ooo import CoreResult, OutOfOrderCore
from ..kernels import load_ops, resolve_kernels
from ..workloads.generators import InstructionStream, WorkloadProfile
from ..workloads.spec import SPEC_PROFILES
from .results import SimResult

#: Environment switch for the measured path: ``REPRO_MEASURE=object``
#: routes :meth:`SimulatedSystem.run_stream` (and therefore
#: :func:`run_benchmark`, :func:`run_from_warm_state` and every sweep
#: cell) through the historical per-:class:`Instruction` oracle path
#: instead of the packed columns.  Results are bit-identical either way
#: (``tests/test_measured_packed.py`` proves it); the flag exists so the
#: oracle stays one environment variable away.
MEASURE_PATH_ENV = "REPRO_MEASURE"


def packed_measure_default() -> bool:
    """Whether measured runs use the packed fast path by default.

    Unknown values raise rather than silently selecting a path — a typo
    like ``REPRO_MEASURE=obj`` must not send a whole sweep down the fast
    path while the operator believes the oracle is running.
    """
    value = os.environ.get(MEASURE_PATH_ENV, "packed")
    if value not in ("packed", "object"):
        raise ValueError(
            f"unknown measured path {value!r} (from ${MEASURE_PATH_ENV}); "
            f"valid values: packed, object"
        )
    return value != "object"


class SimulatedSystem:
    """One machine instance: build once, run one instruction stream."""

    def __init__(self, config: SystemConfig,
                 protected_bytes: int = DEFAULT_PROTECTED_BYTES):
        self.config = config
        self.hierarchy = MemoryHierarchy(config, protected_bytes)
        self.core = OutOfOrderCore(config.core, self.hierarchy)

    def run(self, instructions: Sequence[Instruction],
            benchmark: str = "custom", start_cycle: int = 0) -> SimResult:
        """Run materialized :class:`Instruction` objects (the oracle path)."""
        result = self.core.run(instructions, start_cycle=start_cycle)
        return self._result(benchmark, result)

    def run_stream(self, stream: InstructionStream, count: int,
                   benchmark: str = "custom", start_cycle: int = 0,
                   packed: Optional[bool] = None,
                   kernels: Optional[str] = None) -> SimResult:
        """Measure the next ``count`` instructions of ``stream``.

        The default routes through the packed measured path
        (:meth:`InstructionStream.take_packed` columns scheduled by a
        kernel backend — see :meth:`run_chunks`) — no
        :class:`Instruction` object is ever allocated, and the
        :class:`SimResult` is bit-identical to the object path.
        ``packed=False`` (or ``REPRO_MEASURE=object`` in the environment)
        selects the historical object path as an oracle; ``kernels``
        picks the column backend for the packed route (see
        :func:`repro.kernels.resolve_kernels`).
        """
        if packed is None:
            packed = packed_measure_default()
        if packed:
            return self.run_chunks(stream.take_packed(count),
                                   benchmark=benchmark,
                                   start_cycle=start_cycle, kernels=kernels)
        result = self.core.run(stream.take(count), start_cycle=start_cycle)
        return self._result(benchmark, result)

    def run_chunks(self, chunks, benchmark: str = "custom",
                   start_cycle: int = 0,
                   kernels: Optional[str] = None) -> SimResult:
        """Measure pre-packed column ``chunks`` through a kernel backend.

        ``chunks`` is an iterable (or cached list — see
        :meth:`WarmState.measured_chunks`) of column tuples from
        :meth:`InstructionStream.take_packed`.  ``kernels`` resolves via
        :func:`repro.kernels.resolve_kernels`: ``packed`` replays the
        interpreted packed oracle (:meth:`OutOfOrderCore.run_packed
        <repro.cpu.ooo.OutOfOrderCore.run_packed>`); ``numpy`` and
        ``fallback`` schedule through the vectorized twin
        (:meth:`OutOfOrderCore.run_vec <repro.cpu.ooo.OutOfOrderCore.run_vec>`).
        All backends are bit-identical.
        """
        backend = resolve_kernels(kernels)
        if backend == "packed":
            result = self.core.run_packed(chunks, start_cycle=start_cycle)
        else:
            result = self.core.run_vec(chunks, start_cycle=start_cycle,
                                       ops=load_ops(backend))
        return self._result(benchmark, result)

    def _result(self, benchmark: str, result: CoreResult) -> SimResult:
        stats = self.hierarchy.all_stats()
        stats.update(self.core.stats.as_dict())
        return SimResult(
            benchmark=benchmark,
            scheme=self.config.scheme.value,
            config=self.config,
            instructions=result.instructions,
            cycles=result.cycles,
            stats=stats,
        )


def default_warmup(config: SystemConfig) -> int:
    """Warm-up length for ``config``: enough instructions to fill the L2
    even for a streaming workload (~16 instructions per block), essential
    so large caches reach steady-state dirty-eviction behaviour."""
    return 16 * config.l2.n_blocks + 200_000


def run_benchmark(
    config: SystemConfig,
    benchmark: str,
    instructions: int = 20_000,
    warmup: Optional[int] = None,
    seed: int = 0,
    profile: Optional[WorkloadProfile] = None,
    protected_bytes: int = DEFAULT_PROTECTED_BYTES,
    kernels: Optional[str] = None,
) -> SimResult:
    """Run one (config, benchmark) pair with cache warm-up.

    The warm-up prefix is replayed *functionally* — caches, TLBs and the
    scheme's L2 hash blocks all evolve through the real code paths, but
    the bus and hash engine are free — standing in for the paper's
    1.5-billion-instruction fast-forward.  Counters reset at the boundary,
    so only the measured suffix defines IPC and traffic.

    The prefix replays through the packed fast path
    (:meth:`InstructionStream.packed` feeding
    :meth:`MemoryHierarchy.warm_packed`): no ``Instruction`` objects are
    allocated, and the end state is bit-identical to the historical
    object-stream warm-up.  The measured suffix then runs through the
    packed measured path (see :meth:`SimulatedSystem.run_stream`) unless
    ``REPRO_MEASURE=object`` requests the per-object oracle.

    ``warmup`` defaults to :func:`default_warmup`.
    """
    system, stream = _warmed_system(config, benchmark, warmup, seed, profile,
                                    protected_bytes, kernels=kernels)
    return system.run_stream(stream, instructions, benchmark=benchmark,
                             kernels=kernels)


def _warmed_system(
    config: SystemConfig,
    benchmark: str,
    warmup: Optional[int],
    seed: int,
    profile: Optional[WorkloadProfile],
    protected_bytes: int,
    kernels: Optional[str] = None,
) -> Tuple[SimulatedSystem, InstructionStream]:
    """Build a system, pre-sweep + warm it, and park the instruction stream
    at the measurement boundary."""
    if profile is None:
        profile = SPEC_PROFILES[benchmark]
    if warmup is None:
        warmup = default_warmup(config)
    system = SimulatedSystem(config, protected_bytes)
    if profile.pattern in ("stream", "mixed"):
        _presweep_stream(system, profile)
    stream = InstructionStream(profile, seed)
    if warmup:
        backend = resolve_kernels(kernels)
        chunks = stream.packed(warmup, line_bytes=config.l1i.block_bytes)
        if backend == "packed":
            system.hierarchy.warm_packed(chunks)
        else:
            system.hierarchy.warm_vec(chunks, load_ops(backend))
        _reset_counters(system)
    return system, stream


@dataclass
class WarmState:
    """A warmed hierarchy snapshot plus the parked instruction stream.

    Everything here is a function of the *warm key*
    (:func:`~repro.sim.sweep.fingerprint.warm_fingerprint` fields:
    geometry, scheme + tree layout, workload, seed, warm-up length) — not
    of bus/DRAM/hash timing — so one ``WarmState`` serves every sweep cell
    sharing that key.  :attr:`snapshot` and :attr:`stream_state` are
    immutable with respect to :func:`run_from_warm_state`: restoring is
    copy-on-read, so a state can seed any number of cells in any order.
    """

    profile: WorkloadProfile
    warmup: int
    seed: int
    protected_bytes: int
    #: :meth:`MemoryHierarchy.snapshot` taken at the measurement boundary.
    snapshot: dict
    #: :meth:`InstructionStream.state` at the same boundary.
    stream_state: tuple
    #: Packed measured-suffix traces keyed by instruction count — a pure
    #: cache (the stream is deterministic from :attr:`stream_state`), so
    #: cells and repeats sharing this state replay one generation pass.
    _traces: dict = field(default_factory=dict, repr=False, compare=False)

    def measured_chunks(self, instructions: int) -> list:
        """The packed measured suffix of length ``instructions``.

        Generated once per distinct count via
        :meth:`InstructionStream.take_packed` from the parked
        :attr:`stream_state`, then reused by every cell and repeat that
        measures the same suffix — trace generation is roughly half the
        per-cell cost of an L2-resident measured run, and it is identical
        across all timing-only cell parameters.
        """
        chunks = self._traces.get(instructions)
        if chunks is None:
            stream = InstructionStream.from_state(self.profile,
                                                  self.stream_state)
            chunks = list(stream.take_packed(instructions))
            self._traces[instructions] = chunks
        return chunks


def prepare_warm_state(
    config: SystemConfig,
    benchmark: str,
    warmup: Optional[int] = None,
    seed: int = 0,
    profile: Optional[WorkloadProfile] = None,
    protected_bytes: int = DEFAULT_PROTECTED_BYTES,
    kernels: Optional[str] = None,
) -> WarmState:
    """Run the warm-up once and capture a reusable :class:`WarmState`."""
    if profile is None:
        profile = SPEC_PROFILES[benchmark]
    if warmup is None:
        warmup = default_warmup(config)
    system, stream = _warmed_system(config, benchmark, warmup, seed, profile,
                                    protected_bytes, kernels=kernels)
    return WarmState(
        profile=profile,
        warmup=warmup,
        seed=seed,
        protected_bytes=protected_bytes,
        snapshot=system.hierarchy.snapshot(),
        stream_state=stream.state(),
    )


def run_from_warm_state(
    config: SystemConfig,
    benchmark: str,
    warm_state: WarmState,
    instructions: int = 20_000,
    kernels: Optional[str] = None,
) -> SimResult:
    """Measure one cell from a shared :class:`WarmState`.

    Builds a fresh system for ``config`` (which may differ from the
    warming config in any timing-only parameter), restores the warmed
    hierarchy state, resumes the instruction stream at the measurement
    boundary and runs the measured suffix — bit-identical to
    :func:`run_benchmark` warming this cell from scratch.

    Vectorized kernel backends (``numpy``/``fallback``, the default)
    replay the suffix from :meth:`WarmState.measured_chunks`, so trace
    generation is shared across every cell and repeat on this state.  The
    ``packed`` oracle backend — and ``REPRO_MEASURE=object`` — regenerate
    the stream each run, preserving the pre-kernel reference pipeline.
    """
    system = SimulatedSystem(config, warm_state.protected_bytes)
    system.hierarchy.restore(warm_state.snapshot)
    if packed_measure_default():
        backend = resolve_kernels(kernels)
        if backend != "packed":
            return system.run_chunks(
                warm_state.measured_chunks(instructions),
                benchmark=benchmark, kernels=backend)
    stream = InstructionStream.from_state(warm_state.profile,
                                          warm_state.stream_state)
    return system.run_stream(stream, instructions, benchmark=benchmark,
                             kernels=kernels)


def _presweep_stream(system: SimulatedSystem, profile: WorkloadProfile) -> None:
    """One block-stride traversal of a streaming footprint, timing off.

    Streaming benchmarks sweep arrays much larger than any L2; in steady
    state every new block displaces a block dirtied one sweep ago.  An
    instruction-level warm-up long enough for the cursors to wrap would
    cost millions of instructions, so the sweep's end state is produced
    directly: every block of the footprint is loaded, and the write
    stream's blocks are stored, through the ordinary (scheme-aware) paths.
    """
    hierarchy = system.hierarchy
    hierarchy.set_warm_mode(True)
    try:
        base = profile.code_bytes
        half = profile.footprint_bytes // 2
        writes_blocks = profile.store_fraction > 0
        load, store = hierarchy.load, hierarchy.store
        full_block = bool(profile.stream_store_fraction)
        for offset in range(0, profile.footprint_bytes, 64):
            load(base + offset, 0)
            if writes_blocks:
                store(base + (offset + half) % profile.footprint_bytes, 0,
                      full_block=full_block)
    finally:
        hierarchy.set_warm_mode(False)


def _reset_counters(system: SimulatedSystem) -> None:
    """Zero statistics after warm-up, keeping cache/TLB/bus state."""
    hierarchy = system.hierarchy
    for group in (
        hierarchy.l1i.stats, hierarchy.l1d.stats, hierarchy.l2.stats,
        hierarchy.itlb.stats, hierarchy.dtlb.stats,
        hierarchy.memory.stats, hierarchy.engine.stats,
        hierarchy.scheme.stats, hierarchy.stats, system.core.stats,
    ):
        group.reset()
