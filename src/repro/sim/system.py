"""Full-system simulator: config + workload in, :class:`SimResult` out.

This is the top of the timing stack — the equivalent of the paper's
modified SimpleScalar run.  It owns cache warm-up (the paper fast-forwards
1.5 billion instructions; we warm structures with a prefix of the same
instruction stream before measuring).
"""

from __future__ import annotations

from itertools import islice
from typing import Optional, Sequence

from ..cache.hierarchy import DEFAULT_PROTECTED_BYTES, MemoryHierarchy
from ..common.config import SystemConfig
from ..cpu.isa import Instruction
from ..cpu.ooo import OutOfOrderCore
from ..workloads.generators import WorkloadProfile, generate_instructions
from ..workloads.spec import SPEC_PROFILES
from .results import SimResult


class SimulatedSystem:
    """One machine instance: build once, run one instruction stream."""

    def __init__(self, config: SystemConfig,
                 protected_bytes: int = DEFAULT_PROTECTED_BYTES):
        self.config = config
        self.hierarchy = MemoryHierarchy(config, protected_bytes)
        self.core = OutOfOrderCore(config.core, self.hierarchy)

    def run(self, instructions: Sequence[Instruction],
            benchmark: str = "custom", start_cycle: int = 0) -> SimResult:
        result = self.core.run(instructions, start_cycle=start_cycle)
        stats = self.hierarchy.all_stats()
        stats.update(self.core.stats.as_dict())
        return SimResult(
            benchmark=benchmark,
            scheme=self.config.scheme.value,
            config=self.config,
            instructions=result.instructions,
            cycles=result.cycles,
            stats=stats,
        )


def run_benchmark(
    config: SystemConfig,
    benchmark: str,
    instructions: int = 20_000,
    warmup: Optional[int] = None,
    seed: int = 0,
    profile: Optional[WorkloadProfile] = None,
    protected_bytes: int = DEFAULT_PROTECTED_BYTES,
) -> SimResult:
    """Run one (config, benchmark) pair with cache warm-up.

    The warm-up prefix is replayed *functionally* — caches, TLBs and the
    scheme's L2 hash blocks all evolve through the real code paths, but
    the bus and hash engine are free — standing in for the paper's
    1.5-billion-instruction fast-forward.  Counters reset at the boundary,
    so only the measured suffix defines IPC and traffic.

    ``warmup`` defaults to enough instructions to fill the L2 even for a
    streaming workload (~16 instructions per block) — essential so that
    large caches reach steady-state dirty-eviction behaviour.
    """
    if profile is None:
        profile = SPEC_PROFILES[benchmark]
    if warmup is None:
        warmup = 16 * config.l2.n_blocks + 200_000
    needs_presweep = profile.pattern in ("stream", "mixed")
    system = SimulatedSystem(config, protected_bytes)
    if needs_presweep:
        _presweep_stream(system, profile)
    # Stream the warm-up prefix straight from the generator: the prefix can
    # run to millions of instructions for large L2s, so it is never
    # materialized — only the measured suffix becomes a list for the core.
    stream = generate_instructions(profile, warmup + instructions, seed)
    if warmup:
        system.hierarchy.warm(islice(stream, warmup))
        _reset_counters(system)
    return system.run(list(stream), benchmark=benchmark)


def _presweep_stream(system: SimulatedSystem, profile: WorkloadProfile) -> None:
    """One block-stride traversal of a streaming footprint, timing off.

    Streaming benchmarks sweep arrays much larger than any L2; in steady
    state every new block displaces a block dirtied one sweep ago.  An
    instruction-level warm-up long enough for the cursors to wrap would
    cost millions of instructions, so the sweep's end state is produced
    directly: every block of the footprint is loaded, and the write
    stream's blocks are stored, through the ordinary (scheme-aware) paths.
    """
    hierarchy = system.hierarchy
    hierarchy.set_warm_mode(True)
    try:
        base = profile.code_bytes
        half = profile.footprint_bytes // 2
        writes_blocks = profile.store_fraction > 0
        load, store = hierarchy.load, hierarchy.store
        full_block = bool(profile.stream_store_fraction)
        for offset in range(0, profile.footprint_bytes, 64):
            load(base + offset, 0)
            if writes_blocks:
                store(base + (offset + half) % profile.footprint_bytes, 0,
                      full_block=full_block)
    finally:
        hierarchy.set_warm_mode(False)


def _reset_counters(system: SimulatedSystem) -> None:
    """Zero statistics after warm-up, keeping cache/TLB/bus state."""
    hierarchy = system.hierarchy
    for group in (
        hierarchy.l1i.stats, hierarchy.l1d.stats, hierarchy.l2.stats,
        hierarchy.itlb.stats, hierarchy.dtlb.stats,
        hierarchy.memory.stats, hierarchy.engine.stats,
        hierarchy.scheme.stats, hierarchy.stats, system.core.stats,
    ):
        group.reset()
