"""Result tables and the experiment registry."""

from .experiments import EXPERIMENTS, Experiment, experiment_index_markdown
from .perf import (
    TRAJECTORY_DEFAULT,
    append_trajectory_row,
    compare_bench,
    host_fingerprint,
    load_trajectory,
    ratchet_bench,
    trajectory_baseline,
)
from .tables import (
    format_table,
    ipc_table,
    metric_table,
    relative_ipc_table,
    series_table,
    sweep_ipc_table,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "TRAJECTORY_DEFAULT",
    "append_trajectory_row",
    "compare_bench",
    "host_fingerprint",
    "load_trajectory",
    "ratchet_bench",
    "trajectory_baseline",
    "experiment_index_markdown",
    "format_table",
    "ipc_table",
    "metric_table",
    "relative_ipc_table",
    "series_table",
    "sweep_ipc_table",
]
