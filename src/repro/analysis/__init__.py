"""Result tables and the experiment registry."""

from .experiments import EXPERIMENTS, Experiment, experiment_index_markdown
from .perf import compare_bench
from .tables import (
    format_table,
    ipc_table,
    metric_table,
    relative_ipc_table,
    series_table,
    sweep_ipc_table,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "compare_bench",
    "experiment_index_markdown",
    "format_table",
    "ipc_table",
    "metric_table",
    "relative_ipc_table",
    "series_table",
    "sweep_ipc_table",
]
