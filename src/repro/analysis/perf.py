"""Regression gate against the committed perf baselines.

``python -m repro bench --compare BENCH_measure.json`` re-measures the
kernels pipeline for every cell recorded in the baseline and fails when
any cell got more than :data:`DEFAULT_TOLERANCE` slower.  The baseline
is CPU time on the machine that produced it, so an *absolute* gate would
be meaningless across machines — the gate is meant for A/B runs on one
machine (the opt-in CI perf job re-records a fresh baseline first and
compares a candidate tree against it, see ``.github/workflows/ci.yml``).

Comparison is column-matched: a host without numpy compares its
fallback time against the baseline's ``kernels_fallback_s``, never
against a numpy number it cannot reproduce.
"""

from __future__ import annotations

import gc
import json
import time
from typing import List, Tuple

from ..common.config import SchemeKind, table1_config
from ..kernels import resolve_kernels
from ..sim.system import prepare_warm_state, run_from_warm_state

#: per-cell slowdown beyond which the gate fails (>20 %).
DEFAULT_TOLERANCE = 0.20

#: baseline sections holding per-cell records, in report order.
SECTIONS = ("machinery", "end_to_end")


def _measure_cell(key: str, cell: dict, backend: str,
                  repeats: int) -> float:
    """Best-of-N CPU seconds of one baseline cell's kernels pipeline."""
    scheme_name, benchmark = key.split("/", 1)
    config = table1_config(SchemeKind(scheme_name))
    state = prepare_warm_state(config, benchmark, warmup=cell["warmup"])
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        start = time.process_time()
        run_from_warm_state(config, benchmark, state,
                            instructions=cell["instructions"],
                            kernels=backend)
        best = min(best, time.process_time() - start)
        gc.enable()
    return best


def _baseline_seconds(cell: dict, backend: str) -> float:
    """The baseline column matching ``backend`` (see module docstring)."""
    if backend == "numpy" and cell.get("kernels_numpy_s") is not None:
        return cell["kernels_numpy_s"]
    return cell["kernels_fallback_s"]


def compare_bench(path: str, tolerance: float = DEFAULT_TOLERANCE,
                  repeats: int = 5) -> Tuple[List[str], bool]:
    """Re-measure every baseline cell and diff against its recorded time.

    Returns the report lines and whether every cell stayed within
    ``tolerance`` of its baseline.
    """
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    backend = resolve_kernels(None)
    lines = [f"perf gate: {path} vs current tree "
             f"({backend} backend, best of {repeats}, "
             f"tolerance +{tolerance:.0%})"]
    ok = True
    for section in SECTIONS:
        for key, cell in sorted(baseline.get(section, {}).items()):
            base_s = _baseline_seconds(cell, backend)
            now_s = _measure_cell(key, cell, backend, repeats)
            ratio = now_s / base_s
            regressed = ratio > 1.0 + tolerance
            ok = ok and not regressed
            verdict = "REGRESSION" if regressed else "ok"
            lines.append(f"  {key:12s} baseline {base_s:6.3f}s  "
                         f"now {now_s:6.3f}s  ({ratio:5.2f}x)  {verdict}")
    lines.append("perf gate: " + ("PASS" if ok else "FAIL"))
    return lines, ok
