"""Regression gates against the committed perf baselines.

Two gates live here:

* ``python -m repro bench --compare BENCH_measure.json`` re-measures the
  kernels pipeline for every cell recorded in the baseline and fails
  when any cell got more than :data:`DEFAULT_TOLERANCE` slower.  The
  baseline is CPU time on the machine that produced it, so an
  *absolute* gate would be meaningless across machines — the gate is
  meant for A/B runs on one machine (the CI perf job re-records a fresh
  baseline first and compares a candidate tree against it, see
  ``.github/workflows/ci.yml``).  Comparison is column-matched: a host
  without numpy compares its fallback time against the baseline's
  ``kernels_fallback_s``, never against a numpy number it cannot
  reproduce.

* ``python -m repro bench --ratchet`` — the **perf-trajectory ratchet**.
  ``BENCH_trajectory.json`` accumulates one row per recorded run (git
  SHA, host fingerprint, backend, per-cell CPU seconds); the ratchet
  re-measures the :data:`RATCHET_CELLS` and fails when any cell is more
  than the tolerance slower than the *best* committed row for this
  host+backend.  Every run appends its own row, so an improvement
  automatically becomes the new floor — speedups ratchet, regressions
  fail loudly.  Rows from other hosts or backends are kept (they are
  the trajectory) but never compared against: absolute times only mean
  something on the machine that produced them.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Tuple

from ..common.config import SchemeKind, table1_config
from ..kernels import resolve_kernels
from ..sim.system import prepare_warm_state, run_from_warm_state

#: per-cell slowdown beyond which the gates fail (>20 %).
DEFAULT_TOLERANCE = 0.20

#: baseline sections holding per-cell records, in report order.
SECTIONS = ("machinery", "end_to_end")

#: default trajectory file, committed at the repo root.
TRAJECTORY_DEFAULT = "BENCH_trajectory.json"

#: trajectory file schema (bump on incompatible row changes).
TRAJECTORY_SCHEMA = 1

#: the ratchet's measurement geometry — matches the perf benchmarks in
#: ``benchmarks/test_perf_measure.py`` so their recorded rows feed the
#: same baseline pool.
RATCHET_INSTRUCTIONS = 400_000
RATCHET_WARMUP = 50_000

#: cells the ratchet gate re-measures: the L2-resident machinery cells
#: (suffix-bound — where kernel regressions show first) plus one
#: memory-bound end-to-end cell (where hierarchy regressions show).
RATCHET_CELLS: Dict[str, dict] = {
    key: {"instructions": RATCHET_INSTRUCTIONS, "warmup": RATCHET_WARMUP}
    for key in ("base/gzip", "chash/gzip", "chash/twolf", "chash/swim")
}

#: best-of-N repeats for one ratchet measurement.
RATCHET_REPEATS = 3


def _measure_cell(key: str, cell: dict, backend: str,
                  repeats: int) -> float:
    """Best-of-N CPU seconds of one baseline cell's kernels pipeline."""
    scheme_name, benchmark = key.split("/", 1)
    config = table1_config(SchemeKind(scheme_name))
    state = prepare_warm_state(config, benchmark, warmup=cell["warmup"])
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        start = time.process_time()
        run_from_warm_state(config, benchmark, state,
                            instructions=cell["instructions"],
                            kernels=backend)
        best = min(best, time.process_time() - start)
        gc.enable()
    return best


def _baseline_seconds(cell: dict, backend: str) -> float:
    """The baseline column matching ``backend`` (see module docstring)."""
    if backend == "numpy" and cell.get("kernels_numpy_s") is not None:
        return cell["kernels_numpy_s"]
    return cell["kernels_fallback_s"]


def compare_bench(path: str, tolerance: float = DEFAULT_TOLERANCE,
                  repeats: int = 5) -> Tuple[List[str], bool]:
    """Re-measure every baseline cell and diff against its recorded time.

    Returns the report lines and whether every cell stayed within
    ``tolerance`` of its baseline.
    """
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    backend = resolve_kernels(None)
    lines = [f"perf gate: {path} vs current tree "
             f"({backend} backend, best of {repeats}, "
             f"tolerance +{tolerance:.0%})"]
    ok = True
    for section in SECTIONS:
        for key, cell in sorted(baseline.get(section, {}).items()):
            base_s = _baseline_seconds(cell, backend)
            now_s = _measure_cell(key, cell, backend, repeats)
            ratio = now_s / base_s
            regressed = ratio > 1.0 + tolerance
            ok = ok and not regressed
            verdict = "REGRESSION" if regressed else "ok"
            lines.append(f"  {key:12s} baseline {base_s:6.3f}s  "
                         f"now {now_s:6.3f}s  ({ratio:5.2f}x)  {verdict}")
    lines.append("perf gate: " + ("PASS" if ok else "FAIL"))
    return lines, ok


# --------------------------------------------------------------------------
# the perf-trajectory ratchet
# --------------------------------------------------------------------------

def host_fingerprint() -> str:
    """Short stable id of this machine class for baseline matching.

    Hashes the properties that make absolute CPU times comparable —
    architecture, OS, CPU count, Python implementation and major.minor —
    so a trajectory row recorded on a different class of machine is
    never used as this machine's baseline.
    """
    payload = {
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
        "python": platform.python_implementation(),
        "version": ".".join(platform.python_version_tuple()[:2]),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def current_git_sha() -> str:
    """The checked-out commit, or ``unknown`` outside a git work tree."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def load_trajectory(path: str) -> List[dict]:
    """Every committed trajectory row; an unreadable file is empty."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return []
    rows = data.get("rows") if isinstance(data, dict) else None
    return [row for row in rows if isinstance(row, dict)] \
        if isinstance(rows, list) else []


def append_trajectory_row(path: str, cells: Dict[str, dict], backend: str,
                          host: Optional[str] = None,
                          git_sha: Optional[str] = None) -> dict:
    """Append one recorded run to the trajectory file (atomically).

    ``cells`` maps ``scheme/benchmark`` to
    ``{"instructions", "warmup", "seconds"}``.  Returns the appended row.
    """
    row = {
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "host": host if host is not None else host_fingerprint(),
        "backend": backend,
        "python": platform.python_version(),
        "cells": {key: dict(cells[key]) for key in sorted(cells)},
    }
    rows = load_trajectory(path)
    rows.append(row)
    payload = json.dumps({"schema": TRAJECTORY_SCHEMA, "rows": rows},
                         indent=2, sort_keys=True)
    tmp = f"{path}.tmp{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return row


def trajectory_baseline(rows: List[dict], host: str, backend: str,
                        cells: Dict[str, dict]) -> Dict[str, float]:
    """Best (minimum) committed seconds per cell for ``host``+``backend``.

    Only rows whose measurement geometry (instructions, warmup) matches
    ``cells`` count — a row recorded with a different window is a
    different experiment, not a baseline.
    """
    best: Dict[str, float] = {}
    for row in rows:
        if row.get("host") != host or row.get("backend") != backend:
            continue
        row_cells = row.get("cells")
        if not isinstance(row_cells, dict):
            continue
        for key, wanted in cells.items():
            recorded = row_cells.get(key)
            if not isinstance(recorded, dict):
                continue
            if (recorded.get("instructions") != wanted["instructions"]
                    or recorded.get("warmup") != wanted["warmup"]):
                continue
            seconds = recorded.get("seconds")
            if isinstance(seconds, (int, float)) and seconds > 0:
                best[key] = min(best.get(key, float("inf")), float(seconds))
    return best


def ratchet_bench(path: str = TRAJECTORY_DEFAULT,
                  tolerance: float = DEFAULT_TOLERANCE,
                  repeats: int = RATCHET_REPEATS,
                  cells: Optional[Dict[str, dict]] = None,
                  record: bool = True) -> Tuple[List[str], bool]:
    """The perf-trajectory ratchet (see module docstring).

    Re-measures every ratchet cell, compares against the best committed
    row for this host+backend, appends the fresh measurements as a new
    row (``record=True``), and returns the report lines plus whether
    every cell stayed within ``tolerance`` of its floor.  A host or
    backend with no committed history passes and merely seeds the
    trajectory — the gate tightens from the second run onward.
    """
    cells = cells if cells is not None else RATCHET_CELLS
    backend = resolve_kernels(None)
    host = host_fingerprint()
    rows = load_trajectory(path)
    baseline = trajectory_baseline(rows, host, backend, cells)
    lines = [f"perf ratchet: {path} ({len(rows)} committed rows, "
             f"host {host}, {backend} backend, best of {repeats}, "
             f"tolerance +{tolerance:.0%})"]
    ok = True
    measured: Dict[str, dict] = {}
    for key in sorted(cells):
        cell = cells[key]
        now_s = _measure_cell(key, cell, backend, repeats)
        measured[key] = {"instructions": cell["instructions"],
                         "warmup": cell["warmup"],
                         "seconds": round(now_s, 3)}
        best_s = baseline.get(key)
        if best_s is None:
            lines.append(f"  {key:12s} best      —     "
                         f"now {now_s:6.3f}s  (new baseline)")
            continue
        ratio = now_s / best_s
        regressed = ratio > 1.0 + tolerance
        ok = ok and not regressed
        verdict = "REGRESSION" if regressed else (
            "improved" if ratio < 1.0 else "ok")
        lines.append(f"  {key:12s} best {best_s:6.3f}s  "
                     f"now {now_s:6.3f}s  ({ratio:5.2f}x)  {verdict}")
    if record:
        append_trajectory_row(path, measured, backend, host=host)
        lines.append(f"appended row {len(rows) + 1} to {path}")
    lines.append("perf ratchet: " + ("PASS" if ok else "FAIL"))
    return lines, ok
