"""Registry of the paper's experiments (every table and figure).

Each entry names the experiment, points at the bench target that
regenerates it, and states the *shape* the paper reports — the property
EXPERIMENTS.md records measured values against.  The registry is data, so
docs and the bench harness stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the evaluation section."""

    key: str
    paper_label: str
    description: str
    bench_target: str
    expected_shape: str


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.key: experiment
    for experiment in (
        Experiment(
            key="table1",
            paper_label="Table 1",
            description="Architectural parameters used in simulations",
            bench_target="benchmarks/test_table1_config.py",
            expected_shape=(
                "1 GHz, 4-wide core; 64KB 2-way 32B L1s; 1MB 4-way 64B L2; "
                "80-cycle memory; 1.6 GB/s bus; 80-cycle 3.2 GB/s hash unit "
                "with 16-entry buffers; 128-bit hashes"
            ),
        ),
        Experiment(
            key="fig3",
            paper_label="Figure 3",
            description=(
                "IPC of base/chash/naive for six L2 configurations "
                "(256KB/1MB/4MB x 64B/128B)"
            ),
            bench_target="benchmarks/test_fig3_ipc.py",
            expected_shape=(
                "chash within ~25% of base in the worst case (mcf, small "
                "cache) and a few percent for most benchmarks; naive up to "
                "~10x slower (swim, applu); chash overhead shrinks with "
                "bigger caches/blocks while naive does not recover"
            ),
        ),
        Experiment(
            key="fig4",
            paper_label="Figure 4",
            description=(
                "L2 miss-rate of program data, base vs chash, 256KB and 4MB"
            ),
            bench_target="benchmarks/test_fig4_cache_contention.py",
            expected_shape=(
                "hash blocks inflate the data miss-rate noticeably at 256KB "
                "(twolf/vortex/vpr worst) and negligibly at 4MB"
            ),
        ),
        Experiment(
            key="fig5",
            paper_label="Figure 5",
            description=(
                "(a) additional memory accesses per L2 miss; "
                "(b) memory bandwidth normalized to base (1MB, 64B)"
            ),
            bench_target="benchmarks/test_fig5_bandwidth.py",
            expected_shape=(
                "naive adds ~13 loads per miss; chash adds less than one "
                "for every benchmark; chash bandwidth within ~2x of base "
                "while naive is many times higher"
            ),
        ),
        Experiment(
            key="fig6",
            paper_label="Figure 6",
            description="IPC vs hash throughput {6.4, 3.2, 1.6, 0.8} GB/s (chash)",
            bench_target="benchmarks/test_fig6_hash_throughput.py",
            expected_shape=(
                "6.4 and 3.2 GB/s indistinguishable; 1.6 GB/s (= bus "
                "bandwidth) slightly slower; 0.8 GB/s degrades the "
                "bandwidth-bound benchmarks (mcf, applu, art, swim) sharply"
            ),
        ),
        Experiment(
            key="fig7",
            paper_label="Figure 7",
            description="IPC vs hash read/write buffer size (chash)",
            bench_target="benchmarks/test_fig7_buffer_size.py",
            expected_shape=(
                "beyond a few entries the buffer size does not matter "
                "because hash throughput exceeds memory bandwidth"
            ),
        ),
        Experiment(
            key="fig8",
            paper_label="Figure 8",
            description=(
                "Reduced-memory-overhead schemes: chash-64B vs chash-128B "
                "vs mhash-64B vs ihash-64B (1MB L2, 2 blocks/chunk)"
            ),
            bench_target="benchmarks/test_fig8_chunk_schemes.py",
            expected_shape=(
                "chash-128B performs best of the reduced-overhead schemes; "
                "ihash-64B close to chash-64B except for the most "
                "bandwidth-bound benchmarks; mhash-64B worst"
            ),
        ),
        Experiment(
            key="overheads",
            paper_label="Section 5.1",
            description="Tree memory overhead 1/(m-1) and log_m(N) checks per read",
            bench_target="benchmarks/test_overheads.py",
            expected_shape=(
                "4-ary tree: ~33% extra memory (one quarter of the total); "
                "verification path length grows logarithmically"
            ),
        ),
    )
}


def experiment_index_markdown() -> str:
    """Render the registry as the EXPERIMENTS.md index table."""
    lines = [
        "| Key | Paper | Bench target | Expected shape |",
        "|-----|-------|--------------|----------------|",
    ]
    for experiment in EXPERIMENTS.values():
        lines.append(
            f"| {experiment.key} | {experiment.paper_label} | "
            f"`{experiment.bench_target}` | {experiment.expected_shape} |"
        )
    return "\n".join(lines)
