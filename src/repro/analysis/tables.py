"""Tabular rendering of experiment results, one row/series per figure.

The bench harness prints what the paper plots: grouped bars become rows of
numbers, with the benchmarks in the paper's order.  Everything here is
pure formatting over :class:`~repro.sim.results.SimResult` grids.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..sim.results import SimResult
from ..workloads.spec import BENCHMARK_ORDER

Grid = Dict[Tuple[str, str, str], SimResult]


def format_table(
    title: str,
    column_labels: Sequence[str],
    rows: Iterable[Tuple[str, Sequence[float]]],
    value_format: str = "{:8.3f}",
    row_header: str = "benchmark",
) -> str:
    """Render a simple fixed-width table."""
    lines = [title, ""]
    header = f"{row_header:10s}" + "".join(f"{label:>12s}" for label in column_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows:
        cells = "".join(f"{value_format.format(v):>12s}" for v in values)
        lines.append(f"{name:10s}{cells}")
    return "\n".join(lines)


def ipc_table(
    grid: Grid,
    schemes: Sequence[str],
    variant: str = "",
    title: str = "IPC",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        rows.append(
            (benchmark,
             [grid[(benchmark, scheme, variant)].ipc for scheme in schemes])
        )
    return format_table(title, schemes, rows)


def relative_ipc_table(
    grid: Grid,
    schemes: Sequence[str],
    variant: str = "",
    baseline: str = "base",
    title: str = "IPC normalized to base",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        base = grid[(benchmark, baseline, variant)]
        rows.append(
            (benchmark,
             [grid[(benchmark, scheme, variant)].ipc / base.ipc
              if base.ipc else 0.0
              for scheme in schemes])
        )
    return format_table(title, schemes, rows)


def metric_table(
    grid: Grid,
    schemes: Sequence[str],
    metric: Callable[[SimResult], float],
    variant: str = "",
    title: str = "metric",
    value_format: str = "{:8.3f}",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        rows.append(
            (benchmark,
             [metric(grid[(benchmark, scheme, variant)]) for scheme in schemes])
        )
    return format_table(title, schemes, rows, value_format=value_format)


def series_table(
    title: str,
    series_labels: Sequence[str],
    per_benchmark: Dict[str, List[float]],
    value_format: str = "{:8.3f}",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = [(b, per_benchmark[b]) for b in benchmarks if b in per_benchmark]
    return format_table(title, series_labels, rows, value_format=value_format)
