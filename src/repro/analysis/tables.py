"""Tabular rendering of experiment results, one row/series per figure.

The bench harness prints what the paper plots: grouped bars become rows of
numbers, with the benchmarks in the paper's order.  Everything here is
pure formatting over :class:`~repro.sim.results.SimResult` grids.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..sim.results import SimResult
from ..workloads.spec import BENCHMARK_ORDER

Grid = Dict[Tuple[str, str, str], SimResult]


def format_table(
    title: str,
    column_labels: Sequence[str],
    rows: Iterable[Tuple[str, Sequence[float]]],
    value_format: str = "{:8.3f}",
    row_header: str = "benchmark",
) -> str:
    """Render a simple fixed-width table."""
    lines = [title, ""]
    header = f"{row_header:10s}" + "".join(f"{label:>12s}" for label in column_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows:
        cells = "".join(f"{value_format.format(v):>12s}" for v in values)
        lines.append(f"{name:10s}{cells}")
    return "\n".join(lines)


def ipc_table(
    grid: Grid,
    schemes: Sequence[str],
    variant: str = "",
    title: str = "IPC",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        rows.append(
            (benchmark,
             [grid[(benchmark, scheme, variant)].ipc for scheme in schemes])
        )
    return format_table(title, schemes, rows)


def relative_ipc_table(
    grid: Grid,
    schemes: Sequence[str],
    variant: str = "",
    baseline: str = "base",
    title: str = "IPC normalized to base",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        base = grid[(benchmark, baseline, variant)]
        rows.append(
            (benchmark,
             [grid[(benchmark, scheme, variant)].ipc / base.ipc
              if base.ipc else 0.0
              for scheme in schemes])
        )
    return format_table(title, schemes, rows)


def metric_table(
    grid: Grid,
    schemes: Sequence[str],
    metric: Callable[[SimResult], float],
    variant: str = "",
    title: str = "metric",
    value_format: str = "{:8.3f}",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = []
    for benchmark in benchmarks:
        rows.append(
            (benchmark,
             [metric(grid[(benchmark, scheme, variant)]) for scheme in schemes])
        )
    return format_table(title, schemes, rows, value_format=value_format)


def series_table(
    title: str,
    series_labels: Sequence[str],
    per_benchmark: Dict[str, List[float]],
    value_format: str = "{:8.3f}",
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
) -> str:
    rows = [(b, per_benchmark[b]) for b in benchmarks if b in per_benchmark]
    return format_table(title, series_labels, rows, value_format=value_format)


def sweep_ipc_table(report, title: str = "IPC") -> str:
    """Render a sweep's results as benchmarks x machine-variant columns.

    Columns are the distinct (scheme + non-default parameters) labels in
    the order the sweep declared them, so a figure sweep prints in the
    figure's own column order.  Takes a
    :class:`~repro.sim.sweep.runner.SweepReport`.
    """
    columns: List[str] = []
    values: Dict[Tuple[str, str], float] = {}
    row_names: List[str] = []
    for spec, result in report.results.items():
        label = spec.label()
        column = label.split("/", 1)[1] if "/" in label else "default"
        if column not in columns:
            columns.append(column)
        if spec.benchmark not in row_names:
            row_names.append(spec.benchmark)
        values[(spec.benchmark, column)] = result.ipc
    ordered_rows = [b for b in BENCHMARK_ORDER if b in row_names]
    ordered_rows += [b for b in row_names if b not in ordered_rows]
    rows = []
    for benchmark in ordered_rows:
        rows.append(
            (benchmark,
             [values.get((benchmark, column), float("nan"))
              for column in columns])
        )
    return format_table(title, columns, rows)
