"""Forging the timestamp-less incremental MAC (Section 5.4.1).

The ihash write-back reads the block's *old* value from memory without
checking it.  The paper shows two concrete forgeries against the bare
XOR-MAC, both of which cancel algebraically because the adversary controls
that unchecked read:

* **stale-value forgery** — the adversary *predicts the new value* ``d_n``
  (easy for, say, a counter), answers the unchecked old-value read with
  ``d_n`` and drops the write.  The MAC update cancels to a no-op, so the
  tree happily keeps certifying the stale ``d_o``.
* **chosen-value forgery** — when the program writes back an *unchanged*
  value (``d_n == d_o``), the adversary answers the unchecked read with a
  value ``x`` of his choosing and stores ``x``: the update turns the MAC
  into one that certifies ``x``.

Both attacks are implemented against the functional
:class:`~repro.hashtree.incremental.IncrementalMacTree`; they succeed with
``use_timestamps=False`` and are *detected* with the one-bit timestamps on
(the paper's fix), which is asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import IntegrityError
from ..hashtree.incremental import IncrementalMacTree
from ..hashtree.layout import TreeLayout
from ..memory.adversary import Adversary
from ..memory.main_memory import UntrustedMemory


class WriteBackInterceptor(Adversary):
    """One-shot probe on the ihash write-back of one block.

    Answers the first covering read (the unchecked old-value read) with
    ``fake_old_value`` and replaces the first covering write with
    ``stored_value`` (None keeps memory unchanged, i.e. drops the write).
    Disarms itself afterwards so later verification traffic is untouched.
    """

    def __init__(self, target_address: int, length: int,
                 fake_old_value: bytes,
                 stored_value: Optional[bytes]):
        super().__init__()
        if len(fake_old_value) != length:
            raise ValueError("fake_old_value must match the block length")
        self.target_address = target_address
        self.length = length
        self.fake_old_value = fake_old_value
        self.stored_value = stored_value
        self._read_done = False
        self._write_done = False

    def _covers(self, address: int, size: int) -> bool:
        return (address <= self.target_address
                and self.target_address + self.length <= address + size)

    def on_read(self, memory, address, data):
        if not self.armed or self._read_done or not self._covers(address, len(data)):
            return data
        offset = self.target_address - address
        forged = bytearray(data)
        forged[offset: offset + self.length] = self.fake_old_value
        self._read_done = True
        self._log("answered unchecked old-value read with forged bytes")
        return bytes(forged)

    def on_write(self, memory, address, data):
        if not self.armed or self._write_done or not self._covers(address, len(data)):
            return data
        offset = self.target_address - address
        kept = bytearray(data)
        if self.stored_value is None:
            old = memory.peek(address, len(data))
            kept[offset: offset + self.length] = old[offset: offset + self.length]
            self._log("dropped the block write (stale value kept)")
        else:
            kept[offset: offset + self.length] = self.stored_value
            self._log("substituted the stored value")
        self._write_done = True
        self.armed = False
        return bytes(kept)


@dataclass
class ForgeryOutcome:
    """Result of one forgery attempt."""

    detected: bool            #: an IntegrityError fired
    value_read_back: Optional[bytes]  #: what a later verified read returned

    @property
    def succeeded(self) -> bool:
        return not self.detected


def _build_tree(use_timestamps: bool) -> tuple[UntrustedMemory, IncrementalMacTree, int]:
    layout = TreeLayout(32 * 128, 128, 16)
    memory = UntrustedMemory(layout.physical_bytes)
    tree = IncrementalMacTree(
        memory, layout, blocks_per_chunk=2, capacity_blocks=8,
        use_timestamps=use_timestamps,
    )
    tree.initialize_from_memory()
    target_physical = layout.chunk_address(layout.first_leaf)  # block 0 of leaf 0
    return memory, tree, target_physical


def forge_stale_value(use_timestamps: bool) -> ForgeryOutcome:
    """The predicted-new-value attack: keep ``d_o`` while certifying it.

    The victim increments a counter from 1 to 2; the adversary predicts
    the 2 and suppresses it.
    """
    memory, tree, target = _build_tree(use_timestamps)
    old_value = (1).to_bytes(8, "big") + bytes(56)
    new_value = (2).to_bytes(8, "big") + bytes(56)
    tree.write(0, old_value)
    tree.flush()

    memory.adversary = WriteBackInterceptor(
        target, 64, fake_old_value=new_value, stored_value=None
    )
    tree.write(0, new_value)
    try:
        tree.flush()  # the intercepted write-back happens here
        memory.adversary = None
        for chunk in range(tree.layout.total_chunks):
            tree.invalidate_chunk(chunk)
        read_back = tree.read(0, 64)
        return ForgeryOutcome(detected=False, value_read_back=read_back)
    except IntegrityError:
        return ForgeryOutcome(detected=True, value_read_back=None)


def forge_chosen_value(use_timestamps: bool,
                       chosen: bytes = b"\xbd" * 64) -> ForgeryOutcome:
    """The unchanged-value attack: implant an attacker-chosen block.

    The victim writes back an unchanged block; the adversary answers the
    unchecked read with ``chosen`` and stores ``chosen``.
    """
    memory, tree, target = _build_tree(use_timestamps)
    value = b"\x11" * 64
    tree.write(0, value)
    tree.flush()

    memory.adversary = WriteBackInterceptor(
        target, 64, fake_old_value=chosen, stored_value=chosen
    )
    # dirty the block with the *same* value so d_n == d_o at write-back
    tree.write(0, value)
    try:
        tree.flush()
        memory.adversary = None
        for chunk in range(tree.layout.total_chunks):
            tree.invalidate_chunk(chunk)
        read_back = tree.read(0, 64)
        return ForgeryOutcome(detected=False, value_read_back=read_back)
    except IntegrityError:
        return ForgeryOutcome(detected=True, value_read_back=None)
