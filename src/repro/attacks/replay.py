"""The XOM replay attack (Section 4.4) as executable scenarios.

XOM protects off-chip data with a per-block MAC that binds the *address*
but not the *version*: memory can legitimately answer a read with any
value that was ever stored at that address during the execution.  The
paper's example: a loop counter ``i`` spilled to memory can be rewound by
the adversary, making an output loop run far past its bound and leak the
rest of the data segment.

:class:`XomLikeMemory` implements that per-block MAC scheme over an
:class:`~repro.memory.main_memory.UntrustedMemory`;
:func:`run_loop_attack` mounts the rewind against it (succeeds) and
against a hash-tree :class:`~repro.hashtree.verifier.MemoryVerifier`
(raises :class:`~repro.common.errors.IntegrityError`), which is exactly
the paper's argument for fixing XOM with tree-based verification.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import List

from ..common.errors import IntegrityError
from ..memory.adversary import ReplayAdversary
from ..memory.main_memory import UntrustedMemory


class XomLikeMemory:
    """Address-bound per-block MACs, no freshness — XOM's off-chip scheme.

    Every ``block_bytes`` block is stored with
    ``HMAC(key, address || data)``.  Spoofing and splicing are caught;
    replaying an *older* (data, mac) pair for the same address is not.
    """

    def __init__(self, memory: UntrustedMemory, key: bytes = b"xom-key",
                 block_bytes: int = 64, mac_bytes: int = 16):
        self.memory = memory
        self.key = key
        self.block_bytes = block_bytes
        self.mac_bytes = mac_bytes
        self._entry = block_bytes + mac_bytes

    def _mac(self, address: int, data: bytes) -> bytes:
        payload = address.to_bytes(8, "big") + data
        return hmac.new(self.key, payload, hashlib.sha256).digest()[: self.mac_bytes]

    def _slot(self, address: int) -> int:
        if address % self.block_bytes:
            raise ValueError("block-aligned addresses only")
        return (address // self.block_bytes) * self._entry

    def write_block(self, address: int, data: bytes) -> None:
        if len(data) != self.block_bytes:
            raise ValueError("whole blocks only")
        slot = self._slot(address)
        self.memory.write(slot, data + self._mac(address, data))

    def read_block(self, address: int) -> bytes:
        slot = self._slot(address)
        raw = self.memory.read(slot, self._entry)
        data, mac = raw[: self.block_bytes], raw[self.block_bytes:]
        if not hmac.compare_digest(mac, self._mac(address, data)):
            raise IntegrityError("XOM MAC check failed", address=address)
        return data


@dataclass
class LoopAttackOutcome:
    """What the output loop leaked."""

    iterations: int
    leaked: List[bytes] = field(default_factory=list)
    detected: bool = False

    @property
    def leaked_beyond_bound(self) -> bool:
        return self.iterations > self.intended_iterations

    intended_iterations: int = 0


def run_loop_attack_on_xom(
    secret_words: int = 8, intended_iterations: int = 2
) -> LoopAttackOutcome:
    """Mount the Section 4.4 loop-counter rewind against XOM-style MACs.

    The victim program copies ``intended_iterations`` words out of its
    compartment, spilling the loop counter ``i`` to memory each iteration.
    The adversary records the memory image of the counter block during the
    first iteration and replays it on every later read, so the loop never
    sees ``i`` reach its bound and walks off into the secret data.
    """
    block = 64
    counter_address = 0
    data_base = block  # secret array right after the counter's block
    adversary = ReplayAdversary(target_address=0, length=block + 16)
    memory = UntrustedMemory(64 * 1024, adversary=adversary)
    xom = XomLikeMemory(memory)

    # victim initializes its secrets and the counter
    for word in range(secret_words):
        payload = bytes([0xA0 + word]) * block
        xom.write_block(data_base + word * block, payload)
    xom.write_block(counter_address, (0).to_bytes(8, "big") + bytes(block - 8))

    outcome = LoopAttackOutcome(iterations=0,
                                intended_iterations=intended_iterations)
    max_iterations = secret_words  # where the data segment ends
    while True:
        counter_block = xom.read_block(counter_address)
        i = int.from_bytes(counter_block[:8], "big")
        if i >= intended_iterations or outcome.iterations >= max_iterations:
            break
        # the data pointer lives in a register (paper: outputdata(*data++)),
        # so it keeps advancing even while the memory-held counter is rewound
        outcome.leaked.append(
            xom.read_block(data_base + outcome.iterations * block)[:8])
        outcome.iterations += 1
        new_counter = (i + 1).to_bytes(8, "big") + bytes(block - 8)
        xom.write_block(counter_address, new_counter)
        if outcome.iterations == 1:
            # the adversary snapshotted i=1's stored image on that write;
            # from now on every read of the counter is rewound
            adversary.start_replaying()
    return outcome


def run_loop_attack_on_tree(
    verifier, secret_words: int = 8, intended_iterations: int = 2
) -> LoopAttackOutcome:
    """The same victim + adversary against a hash-tree verifier.

    ``verifier`` must be a :class:`MemoryVerifier` whose memory has a
    :class:`ReplayAdversary` watching the counter's physical block.  The
    rewind is detected on the first replayed read.
    """
    block = 64
    counter_address = 0
    data_base = block
    adversary = verifier.memory.adversary
    for word in range(secret_words):
        verifier.write(data_base + word * block, bytes([0xA0 + word]) * block)
    verifier.write(counter_address, (0).to_bytes(8, "big"))
    verifier.flush()

    outcome = LoopAttackOutcome(iterations=0,
                                intended_iterations=intended_iterations)
    try:
        while True:
            verifier.flush()
            for chunk in range(verifier.layout.total_chunks):
                verifier.tree.invalidate_chunk(chunk)  # force memory reads
            i = int.from_bytes(verifier.read(counter_address, 8), "big")
            if i >= intended_iterations or outcome.iterations >= secret_words:
                break
            outcome.leaked.append(
                verifier.read(data_base + outcome.iterations * block, 8))
            outcome.iterations += 1
            verifier.write(counter_address, (i + 1).to_bytes(8, "big"))
            verifier.flush()
            if outcome.iterations == 1 and adversary is not None:
                adversary.start_replaying()
    except IntegrityError:
        outcome.detected = True
    return outcome
