"""Executable attack scenarios from the paper (Sections 4.4 and 5.4.1)."""

from .macforge import (
    ForgeryOutcome,
    WriteBackInterceptor,
    forge_chosen_value,
    forge_stale_value,
)
from .replay import (
    LoopAttackOutcome,
    XomLikeMemory,
    run_loop_attack_on_tree,
    run_loop_attack_on_xom,
)

__all__ = [
    "ForgeryOutcome",
    "WriteBackInterceptor",
    "forge_chosen_value",
    "forge_stale_value",
    "LoopAttackOutcome",
    "XomLikeMemory",
    "run_loop_attack_on_tree",
    "run_loop_attack_on_xom",
]
