"""Shared substrate: configuration, units, statistics, and errors."""

from .config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    HashEngineConfig,
    SchemeKind,
    SystemConfig,
    TLBConfig,
    TreeConfig,
    table1_config,
)
from .errors import (
    AdversaryError,
    ConfigurationError,
    IntegrityError,
    ReproError,
    SecureModeError,
    SimulationError,
)
from .stats import StatGroup, merge_groups
from .units import (
    GB,
    KB,
    MB,
    align_down,
    align_up,
    bytes_per_cycle,
    ceil_div,
    is_power_of_two,
    log2_exact,
)

__all__ = [
    "BusConfig",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "HashEngineConfig",
    "SchemeKind",
    "SystemConfig",
    "TLBConfig",
    "TreeConfig",
    "table1_config",
    "AdversaryError",
    "ConfigurationError",
    "IntegrityError",
    "ReproError",
    "SecureModeError",
    "SimulationError",
    "StatGroup",
    "merge_groups",
    "GB",
    "KB",
    "MB",
    "align_down",
    "align_up",
    "bytes_per_cycle",
    "ceil_div",
    "is_power_of_two",
    "log2_exact",
]
