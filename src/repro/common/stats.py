"""Lightweight statistics counters shared by all timing models.

Every timing component (cache, bus, hash engine, core) owns a
:class:`StatGroup`; the full-system simulator merges them into one report.
Counters are plain attributes so hot paths pay only a ``dict`` store.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class StatGroup:
    """A named bag of numeric counters.

    >>> s = StatGroup("l2")
    >>> s.add("hits", 3)
    >>> s.add("hits")
    >>> s["hits"]
    4
    """

    def __init__(self, name: str):
        self.name = name
        #: the raw counter dict.  Hot paths may bind this once and update it
        #: in place; :meth:`reset` clears it in place so bindings stay valid,
        #: and the attribute itself is never reassigned.
        self.counters: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1) -> None:
        """Increment ``key`` by ``amount`` (creating it at zero)."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        """Set ``key`` to an absolute value (for gauges like occupancy peaks)."""
        self.counters[key] = value

    def max(self, key: str, value: float) -> None:
        """Record the maximum of the current value and ``value``."""
        current = self.counters.get(key, value)
        self.counters[key] = value if value > current else current

    def get(self, key: str, default: float = 0) -> float:
        return self.counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self.counters.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self.counters

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters; zero denominator yields 0.0."""
        denom = self.counters.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self.counters.get(numerator, 0) / denom

    def reset(self) -> None:
        self.counters.clear()

    def as_dict(self, prefix: bool = True) -> Dict[str, float]:
        """A plain-dict snapshot, optionally prefixed with the group name."""
        if not prefix:
            return dict(self.counters)
        return {f"{self.name}.{key}": value for key, value in self.counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"StatGroup({self.name}: {body})"


def merge_groups(*groups: StatGroup) -> Dict[str, float]:
    """Merge several groups into one flat, prefixed dictionary."""
    merged: Dict[str, float] = {}
    for group in groups:
        merged.update(group.as_dict())
    return merged
