"""Packed warm-up trace row encoding.

The wire format between the workload generator (producer,
:meth:`InstructionStream.packed <repro.workloads.generators.InstructionStream.packed>`)
and the memory hierarchy (consumer,
:meth:`MemoryHierarchy.warm_packed <repro.cache.hierarchy.MemoryHierarchy.warm_packed>`).
It lives here, below both, so neither side has to import the other.

A chunk is a pair of parallel ``array`` columns ``(codes, values)``:
``codes`` (``'B'``) holds one kind code per row, ``values`` (``'Q'``) the
row's address.  A row is one *memory event* of the warm-up replay, not one
instruction: instruction-fetch rows appear only when the stream crosses
into a new I-cache line (the same dedup the object-stream warm-up loop
applies), and non-memory instructions that stay within a line emit
nothing.
"""

from __future__ import annotations

#: Instruction fetch entering a new I-cache line; value is the pc.
WARM_IFETCH = 0
#: Data load; value is the load address.
WARM_LOAD = 1
#: Data store; value is the store address.
WARM_STORE = 2
#: Data store carrying the §5.3 full-block mark; value is the store address.
WARM_STORE_FULL = 3

#: Instructions per packed chunk: large enough to amortize per-chunk
#: overhead, small enough that a chunk's columns stay cache-resident.
PACKED_CHUNK_INSTRUCTIONS = 32_768

__all__ = [
    "WARM_IFETCH",
    "WARM_LOAD",
    "WARM_STORE",
    "WARM_STORE_FULL",
    "PACKED_CHUNK_INSTRUCTIONS",
]
