"""Packed trace row encodings (warm-up and measured modes).

The wire formats between the workload generator and the two consumers of
packed instruction streams.  They live here, below all of them, so no
side has to import another:

* **warm mode** — :meth:`InstructionStream.packed
  <repro.workloads.generators.InstructionStream.packed>` feeding
  :meth:`MemoryHierarchy.warm_packed
  <repro.cache.hierarchy.MemoryHierarchy.warm_packed>`.  A chunk is a
  pair of parallel ``array`` columns ``(codes, values)``: ``codes``
  (``'B'``) holds one ``WARM_*`` kind code per row, ``values`` (``'Q'``)
  the row's address.  A row is one *memory event* of the warm-up replay,
  not one instruction: instruction-fetch rows appear only when the stream
  crosses into a new I-cache line (the same dedup the object-stream
  warm-up loop applies), and non-memory instructions that stay within a
  line emit nothing.

* **measured mode** — :meth:`InstructionStream.take_packed
  <repro.workloads.generators.InstructionStream.take_packed>` feeding
  :meth:`OutOfOrderCore.run_packed <repro.cpu.ooo.OutOfOrderCore.run_packed>`.
  A chunk is a 6-tuple of parallel columns
  ``(kinds, pcs, addresses, dep1s, dep2s, latencies)`` with one row per
  *instruction* — the timed schedule needs every row, so nothing is
  deduplicated here.  ``kinds`` holds a ``MEAS_*`` code (the §5.3
  full-block store mark and the branch-mispredict flag are folded into
  the code), ``pcs``/``addresses`` the fetch and data addresses,
  ``dep1s``/``dep2s`` the register-dependency distances (0 = none), and
  ``latencies`` the :data:`~repro.cpu.isa.OP_LATENCY` execution latency
  of the row's kind.  Unlike warm chunks these never reach the disk
  cache — they are generated, scheduled and dropped — so the columns are
  plain ``list`` objects: appends are cheaper and iterating them reuses
  the existing ``int`` objects instead of unboxing from a typed array.
"""

from __future__ import annotations

#: Instruction fetch entering a new I-cache line; value is the pc.
WARM_IFETCH = 0
#: Data load; value is the load address.
WARM_LOAD = 1
#: Data store; value is the store address.
WARM_STORE = 2
#: Data store carrying the §5.3 full-block mark; value is the store address.
WARM_STORE_FULL = 3

#: Measured-mode row kinds.  The memory codes are contiguous so the core
#: can classify a row with one range test (``MEAS_LOAD <= k <= MEAS_STORE_FULL``).
MEAS_ALU = 0
MEAS_FP = 1
MEAS_LOAD = 2
MEAS_STORE = 3
#: Store carrying the §5.3 full-block mark.
MEAS_STORE_FULL = 4
MEAS_BRANCH = 5
#: Branch the (implicit) predictor gets wrong.
MEAS_BRANCH_MISPREDICT = 6

#: Instructions per packed chunk: large enough to amortize per-chunk
#: overhead, small enough that a chunk's columns stay cache-resident.
PACKED_CHUNK_INSTRUCTIONS = 32_768

__all__ = [
    "WARM_IFETCH",
    "WARM_LOAD",
    "WARM_STORE",
    "WARM_STORE_FULL",
    "MEAS_ALU",
    "MEAS_FP",
    "MEAS_LOAD",
    "MEAS_STORE",
    "MEAS_STORE_FULL",
    "MEAS_BRANCH",
    "MEAS_BRANCH_MISPREDICT",
    "PACKED_CHUNK_INSTRUCTIONS",
]
