"""Configuration dataclasses mirroring Table 1 of the paper.

All defaults reproduce the simulated machine of the evaluation section:
a 1 GHz 4-wide out-of-order superscalar with 64 KB split L1 caches, a
unified 1 MB 4-way L2, an 80-cycle DRAM, a 1.6 GB/s split-transaction
memory bus and a pipelined 128-bit hash unit (80-cycle latency,
3.2 GB/s throughput, 16-entry read/write buffers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .units import KB, MB, is_power_of_two


class SchemeKind(enum.Enum):
    """The five memory systems evaluated in the paper."""

    BASE = "base"      #: no integrity verification
    NAIVE = "naive"    #: tree machinery between L2 and memory, hashes uncached
    CHASH = "chash"    #: hashes cached in L2, one cache block per chunk
    MHASH = "mhash"    #: hashes cached, several cache blocks per chunk
    IHASH = "ihash"    #: mhash with incremental MACs + 1-bit timestamps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    latency_cycles: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_bytes):
            raise ConfigurationError(f"{self.name}: block size must be a power of two")
        if self.size_bytes % (self.block_bytes * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"associativity*block ({self.associativity}*{self.block_bytes})"
            )
        if self.latency_cycles < 0:
            raise ConfigurationError(f"{self.name}: negative latency")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.associativity)

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes


@dataclass(frozen=True)
class TLBConfig:
    """Instruction/data TLB geometry (Table 1: 4-way, 128 entries)."""

    entries: int = 128
    associativity: int = 4
    page_bytes: int = 4 * KB
    miss_penalty_cycles: int = 30

    def __post_init__(self) -> None:
        if self.entries % self.associativity != 0:
            raise ConfigurationError("TLB entries must divide by associativity")
        if not is_power_of_two(self.page_bytes):
            raise ConfigurationError("page size must be a power of two")


@dataclass(frozen=True)
class BusConfig:
    """Split-transaction memory bus: 200 MHz, 8 bytes wide => 1.6 GB/s."""

    clock_mhz: int = 200
    width_bytes: int = 8
    core_clock_ghz: float = 1.0

    @property
    def bandwidth_gb_per_s(self) -> float:
        return self.clock_mhz * 1e6 * self.width_bytes / 1e9

    @property
    def core_cycles_per_bus_cycle(self) -> float:
        return self.core_clock_ghz * 1e3 / self.clock_mhz

    def transfer_cycles(self, n_bytes: int) -> int:
        """Core cycles the data bus is busy moving ``n_bytes``."""
        bus_cycles = -(-n_bytes // self.width_bytes)
        return max(1, round(bus_cycles * self.core_cycles_per_bus_cycle))


@dataclass(frozen=True)
class DramConfig:
    """Main-memory timing: latency to the first chunk of a block."""

    first_chunk_latency_cycles: int = 80


@dataclass(frozen=True)
class HashEngineConfig:
    """The on-chip hash checking/generating unit of Section 6.1.

    ``throughput_gb_per_s`` = 3.2 means one 64-byte hash every 20 core
    cycles at 1 GHz (the paper's default); 6.4 would be one per 10 cycles.
    """

    latency_cycles: int = 80
    throughput_gb_per_s: float = 3.2
    read_buffer_entries: int = 16
    write_buffer_entries: int = 16
    hash_bits: int = 128
    core_clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.hash_bits % 8 != 0:
            raise ConfigurationError("hash length must be a whole number of bytes")
        if self.throughput_gb_per_s <= 0:
            raise ConfigurationError("hash throughput must be positive")

    @property
    def hash_bytes(self) -> int:
        return self.hash_bits // 8

    def hash_occupancy_cycles(self, n_bytes: int) -> int:
        """Core cycles the hash pipeline is occupied digesting ``n_bytes``."""
        bytes_per_cycle = self.throughput_gb_per_s / self.core_clock_ghz
        return max(1, round(n_bytes / bytes_per_cycle))


@dataclass(frozen=True)
class CoreConfig:
    """Superscalar core parameters (Table 1)."""

    clock_ghz: float = 1.0
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ruu_entries: int = 128
    lsq_entries: int = 64


@dataclass(frozen=True)
class TreeConfig:
    """Hash-tree shape: arity and chunk geometry (Section 5.5)."""

    #: bytes covered by one hash = one chunk; equals the L2 block for chash.
    chunk_bytes: int = 64
    #: cache blocks per chunk (1 for chash; >=2 for mhash/ihash).
    blocks_per_chunk: int = 1
    hash_bytes: int = 16

    def __post_init__(self) -> None:
        if not is_power_of_two(self.chunk_bytes):
            raise ConfigurationError("chunk size must be a power of two")
        if self.chunk_bytes % self.hash_bytes != 0:
            raise ConfigurationError("chunk must hold a whole number of hashes")
        if self.blocks_per_chunk < 1:
            raise ConfigurationError("blocks_per_chunk must be >= 1")
        if self.chunk_bytes % self.blocks_per_chunk != 0:
            raise ConfigurationError("chunk must split into equal cache blocks")

    @property
    def arity(self) -> int:
        """Hashes per chunk: the branching factor m of the tree."""
        return self.chunk_bytes // self.hash_bytes

    @property
    def block_bytes(self) -> int:
        return self.chunk_bytes // self.blocks_per_chunk


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated machine."""

    scheme: SchemeKind = SchemeKind.BASE
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KB, 2, 32, 1, name="l1i")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KB, 2, 32, 1, name="l1d")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1 * MB, 4, 64, 10, name="l2")
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    hash_engine: HashEngineConfig = field(default_factory=HashEngineConfig)
    #: protected physical memory size; sets the tree height.
    memory_bytes: int = 256 * MB
    #: cache blocks per hash chunk (mhash / ihash); ignored by other schemes.
    blocks_per_chunk: int = 2
    #: §5.3 write-allocate optimization: fully-overwritten chunks skip the
    #: read-and-check (modelled for stores that cover a whole block).
    write_allocate_valid_bits: bool = True

    def __post_init__(self) -> None:
        if self.l2.block_bytes % self.l1d.block_bytes != 0:
            raise ConfigurationError("L2 block must be a multiple of the L1 block")
        if self.memory_bytes % self.l2.block_bytes != 0:
            raise ConfigurationError("memory size must be a multiple of the L2 block")

    @property
    def tree(self) -> TreeConfig:
        """The tree geometry implied by scheme + L2 block size."""
        if self.scheme in (SchemeKind.MHASH, SchemeKind.IHASH):
            blocks = self.blocks_per_chunk
        else:
            blocks = 1
        return TreeConfig(
            chunk_bytes=self.l2.block_bytes * blocks,
            blocks_per_chunk=blocks,
            hash_bytes=self.hash_engine.hash_bytes,
        )

    def with_scheme(self, scheme: SchemeKind) -> "SystemConfig":
        return replace(self, scheme=scheme)

    def with_l2(
        self,
        size_bytes: Optional[int] = None,
        block_bytes: Optional[int] = None,
        associativity: Optional[int] = None,
    ) -> "SystemConfig":
        """Convenience for the Figure 3 sweep over L2 geometries."""
        l2 = CacheConfig(
            size_bytes if size_bytes is not None else self.l2.size_bytes,
            associativity if associativity is not None else self.l2.associativity,
            block_bytes if block_bytes is not None else self.l2.block_bytes,
            self.l2.latency_cycles,
            name="l2",
        )
        return replace(self, l2=l2)


def table1_config(scheme: SchemeKind = SchemeKind.BASE) -> SystemConfig:
    """The exact configuration of Table 1 of the paper."""
    return SystemConfig(scheme=scheme)
