"""Size/time unit constants and small integer helpers used across the simulator."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Bits in one byte; hashes and MACs are sized in bits in the paper.
BITS_PER_BYTE = 8


def is_power_of_two(value: int) -> bool:
    """Return True for positive integer powers of two (1, 2, 4, ...)."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2(value) for an exact power of two, else raise ValueError."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (address + alignment - 1) & ~(alignment - 1)


def bytes_per_cycle(bandwidth_gb_per_s: float, clock_ghz: float) -> float:
    """Convert a bandwidth in GB/s into bytes per processor clock cycle.

    The paper quotes hash-unit throughput and bus bandwidth in GB/s against a
    1 GHz core clock, so 3.2 GB/s is 3.2 bytes per cycle.
    """
    if clock_ghz <= 0:
        raise ValueError("clock_ghz must be positive")
    return bandwidth_gb_per_s / clock_ghz
