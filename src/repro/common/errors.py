"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class IntegrityError(ReproError):
    """Memory integrity verification failed: tampering was detected.

    This models the security exception of the paper (Section 5.9).  It is
    deliberately *not* precise: the simulated processor may have committed
    speculative work before it fires, but cryptographic operations act as
    barriers and never complete once a check has failed.
    """

    def __init__(self, message: str, address: int | None = None):
        super().__init__(message)
        self.address = address


class SecureModeError(ReproError):
    """An operation was attempted in the wrong secure-mode state.

    For example reading protected memory before initialization finished, or
    using ``ReadWithoutChecking`` semantics on a protected address.
    """


class AdversaryError(ReproError):
    """An adversary model was asked to do something outside its power."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent state (internal bug guard)."""
