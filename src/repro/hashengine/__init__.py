"""Timing model of the on-chip hash checking/generating unit."""

from .engine import HashEngineTiming

__all__ = ["HashEngineTiming"]
