"""Hash checking/generating unit timing model (Section 6.1, Figures 6–7).

The unit sits next to the L2: a pipelined hash core with a configurable
latency (80 cycles) and throughput (one 64-byte hash per 20 cycles at the
default 3.2 GB/s), fed by a *read buffer* (new L2 blocks waiting to be
checked) and a *write buffer* (evicted blocks waiting for their new hash).

Buffer entries are the paper's flow-control: data can be consumed
speculatively while its check runs in the background, but when every
buffer entry is occupied the memory transaction that needs one stalls —
that is the only way verification latency ever reaches the critical path
(Section 6.2).
"""

from __future__ import annotations

from typing import List

from ..common.config import HashEngineConfig
from ..common.stats import StatGroup


class _BufferPool:
    """Fixed number of slots, each busy until a stored completion time."""

    def __init__(self, entries: int):
        self._free_at: List[int] = [0] * entries

    def acquire(self, now: int) -> tuple[int, int]:
        """Return ``(slot, start)``: the earliest usable slot, possibly
        making the caller wait until one frees.

        The slot is provisionally reserved (so concurrent acquires pick
        other slots); :meth:`hold` installs the real release time.
        """
        slot = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        start = max(now, self._free_at[slot])
        self._free_at[slot] = start + 1
        return slot, start

    def hold(self, slot: int, until: int) -> None:
        if until > self._free_at[slot]:
            self._free_at[slot] = until

    def earliest_free(self) -> int:
        return min(self._free_at)

    def snapshot(self) -> tuple:
        return tuple(self._free_at)

    def restore(self, saved: tuple) -> None:
        """Restore a :meth:`snapshot`.

        A *pristine* snapshot (all slots free at 0 — which is what any
        functional warm-up leaves behind, since timing is disabled) may be
        restored into a pool of a different depth; that is what lets warm
        state be shared across cells that sweep the buffer size.  A busy
        snapshot must match the pool's depth exactly.
        """
        if len(saved) == len(self._free_at):
            self._free_at = list(saved)
        elif any(saved):
            raise ValueError(
                f"cannot restore a busy {len(saved)}-entry buffer snapshot "
                f"into a {len(self._free_at)}-entry pool"
            )
        else:
            self._free_at = [0] * len(self._free_at)


class HashEngineTiming:
    """Pipelined hash unit with read/write buffers."""

    def __init__(self, config: HashEngineConfig):
        self.config = config
        self.stats = StatGroup("hash_engine")
        self._pipe_free_at = 0
        self._read_buffers = _BufferPool(config.read_buffer_entries)
        self._write_buffers = _BufferPool(config.write_buffer_entries)
        #: cleared during functional cache warm-up: hashing is free.
        self.timing_enabled = True

    # -- raw pipeline ------------------------------------------------------------

    def hash_op(self, ready: int, n_bytes: int) -> int:
        """Digest ``n_bytes`` that are available at ``ready``.

        Returns the completion time: pipeline issue (throughput-limited)
        plus the fixed pipeline latency.
        """
        if not self.timing_enabled:
            return ready
        start = max(ready, self._pipe_free_at)
        occupancy = self.config.hash_occupancy_cycles(n_bytes)
        self._pipe_free_at = start + occupancy
        self.stats.add("hash_ops")
        self.stats.add("hashed_bytes", n_bytes)
        self.stats.add("pipe_busy_cycles", occupancy)
        return start + self.config.latency_cycles + occupancy

    # -- snapshot / restore -----------------------------------------------------------

    def snapshot(self) -> tuple:
        """Pipeline/buffer busy-until state plus counters."""
        return (
            self._pipe_free_at,
            self._read_buffers.snapshot(),
            self._write_buffers.snapshot(),
            dict(self.stats.counters),
        )

    def restore(self, snap: tuple) -> None:
        self._pipe_free_at, read_free, write_free, counters = snap
        self._read_buffers.restore(read_free)
        self._write_buffers.restore(write_free)
        live = self.stats.counters
        live.clear()
        live.update(counters)

    # -- buffered operations -------------------------------------------------------

    def begin_check(self, now: int) -> tuple[int, int]:
        """Claim a read-buffer slot for an incoming block check.

        Returns ``(slot, start)``; ``start >= now`` is when the memory
        transaction may proceed (it stalls while the buffer is full).
        """
        if not self.timing_enabled:
            return 0, now
        slot, start = self._read_buffers.acquire(now)
        if start > now:
            self.stats.add("read_buffer_stall_cycles", start - now)
            self.stats.add("read_buffer_stalls")
        return slot, start

    def finish_check(self, slot: int, done: int) -> None:
        """Release the read-buffer slot once the check completed at ``done``."""
        if not self.timing_enabled:
            return
        self._read_buffers.hold(slot, done)
        self.stats.add("checks_completed")

    def begin_writeback(self, now: int) -> tuple[int, int]:
        """Claim a write-buffer slot for an evicted block awaiting its hash."""
        if not self.timing_enabled:
            return 0, now
        slot, start = self._write_buffers.acquire(now)
        if start > now:
            self.stats.add("write_buffer_stall_cycles", start - now)
            self.stats.add("write_buffer_stalls")
        return slot, start

    def finish_writeback(self, slot: int, done: int) -> None:
        if not self.timing_enabled:
            return
        self._write_buffers.hold(slot, done)
        self.stats.add("writebacks_completed")
