"""Logic-overhead model of the hash unit (Section 6.1).

The paper sizes the checking/generating unit by counting the 32-bit
operations a fully-unrolled MD5 (or SHA-1) datapath needs across its
rounds, converting to 1-bit gates, and then observing that the rounds are
similar enough to share hardware: choosing a throughput of one hash per
20 cycles (3.2 GB/s at 1 GHz for 64-byte chunks) lets the circuit be
divided "by a factor of 2 to 3".

Datapath inventories (derived per round, matching the paper's totals):

* **MD5**, 64 rounds — 4 adders each (a+F, +M, +K, +B after the rotate);
  one mux per round in rounds 1-32 (the F/G selectors); two XORs per
  round in rounds 33-48 (H = B^C^D) and one XOR + one OR + one inverter
  in rounds 49-64 (I = C^(B|~D)): **256 adders, 32 muxes, 48 XORs,
  16 ORs, 16 inverters**.
* **SHA-1**, 80 rounds — 4 adders each; one mux in rounds 1-20; 2 XORs in
  each of rounds 21-40 and 61-80; 3 ANDs + 2 ORs in rounds 41-60
  (majority); plus the message schedule's 64 x 3 XORs: **320 adders,
  20 muxes, 272 XORs, 40 ORs, 60 ANDs**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: 1-bit gate equivalents per 32-bit block, for a fast (carry-skewed)
#: implementation as the paper assumes.  An adder dominates: ~30
#: gate-equivalents per bit buys the lookahead needed to run a round per
#: cycle on average; the simple logic blocks cost ~1 gate per bit.
DEFAULT_GATES_PER_BIT: Dict[str, int] = {
    "adder": 30,
    "mux": 3,
    "xor": 1,
    "or": 1,
    "and": 1,
    "inverter": 1,
}

WORD_BITS = 32


@dataclass(frozen=True)
class DatapathInventory:
    """32-bit logic blocks of one fully-unrolled hash datapath."""

    name: str
    rounds: int
    block_bits: int
    digest_bits: int
    blocks: Dict[str, int] = field(default_factory=dict)

    def gate_count(self, gates_per_bit: Dict[str, int] = None) -> int:
        """Total 1-bit gate equivalents for the unrolled datapath."""
        costs = gates_per_bit if gates_per_bit is not None else DEFAULT_GATES_PER_BIT
        return sum(
            count * WORD_BITS * costs[kind]
            for kind, count in self.blocks.items()
        )

    def shared_gate_count(self, sharing_factor: float = 2.5,
                          gates_per_bit: Dict[str, int] = None) -> int:
        """Gate count after sharing similar rounds.

        The rounds within a hash are near-identical, so lowering the
        throughput target (the paper picks one hash per 20 cycles) lets
        round circuits be time-multiplexed; the paper estimates the
        circuit "can be divided by a factor of 2 to 3", which is the
        default ``sharing_factor`` here.
        """
        if sharing_factor < 1:
            raise ValueError("sharing cannot grow the circuit")
        return int(self.gate_count(gates_per_bit) / sharing_factor)

    def latency_cycles(self, rounds_per_cycle: float = 2.0) -> int:
        """Pipeline latency: the paper assumes ~2 (skewed) rounds/cycle."""
        return int(self.rounds / rounds_per_cycle)


MD5_DATAPATH = DatapathInventory(
    name="md5",
    rounds=64,
    block_bits=512,
    digest_bits=128,
    blocks={"adder": 256, "mux": 32, "xor": 48, "or": 16, "inverter": 16},
)

SHA1_DATAPATH = DatapathInventory(
    name="sha1",
    rounds=80,
    block_bits=512,
    digest_bits=160,
    blocks={"adder": 320, "mux": 20, "xor": 272, "or": 40, "and": 60},
)

DATAPATHS = {"md5": MD5_DATAPATH, "sha1": SHA1_DATAPATH}


def logic_overhead_report() -> str:
    """The Section 6.1 sizing, as a printable report."""
    lines = ["Hash unit logic overhead (Section 6.1)", ""]
    for datapath in DATAPATHS.values():
        unrolled = datapath.gate_count()
        shared = datapath.shared_gate_count()
        lines.append(
            f"{datapath.name:5s}: {datapath.rounds} rounds, "
            f"{sum(datapath.blocks.values())} 32-bit blocks "
            f"({', '.join(f'{v} {k}' for k, v in datapath.blocks.items())})"
        )
        lines.append(
            f"       unrolled ~{unrolled:,} gate-equivalents; shared "
            f"(x2.5, 1 hash / 20 cycles) ~{shared:,}; "
            f"latency ~{datapath.latency_cycles()} cycles"
        )
    return "\n".join(lines)
