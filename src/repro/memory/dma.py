"""Direct Memory Access into verified memory (Section 5.7).

A DMA device writes to RAM without the processor in the loop, so the hash
tree does not cover the new data — by design, since the data has an
untrusted origin.  The paper names two recovery strategies:

1. mark the covering subtree unprotected, let the device write, then
   rebuild that part of the tree (:meth:`DMAController.transfer_and_rebuild`);
2. land the transfer in an unprotected region and have the processor copy
   it into protected memory (:meth:`DMAController.transfer_and_copy`).

Either way the data only becomes *protected*, not *trusted*: the
application must still check it (e.g. against an expected digest), which
:meth:`DMAController.transfer_and_copy` supports via ``expected_digest``.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..common.errors import SecureModeError
from .main_memory import UntrustedMemory


class DMADevice:
    """A bus master (disk, NIC) that can deposit bytes anywhere in RAM."""

    def __init__(self, memory: UntrustedMemory):
        self.memory = memory
        self.transfers = 0

    def transfer(self, address: int, payload: bytes) -> None:
        """Write ``payload`` to RAM directly, bypassing the processor."""
        # DMA does not go through the processor, but it is still on the bus,
        # so the adversary hook applies.
        self.memory.write(address, payload)
        self.transfers += 1


class DMAController:
    """Processor-side orchestration of safe DMA into a verified region.

    ``verifier`` is any object exposing the :class:`repro.hashtree.verifier.
    MemoryVerifier` surface: ``read``/``write``/``unprotect_range``/
    ``rebuild_range``/``read_without_checking`` plus ``is_protected``.
    """

    def __init__(self, verifier, device: DMADevice):
        self.verifier = verifier
        self.device = device

    def transfer_and_rebuild(self, address: int, payload: bytes) -> None:
        """Strategy 1: unprotect the landing zone, DMA, rebuild the tree.

        ``address`` is a protected-space address; the device itself is given
        the physical address of the landing zone.
        """
        self.verifier.unprotect_range(address, len(payload))
        self.device.transfer(self.verifier.physical_address(address), payload)
        self.verifier.rebuild_range(address, len(payload))

    def transfer_and_copy(
        self,
        staging_address: int,
        destination_address: int,
        payload: bytes,
        expected_digest: Optional[bytes] = None,
    ) -> None:
        """Strategy 2: DMA into unprotected memory, then copy in by hand.

        The copy uses ``ReadWithoutChecking`` semantics on the staging area
        (the processor must *choose* to read unprotected data, Section 5.7)
        and ordinary verified writes on the destination.  If
        ``expected_digest`` is given the staged bytes are checked before any
        of them enter protected memory.
        """
        if self.verifier.is_protected(staging_address):
            raise SecureModeError(
                "staging area for DMA must lie outside the protected region"
            )
        self.device.transfer(self.verifier.physical_address(staging_address), payload)
        staged = self.verifier.read_without_checking(staging_address, len(payload))
        if expected_digest is not None:
            if hashlib.sha256(staged).digest() != expected_digest:
                raise SecureModeError("DMA payload failed the application's check")
        self.verifier.write(destination_address, staged)
