"""Untrusted external memory (Section 3).

Everything outside the processor chip — this RAM included — can be observed
and modified by the adversary.  :class:`UntrustedMemory` is a flat byte
array with an optional :class:`~repro.memory.adversary.Adversary` attached;
the adversary sees every bus transaction and may corrupt the data returned
to the processor or the data actually stored, exactly like a probe on the
memory bus.

The *functional* hash-tree layer reads and writes through this object; the
timing layer models the same transactions with counters only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .adversary import Adversary


class UntrustedMemory:
    """Byte-addressable RAM sitting outside the security perimeter.

    Parameters
    ----------
    size_bytes:
        Capacity; accesses beyond it raise ``IndexError``.
    adversary:
        Optional bus probe; see :mod:`repro.memory.adversary`.
    record_trace:
        When True, every access is appended to :attr:`trace` as
        ``(op, address, length)`` — useful in tests and attack scripts.
    """

    def __init__(
        self,
        size_bytes: int,
        adversary: Optional["Adversary"] = None,
        record_trace: bool = False,
    ):
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)
        self.adversary = adversary
        self.record_trace = record_trace
        self.trace: List[Tuple[str, int, int]] = []
        self.reads = 0
        self.writes = 0

    # -- bus-visible accesses (adversary in the loop) -----------------------

    def read(self, address: int, length: int) -> bytes:
        """A bus read: the adversary may substitute the returned bytes."""
        self._check_range(address, length)
        self.reads += 1
        if self.record_trace:
            self.trace.append(("read", address, length))
        data = bytes(self._data[address : address + length])
        if self.adversary is not None:
            data = self.adversary.on_read(self, address, data)
            if len(data) != length:
                raise ValueError("adversary must preserve transfer length")
        return data

    def write(self, address: int, data: bytes) -> None:
        """A bus write: the adversary may substitute the stored bytes."""
        self._check_range(address, len(data))
        self.writes += 1
        if self.record_trace:
            self.trace.append(("write", address, len(data)))
        if self.adversary is not None:
            data = self.adversary.on_write(self, address, data)
            if len(data) > self.size_bytes - address:
                raise ValueError("adversary must preserve transfer length")
        self._data[address : address + len(data)] = data

    # -- out-of-band access (physical probing, used by adversaries/tests) ---

    def peek(self, address: int, length: int) -> bytes:
        """Read the true stored bytes without going through the bus."""
        self._check_range(address, length)
        return bytes(self._data[address : address + length])

    def poke(self, address: int, data: bytes) -> None:
        """Directly overwrite stored bytes (a physical attack primitive)."""
        self._check_range(address, len(data))
        self._data[address : address + len(data)] = data

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size_bytes:
            raise IndexError(
                f"access [{address}, {address + length}) outside memory of "
                f"{self.size_bytes} bytes"
            )

    def __len__(self) -> int:
        return self.size_bytes
