"""Adversary models for the untrusted memory bus (Sections 3, 4.4, 5.4.1).

An adversary is a probe on the memory bus: it sees every read and write and
may substitute the bytes either direction.  The classes below implement the
attack classes the paper reasons about:

* :class:`TamperAdversary` — spoofing: corrupt stored data.
* :class:`SpliceAdversary` — splicing: answer a read with data copied from
  a different address.
* :class:`ReplayAdversary` — replay: answer a read with a *stale* value
  that was legitimately stored at the same address earlier (this is the
  attack that breaks XOM's per-block MACs, Section 4.4).
* :class:`PredictiveReplayAdversary` — the "correctly predict the new
  value" attack against the timestamp-less incremental MAC
  (Section 5.4.1): swallow a write whose new value the adversary knows,
  leaving the old value in memory.

Each adversary can be armed/disarmed and records what it did, so tests can
assert both that tampering happened and that it was detected.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common.errors import AdversaryError
from .main_memory import UntrustedMemory


class Adversary:
    """Base class: a transparent probe that records nothing."""

    def __init__(self) -> None:
        self.armed = True
        self.actions: List[str] = []

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        """Called with the true stored bytes; returns what the bus delivers."""
        return data

    def on_write(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        """Called with the bytes the processor sent; returns what is stored."""
        return data

    def _log(self, message: str) -> None:
        self.actions.append(message)

    @property
    def tampered(self) -> bool:
        """True once this adversary has actually interfered."""
        return bool(self.actions)


class PassiveObserver(Adversary):
    """Watches the bus without modifying anything (for access-pattern attacks)."""

    def __init__(self) -> None:
        super().__init__()
        self.observed: List[Tuple[str, int, bytes]] = []

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        self.observed.append(("read", address, data))
        return data

    def on_write(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        self.observed.append(("write", address, data))
        return data


class TamperAdversary(Adversary):
    """Flip bits in the data returned for reads covering a target address.

    Parameters
    ----------
    target_address:
        Absolute byte address to corrupt.
    xor_mask:
        Byte XORed into the target (default flips every bit of one byte).
    trigger_after:
        Number of covering reads to let pass before striking; the attack
        fires once.
    """

    def __init__(
        self, target_address: int, xor_mask: int = 0xFF, trigger_after: int = 0
    ):
        super().__init__()
        if not 0 <= xor_mask <= 0xFF:
            raise AdversaryError("xor_mask must be one byte")
        if xor_mask == 0:
            raise AdversaryError("xor_mask of zero would not tamper at all")
        self.target_address = target_address
        self.xor_mask = xor_mask
        self.trigger_after = trigger_after
        self._seen = 0
        self._fired = False

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        if not self.armed or self._fired:
            return data
        if not address <= self.target_address < address + len(data):
            return data
        if self._seen < self.trigger_after:
            self._seen += 1
            return data
        offset = self.target_address - address
        corrupted = bytearray(data)
        corrupted[offset] ^= self.xor_mask
        self._fired = True
        self._log(f"tampered read at {self.target_address:#x}")
        return bytes(corrupted)


class SpliceAdversary(Adversary):
    """Answer reads of ``target_address`` with the bytes stored at ``source_address``.

    Defeats naive per-block hashing that does not bind the address into the
    hash; always caught by the tree because the hash lives at a
    position determined by the data's address.
    """

    def __init__(self, target_address: int, source_address: int):
        super().__init__()
        self.target_address = target_address
        self.source_address = source_address

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        if not self.armed:
            return data
        if not address <= self.target_address < address + len(data):
            return data
        length = len(data)
        spliced = memory.peek(self.source_address, length)
        self._log(
            f"spliced read at {self.target_address:#x} from {self.source_address:#x}"
        )
        return spliced


class ReplayAdversary(Adversary):
    """Return stale-but-genuine data: the classic freshness attack.

    Records the ``snapshot_on_write`` -th value written over
    ``target_address`` and substitutes it on every later read once armed.
    Since the stale value *was* legitimately stored at the same address,
    any address-bound MAC without freshness (XOM's scheme) accepts it;
    only the tree (whose root is on-chip) detects it.
    """

    def __init__(self, target_address: int, length: int, snapshot_on_write: int = 0):
        super().__init__()
        self.target_address = target_address
        self.length = length
        self.snapshot_on_write = snapshot_on_write
        self._writes_seen = 0
        self._snapshot: Optional[bytes] = None
        self.replaying = False

    def on_write(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        covers = (
            address <= self.target_address
            and self.target_address + self.length <= address + len(data)
        )
        if covers and self._snapshot is None:
            if self._writes_seen == self.snapshot_on_write:
                offset = self.target_address - address
                self._snapshot = data[offset : offset + self.length]
                self._log(f"snapshotted {self.length} bytes at {self.target_address:#x}")
            self._writes_seen += 1
        return data

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        if not (self.armed and self.replaying and self._snapshot is not None):
            return data
        covers = (
            address <= self.target_address
            and self.target_address + self.length <= address + len(data)
        )
        if not covers:
            return data
        offset = self.target_address - address
        replayed = bytearray(data)
        replayed[offset : offset + self.length] = self._snapshot
        self._log(f"replayed stale value at {self.target_address:#x}")
        return bytes(replayed)

    def start_replaying(self) -> None:
        if self._snapshot is None:
            raise AdversaryError("nothing snapshotted yet; cannot replay")
        self.replaying = True


class PredictiveReplayAdversary(Adversary):
    """The Section 5.4.1 attack on the incremental MAC without timestamps.

    If the adversary correctly predicts the new value ``d_n`` of a block
    being written back, it can *drop the write* (leave the old value
    ``d_o`` in memory) and later answer the checker's unchecked
    read-of-old-value with ``d_o`` while feeding the program ``d_n``…  the
    MAC update terms then cancel.  With the one-bit timestamp folded into
    every term the cancellation is impossible.

    This adversary swallows the next write that covers ``target_address``
    and thereafter lies on reads: it returns the dropped (old) value to the
    program while the incremental checker's raw old-value read sees memory
    as-is, reproducing the algebra of the paper's analysis.
    """

    def __init__(self, target_address: int, length: int):
        super().__init__()
        self.target_address = target_address
        self.length = length
        self.dropped_write: Optional[bytes] = None

    def on_write(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        if not self.armed or self.dropped_write is not None:
            return data
        covers = (
            address <= self.target_address
            and self.target_address + self.length <= address + len(data)
        )
        if not covers:
            return data
        offset = self.target_address - address
        old = memory.peek(address, len(data))
        self.dropped_write = data[offset : offset + self.length]
        kept = bytearray(data)
        kept[offset : offset + self.length] = old[offset : offset + self.length]
        self._log(f"dropped write of {self.length} bytes at {self.target_address:#x}")
        return bytes(kept)


class ScriptedAdversary(Adversary):
    """Composable adversary driving several sub-adversaries at once."""

    def __init__(self, *children: Adversary):
        super().__init__()
        self.children = list(children)

    def on_read(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        for child in self.children:
            data = child.on_read(memory, address, data)
        return data

    def on_write(self, memory: UntrustedMemory, address: int, data: bytes) -> bytes:
        for child in self.children:
            data = child.on_write(memory, address, data)
        return data

    @property
    def tampered(self) -> bool:
        return any(child.tampered for child in self.children)
