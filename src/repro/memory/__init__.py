"""Untrusted external memory, bus adversaries, and DMA."""

from .adversary import (
    Adversary,
    PassiveObserver,
    PredictiveReplayAdversary,
    ReplayAdversary,
    ScriptedAdversary,
    SpliceAdversary,
    TamperAdversary,
)
from .dma import DMAController, DMADevice
from .main_memory import UntrustedMemory

__all__ = [
    "Adversary",
    "PassiveObserver",
    "PredictiveReplayAdversary",
    "ReplayAdversary",
    "ScriptedAdversary",
    "SpliceAdversary",
    "TamperAdversary",
    "DMAController",
    "DMADevice",
    "UntrustedMemory",
]
