"""Synthetic instruction stream format for the core models.

SimpleScalar executed Alpha binaries; offline we drive the core with
synthetic instruction streams whose *statistics* (operation mix, dependency
distances, memory reference patterns, branch behaviour) are drawn from
per-benchmark profiles (:mod:`repro.workloads`).  Each instruction is a
compact record the core models interpret:

``dep1``/``dep2`` are distances back in program order to producing
instructions (0 means no register dependency) — geometric distances give
high ILP, distance-1 chains give serial code like pointer chasing.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Execution latency per operation class (cycles in a functional unit).
OP_LATENCY = {
    "alu": 1,
    "mul": 3,
    "fp": 4,
    "fdiv": 12,
    "load": 0,     # memory time comes from the hierarchy
    "store": 1,
    "branch": 1,
    "crypto": 8,   # signing step; also a verification barrier (Section 5.9)
    "nop": 1,
}


@dataclass(frozen=True)
class Instruction:
    """One synthetic instruction."""

    kind: str
    #: distances (in instructions) back to the producers of the operands.
    dep1: int = 0
    dep2: int = 0
    #: program data address for load/store.
    address: int = 0
    #: code address used for instruction fetch.
    pc: int = 0
    #: branch that the (implicit) predictor gets wrong.
    mispredicted: bool = False
    #: store belonging to a stream that overwrites whole blocks (enables the
    #: §5.3 valid-bit write-allocate optimization).
    full_block: bool = False

    def __post_init__(self) -> None:
        if self.kind not in OP_LATENCY:
            raise ValueError(f"unknown instruction kind {self.kind!r}")

    @property
    def is_memory(self) -> bool:
        return self.kind in ("load", "store")

    @property
    def latency(self) -> int:
        return OP_LATENCY[self.kind]
