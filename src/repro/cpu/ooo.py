"""Analytic out-of-order superscalar core model.

Models the machine of Table 1 — 4-wide fetch/issue/commit, a 128-entry
register update unit (RUU), a 64-entry load/store queue — as a dataflow
schedule with resource constraints, computed in one pass over the
instruction stream (no cycle loop, so large sweeps stay fast):

* **fetch**: ``fetch_width`` per cycle, stalled by RUU/LSQ occupancy,
  I-cache misses and branch mispredictions;
* **issue**: when operands are ready (register dependencies resolve via
  producer completion times); loads query the memory hierarchy at issue;
* **commit**: in order, ``commit_width`` per cycle, after completion.

Two integrity-specific behaviours from Section 5.9 are modelled exactly:
data from memory is consumed *speculatively* as soon as it arrives (a
load's completion is its ``data_ready``, not its ``check_done``), and
``crypto`` instructions are verification barriers — they do not complete
until every previously-issued check has finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..cache.hierarchy import MemoryHierarchy
from ..common.config import CoreConfig
from ..common.packed import MEAS_BRANCH_MISPREDICT, MEAS_LOAD, MEAS_STORE_FULL
from ..common.stats import StatGroup
from ..common.units import log2_exact
from ..kernels import load_ops, resolve_kernels
from ..kernels import measure as measure_kernel
from .isa import Instruction

#: extra pipeline stages between fetch and earliest issue.
FRONTEND_DEPTH = 3
#: fetch-redirect penalty after a mispredicted branch resolves.
MISPREDICT_PENALTY = 3


@dataclass
class CoreResult:
    """Outcome of one simulation run."""

    instructions: int
    cycles: int
    last_check_done: int
    #: absolute cycle the run finished at (pass as the next run's start).
    end_cycle: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderCore:
    """The analytic OoO model used for every figure in the evaluation."""

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy):
        self.config = config
        self.hierarchy = hierarchy
        self.stats = StatGroup("core")
        #: fetch-line granularity: one I-cache probe per L1-I line, derived
        #: from the configured geometry (the warm-up dedup uses the same
        #: shift, so warm and measured ifetch traffic always agree).
        self._iline_shift = log2_exact(hierarchy.config.l1i.block_bytes)

    def run(self, instructions: Iterable[Instruction],
            start_cycle: int = 0) -> CoreResult:
        """Schedule ``instructions``; ``start_cycle`` continues a previous
        run's clock so shared busy-until resources (bus, hash pipeline)
        stay consistent across warm-up and measurement."""
        cfg = self.config
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        ruu = cfg.ruu_entries
        lsq = cfg.lsq_entries
        hierarchy = self.hierarchy
        iline_shift = self._iline_shift
        l1i_latency = hierarchy.config.l1i.latency_cycles

        complete: list[int] = []   # completion time per instruction
        commit: list[int] = []     # commit time per instruction
        mem_commit: list[int] = [] # commit times of memory instructions

        fetch_cycle = start_cycle  # cycle the current fetch group issues in
        fetched_in_cycle = 0
        fetch_blocked_until = start_cycle  # mispredict redirects
        last_fetch_line = -1
        outstanding_checks = 0     # informational
        latest_check = 0
        count = 0

        for instruction in instructions:
            index = count
            count += 1

            # ---- fetch ------------------------------------------------------
            if fetched_in_cycle >= fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetch_time = max(fetch_cycle, fetch_blocked_until)

            # RUU occupancy: wait for instruction index-ruu to commit
            if index >= ruu:
                fetch_time = max(fetch_time, commit[index - ruu])
            # LSQ occupancy for memory operations
            if instruction.is_memory and len(mem_commit) >= lsq:
                fetch_time = max(fetch_time, mem_commit[len(mem_commit) - lsq])

            # I-cache: one lookup per new fetch line
            line = instruction.pc >> iline_shift
            if line != last_fetch_line:
                ready, _, itlb_cycles = hierarchy.ifetch(instruction.pc,
                                                         fetch_time)
                if ready > fetch_time + l1i_latency:
                    # attribute the stall to the structure that caused it:
                    # the I-TLB walk is folded into `ready` but is not an
                    # I-cache stall
                    if itlb_cycles:
                        self.stats.add("itlb_stall_cycles", itlb_cycles)
                    cache_delay = ready - fetch_time - itlb_cycles
                    if cache_delay > l1i_latency:
                        self.stats.add("icache_stall_cycles", cache_delay)
                    fetch_time = ready
                last_fetch_line = line
            if fetch_time > fetch_cycle:
                fetch_cycle = fetch_time
                fetched_in_cycle = 0
            fetched_in_cycle += 1

            # ---- issue / execute ---------------------------------------------
            ready = fetch_time + FRONTEND_DEPTH
            if instruction.dep1 and index - instruction.dep1 >= 0:
                ready = max(ready, complete[index - instruction.dep1])
            if instruction.dep2 and index - instruction.dep2 >= 0:
                ready = max(ready, complete[index - instruction.dep2])

            if instruction.kind == "load":
                data_ready, check_done = hierarchy.load(instruction.address,
                                                        ready)
                done = max(data_ready, ready + 1)
                latest_check = max(latest_check, check_done)
                self.stats.add("loads")
            elif instruction.kind == "store":
                store_done, check_done = hierarchy.store(
                    instruction.address, ready,
                    full_block=instruction.full_block,
                )
                # stores complete quickly; the LSQ entry is held until the
                # write has actually landed (store_done)
                done = ready + 1
                latest_check = max(latest_check, check_done)
                self.stats.add("stores")
                ready_for_lsq = max(store_done, done)
            elif instruction.kind == "crypto":
                # verification barrier: every outstanding check must finish
                done = max(ready, latest_check) + instruction.latency
                self.stats.add("crypto_barriers")
            else:
                done = ready + instruction.latency

            complete.append(done)

            # ---- commit --------------------------------------------------------
            commit_time = done
            if index > 0:
                commit_time = max(commit_time, commit[index - 1])
            if index >= commit_width:
                commit_time = max(commit_time, commit[index - commit_width] + 1)
            commit.append(commit_time)
            if instruction.is_memory:
                if instruction.kind == "store":
                    mem_commit.append(max(commit_time, ready_for_lsq))
                else:
                    mem_commit.append(commit_time)

            # ---- branch misprediction -------------------------------------------
            if instruction.kind == "branch" and instruction.mispredicted:
                fetch_blocked_until = max(fetch_blocked_until,
                                          done + MISPREDICT_PENALTY)
                self.stats.add("mispredictions")

        end_cycle = commit[-1] + 1 if commit else start_cycle
        cycles = end_cycle - start_cycle
        self.stats.set("cycles", cycles)
        self.stats.set("instructions", count)
        return CoreResult(instructions=count, cycles=cycles,
                          last_check_done=latest_check, end_cycle=end_cycle)

    def run_packed(self, chunks, start_cycle: int = 0) -> CoreResult:
        """Schedule packed measured-mode chunks; the fast twin of :meth:`run`.

        ``chunks`` is an iterable of column tuples from
        :meth:`InstructionStream.take_packed
        <repro.workloads.generators.InstructionStream.take_packed>`.  The
        analytic schedule is the same one :meth:`run` computes, expressed
        over parallel columns instead of :class:`Instruction` objects, so
        the :class:`CoreResult` and the statistics are bit-identical to
        running the equivalent object stream — only the wall-clock differs.

        The unbounded ``complete``/``commit``/``mem_commit`` lists become
        ring buffers sized by the machine's own windows: an operand
        producer more than ``ruu_entries`` back has necessarily committed
        before this instruction fetches (the RUU-occupancy bound makes
        ``fetch_time >= commit[index - ruu]``, commit times are monotone,
        and completion never exceeds commit), so its completion time can
        never be the binding constraint and the dependency lookup is
        skipped outside the window.  The memory hierarchy is consulted
        exactly where :meth:`run` consults it: once per new fetch line and
        once per load/store row; ALU/FP/branch rows never leave the core.
        """
        cfg = self.config
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        ruu = cfg.ruu_entries
        lsq = cfg.lsq_entries
        hierarchy = self.hierarchy
        hier_ifetch = hierarchy.ifetch
        hier_load = hierarchy.load
        hier_store = hierarchy.store
        iline_shift = self._iline_shift
        l1i_latency = hierarchy.config.l1i.latency_cycles

        window = max(ruu, commit_width + 1)
        # round the rings up to powers of two so the hot loop can index with
        # a mask instead of a modulo; slots are only read within `window`
        # (resp. `lsq`) of being written, so the extra slack slots are inert
        ring = 1 << (window - 1).bit_length()
        mask = ring - 1
        mem_ring = 1 << (lsq - 1).bit_length()
        mem_mask = mem_ring - 1
        complete = [0] * ring     # completion times, last `window` entries
        commit = [0] * ring       # commit times, last `window` entries
        mem_commit = [0] * mem_ring  # commit times of the last `lsq` mem ops
        mem_count = 0
        prev_commit = 0           # commit time of instruction index-1

        meas_load = MEAS_LOAD
        meas_store_full = MEAS_STORE_FULL
        meas_mispredict = MEAS_BRANCH_MISPREDICT
        frontend_depth = FRONTEND_DEPTH
        mispredict_penalty = MISPREDICT_PENALTY

        fetch_cycle = start_cycle
        fetched_in_cycle = 0
        fetch_blocked_until = start_cycle
        last_fetch_line = -1
        latest_check = 0
        count = 0
        loads = stores = mispredictions = 0
        icache_stall = itlb_stall = 0

        for kinds, pcs, addresses, dep1s, dep2s, latencies in chunks:
            rows = zip(kinds, pcs, addresses, dep1s, dep2s, latencies)
            # prologue: full-generality body while the window fills.  Once
            # `count >= window` (>= ruu, commit_width and any dependency
            # distance the steady loop honours), the guards `index >= ruu`,
            # `dep <= index`, `index > 0` and `index >= commit_width` are
            # always true, so the steady-state loop below drops them.
            if count < window:
                for kind, pc, address, dep1, dep2, latency in rows:
                    index = count
                    count += 1

                    # ---- fetch ----------------------------------------------
                    if fetched_in_cycle >= fetch_width:
                        fetch_cycle += 1
                        fetched_in_cycle = 0
                    fetch_time = (fetch_cycle
                                  if fetch_cycle >= fetch_blocked_until
                                  else fetch_blocked_until)

                    if index >= ruu:
                        occupancy = commit[(index - ruu) & mask]
                        if occupancy > fetch_time:
                            fetch_time = occupancy
                    is_memory = meas_load <= kind <= meas_store_full
                    if is_memory and mem_count >= lsq:
                        occupancy = mem_commit[(mem_count - lsq) & mem_mask]
                        if occupancy > fetch_time:
                            fetch_time = occupancy

                    line = pc >> iline_shift
                    if line != last_fetch_line:
                        ready, _, itlb_cycles = hier_ifetch(pc, fetch_time)
                        if ready > fetch_time + l1i_latency:
                            if itlb_cycles:
                                itlb_stall += itlb_cycles
                            cache_delay = ready - fetch_time - itlb_cycles
                            if cache_delay > l1i_latency:
                                icache_stall += cache_delay
                            fetch_time = ready
                        last_fetch_line = line
                    if fetch_time > fetch_cycle:
                        fetch_cycle = fetch_time
                        fetched_in_cycle = 0
                    fetched_in_cycle += 1

                    # ---- issue / execute ------------------------------------
                    ready = fetch_time + frontend_depth
                    if dep1 and dep1 <= index and dep1 <= window:
                        produced = complete[(index - dep1) & mask]
                        if produced > ready:
                            ready = produced
                    if dep2 and dep2 <= index and dep2 <= window:
                        produced = complete[(index - dep2) & mask]
                        if produced > ready:
                            ready = produced

                    if kind == meas_load:
                        data_ready, check_done = hier_load(address, ready)
                        done = (data_ready if data_ready > ready + 1
                                else ready + 1)
                        if check_done > latest_check:
                            latest_check = check_done
                        loads += 1
                    elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                        store_done, check_done = hier_store(
                            address, ready, full_block=kind == meas_store_full)
                        done = ready + 1
                        if check_done > latest_check:
                            latest_check = check_done
                        stores += 1
                        ready_for_lsq = (store_done if store_done > done
                                         else done)
                    else:
                        done = ready + latency
                    slot = index & mask
                    complete[slot] = done

                    # ---- commit ---------------------------------------------
                    commit_time = done
                    if index > 0 and prev_commit > commit_time:
                        commit_time = prev_commit
                    if index >= commit_width:
                        drained = commit[(index - commit_width) & mask] + 1
                        if drained > commit_time:
                            commit_time = drained
                    commit[slot] = commit_time
                    prev_commit = commit_time
                    if is_memory:
                        if kind == meas_load:
                            mem_commit[mem_count & mem_mask] = commit_time
                        else:
                            mem_commit[mem_count & mem_mask] = (
                                commit_time if commit_time > ready_for_lsq
                                else ready_for_lsq)
                        mem_count += 1

                    # ---- branch misprediction -------------------------------
                    if kind == meas_mispredict:
                        redirect = done + mispredict_penalty
                        if redirect > fetch_blocked_until:
                            fetch_blocked_until = redirect
                        mispredictions += 1

                    if count >= window:
                        break

            # steady state: same schedule with the always-true guards gone
            for kind, pc, address, dep1, dep2, latency in rows:
                index = count
                count += 1

                # ---- fetch --------------------------------------------------
                if fetched_in_cycle >= fetch_width:
                    fetch_cycle += 1
                    fetched_in_cycle = 0
                fetch_time = (fetch_cycle if fetch_cycle >= fetch_blocked_until
                              else fetch_blocked_until)

                occupancy = commit[(index - ruu) & mask]
                if occupancy > fetch_time:
                    fetch_time = occupancy
                is_memory = meas_load <= kind <= meas_store_full
                if is_memory and mem_count >= lsq:
                    occupancy = mem_commit[(mem_count - lsq) & mem_mask]
                    if occupancy > fetch_time:
                        fetch_time = occupancy

                line = pc >> iline_shift
                if line != last_fetch_line:
                    ready, _, itlb_cycles = hier_ifetch(pc, fetch_time)
                    if ready > fetch_time + l1i_latency:
                        if itlb_cycles:
                            itlb_stall += itlb_cycles
                        cache_delay = ready - fetch_time - itlb_cycles
                        if cache_delay > l1i_latency:
                            icache_stall += cache_delay
                        fetch_time = ready
                    last_fetch_line = line
                if fetch_time > fetch_cycle:
                    fetch_cycle = fetch_time
                    fetched_in_cycle = 0
                fetched_in_cycle += 1

                # ---- issue / execute ----------------------------------------
                ready = fetch_time + frontend_depth
                if dep1 and dep1 <= window:
                    produced = complete[(index - dep1) & mask]
                    if produced > ready:
                        ready = produced
                if dep2 and dep2 <= window:
                    produced = complete[(index - dep2) & mask]
                    if produced > ready:
                        ready = produced

                if kind == meas_load:
                    data_ready, check_done = hier_load(address, ready)
                    done = data_ready if data_ready > ready + 1 else ready + 1
                    if check_done > latest_check:
                        latest_check = check_done
                    loads += 1
                elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                    store_done, check_done = hier_store(
                        address, ready, full_block=kind == meas_store_full)
                    done = ready + 1
                    if check_done > latest_check:
                        latest_check = check_done
                    stores += 1
                    ready_for_lsq = store_done if store_done > done else done
                else:
                    done = ready + latency
                slot = index & mask
                complete[slot] = done

                # ---- commit -------------------------------------------------
                commit_time = done
                if prev_commit > commit_time:
                    commit_time = prev_commit
                drained = commit[(index - commit_width) & mask] + 1
                if drained > commit_time:
                    commit_time = drained
                commit[slot] = commit_time
                prev_commit = commit_time
                if is_memory:
                    if kind == meas_load:
                        mem_commit[mem_count & mem_mask] = commit_time
                    else:
                        mem_commit[mem_count & mem_mask] = (
                            commit_time if commit_time > ready_for_lsq
                            else ready_for_lsq)
                    mem_count += 1

                # ---- branch misprediction -----------------------------------
                if kind == meas_mispredict:
                    redirect = done + mispredict_penalty
                    if redirect > fetch_blocked_until:
                        fetch_blocked_until = redirect
                    mispredictions += 1

        if loads:
            self.stats.add("loads", loads)
        if stores:
            self.stats.add("stores", stores)
        if mispredictions:
            self.stats.add("mispredictions", mispredictions)
        if itlb_stall:
            self.stats.add("itlb_stall_cycles", itlb_stall)
        if icache_stall:
            self.stats.add("icache_stall_cycles", icache_stall)
        end_cycle = prev_commit + 1 if count else start_cycle
        cycles = end_cycle - start_cycle
        self.stats.set("cycles", cycles)
        self.stats.set("instructions", count)
        return CoreResult(instructions=count, cycles=cycles,
                          last_check_done=latest_check, end_cycle=end_cycle)

    def run_vec(self, chunks, start_cycle: int = 0, ops=None) -> CoreResult:
        """Schedule packed measured-mode chunks through the vectorized
        kernel backend; the batched twin of :meth:`run_packed`.

        Each chunk is classified by a
        :class:`~repro.kernels.measure.MeasurePrepass`: timing-free rows
        (the overwhelming majority on cache-resident workloads) resolve
        to precomputed completion deltas — applied to the caches in
        dependency-free batches — so the ring-buffer schedule below
        touches only scalars for them.  Rows that reach the integrity
        scheme keep their live hierarchy call, made *here* at the real
        cycle with state in exact row order, so :class:`CoreResult` and
        every statistic stay bit-identical to :meth:`run_packed` (and to
        :meth:`run`).

        The gate is adaptive, per chunk: a chunk whose timing-free
        fraction falls below the kernel's threshold sends the *next*
        chunk through the plain packed row loop (first chunk included —
        its prologue also fills the scheduling window the steady-state
        vector loop assumes).  ``ops`` is a kernel backend module; by
        default the best available backend is resolved, and the
        ``packed`` oracle backend delegates to :meth:`run_packed`.
        """
        if ops is None:
            backend = resolve_kernels()
            if backend == "packed":
                return self.run_packed(chunks, start_cycle)
            ops = load_ops(backend)
        cfg = self.config
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        ruu = cfg.ruu_entries
        lsq = cfg.lsq_entries
        hierarchy = self.hierarchy
        hier_ifetch = hierarchy.ifetch
        hier_load = hierarchy.load
        hier_store = hierarchy.store
        iline_shift = self._iline_shift
        l1i_latency = hierarchy.config.l1i.latency_cycles
        l1_latency = hierarchy._l1_latency
        # a data access that resolved at L1-hit-plus-TLB-walk latency is
        # timing-free too; only genuine L1 misses count as slow rows
        l1_tlb_latency = l1_latency + hierarchy.dtlb._miss_penalty

        window = max(ruu, commit_width + 1)
        ring = 1 << (window - 1).bit_length()
        mask = ring - 1
        mem_ring = 1 << (lsq - 1).bit_length()
        mem_mask = mem_ring - 1
        complete = [0] * ring
        commit = [0] * ring
        mem_commit = [0] * mem_ring
        mem_count = 0
        prev_commit = 0

        meas_load = MEAS_LOAD
        meas_store_full = MEAS_STORE_FULL
        meas_mispredict = MEAS_BRANCH_MISPREDICT
        frontend_depth = FRONTEND_DEPTH
        mispredict_penalty = MISPREDICT_PENALTY
        timing = measure_kernel.TIMING
        min_fast = measure_kernel.MIN_FAST_FRACTION
        prepass_class = measure_kernel.MeasurePrepass

        fetch_cycle = start_cycle
        fetched_in_cycle = 0
        fetch_blocked_until = start_cycle
        last_fetch_line = -1
        latest_check = 0
        count = 0
        loads = stores = mispredictions = 0
        icache_stall = itlb_stall = 0
        # optimistic start: measured runs begin from a warmed hierarchy,
        # so the first chunk is almost always timing-free-dominated; a
        # genuinely cold chunk just interprets its misses row by row and
        # the observed fraction reroutes the next chunk
        fast_fraction = 1.0

        for kinds, pcs, addresses, dep1s, dep2s, latencies in chunks:
            n_rows = len(kinds)
            if not n_rows:
                continue
            if fast_fraction >= min_fast:
                # ---- vectorized chunk -----------------------------------
                pre = prepass_class(ops, hierarchy, kinds, pcs, addresses,
                                    last_fetch_line)
                pre.run()
                last_fetch_line = pre.carry
                pre_run = pre.run
                mem_info_col = pre.mem_info
                base = count
                # the info columns are ``None``-folded: one slot carries
                # both "was the structure consulted" and the all-hit
                # delta, so the loop unpacks six values per row and only
                # TIMING rows reach back into the pc/address columns
                rows = zip(kinds, dep1s, dep2s, latencies,
                           pre.if_info, pre.mem_info)
                # prologue twin of run_packed's: full guards while the
                # window fills, reading the precomputed info columns
                if count < window:
                    for kind, dep1, dep2, latency, f_info, m_info in rows:
                        index = count
                        count += 1

                        # ---- fetch --------------------------------------
                        if fetched_in_cycle >= fetch_width:
                            fetch_cycle += 1
                            fetched_in_cycle = 0
                        fetch_time = (fetch_cycle
                                      if fetch_cycle >= fetch_blocked_until
                                      else fetch_blocked_until)

                        if index >= ruu:
                            occupancy = commit[(index - ruu) & mask]
                            if occupancy > fetch_time:
                                fetch_time = occupancy
                        is_memory = m_info is not None
                        if is_memory and mem_count >= lsq:
                            occupancy = mem_commit[(mem_count - lsq)
                                                   & mem_mask]
                            if occupancy > fetch_time:
                                fetch_time = occupancy

                        if f_info is not None:
                            if f_info is timing:
                                ready, _, itlb_cycles = hier_ifetch(
                                    pcs[index - base], fetch_time)
                                pre_run()
                                delta = ready - fetch_time
                                if is_memory:
                                    # the resumed walk may just have
                                    # (re)classified this row's data
                                    # access; the zipped slot is stale
                                    m_info = mem_info_col[index - base]
                            else:
                                delta, itlb_cycles = f_info
                            if delta > l1i_latency:
                                if itlb_cycles:
                                    itlb_stall += itlb_cycles
                                cache_delay = delta - itlb_cycles
                                if cache_delay > l1i_latency:
                                    icache_stall += cache_delay
                                fetch_time += delta
                        if fetch_time > fetch_cycle:
                            fetch_cycle = fetch_time
                            fetched_in_cycle = 0
                        fetched_in_cycle += 1

                        # ---- issue / execute ----------------------------
                        ready = fetch_time + frontend_depth
                        if dep1 and dep1 <= index and dep1 <= window:
                            produced = complete[(index - dep1) & mask]
                            if produced > ready:
                                ready = produced
                        if dep2 and dep2 <= index and dep2 <= window:
                            produced = complete[(index - dep2) & mask]
                            if produced > ready:
                                ready = produced

                        if kind == meas_load:
                            if m_info is timing:
                                data_ready, check_done = hier_load(
                                    addresses[index - base], ready)
                                pre_run()
                            else:
                                data_ready = ready + m_info
                                check_done = data_ready
                            done = (data_ready if data_ready > ready + 1
                                    else ready + 1)
                            if check_done > latest_check:
                                latest_check = check_done
                            loads += 1
                        elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                            if m_info is timing:
                                store_done, check_done = hier_store(
                                    addresses[index - base], ready,
                                    full_block=kind == meas_store_full)
                                pre_run()
                            else:
                                store_done = ready + m_info
                                check_done = store_done
                            done = ready + 1
                            if check_done > latest_check:
                                latest_check = check_done
                            stores += 1
                            ready_for_lsq = (store_done
                                             if store_done > done else done)
                        else:
                            done = ready + latency
                        slot = index & mask
                        complete[slot] = done

                        # ---- commit -------------------------------------
                        commit_time = done
                        if index > 0 and prev_commit > commit_time:
                            commit_time = prev_commit
                        if index >= commit_width:
                            drained = commit[(index - commit_width)
                                             & mask] + 1
                            if drained > commit_time:
                                commit_time = drained
                        commit[slot] = commit_time
                        prev_commit = commit_time
                        if is_memory:
                            if kind == meas_load:
                                mem_commit[mem_count & mem_mask] = commit_time
                            else:
                                mem_commit[mem_count & mem_mask] = (
                                    commit_time
                                    if commit_time > ready_for_lsq
                                    else ready_for_lsq)
                            mem_count += 1

                        # ---- branch misprediction -----------------------
                        if kind == meas_mispredict:
                            redirect = done + mispredict_penalty
                            if redirect > fetch_blocked_until:
                                fetch_blocked_until = redirect
                            mispredictions += 1

                        if count >= window:
                            break

                for kind, dep1, dep2, latency, f_info, m_info in rows:
                    index = count
                    count += 1

                    # ---- fetch ------------------------------------------
                    if fetched_in_cycle >= fetch_width:
                        fetch_cycle += 1
                        fetched_in_cycle = 0
                    fetch_time = (fetch_cycle
                                  if fetch_cycle >= fetch_blocked_until
                                  else fetch_blocked_until)

                    occupancy = commit[(index - ruu) & mask]
                    if occupancy > fetch_time:
                        fetch_time = occupancy
                    is_memory = m_info is not None
                    if is_memory and mem_count >= lsq:
                        occupancy = mem_commit[(mem_count - lsq) & mem_mask]
                        if occupancy > fetch_time:
                            fetch_time = occupancy

                    if f_info is not None:
                        if f_info is timing:
                            ready, _, itlb_cycles = hier_ifetch(
                                pcs[index - base], fetch_time)
                            pre_run()
                            delta = ready - fetch_time
                            if is_memory:
                                # the resumed walk may just have
                                # (re)classified this row's data access;
                                # the zipped slot is stale
                                m_info = mem_info_col[index - base]
                        else:
                            delta, itlb_cycles = f_info
                        if delta > l1i_latency:
                            if itlb_cycles:
                                itlb_stall += itlb_cycles
                            cache_delay = delta - itlb_cycles
                            if cache_delay > l1i_latency:
                                icache_stall += cache_delay
                            fetch_time += delta
                    if fetch_time > fetch_cycle:
                        fetch_cycle = fetch_time
                        fetched_in_cycle = 0
                    fetched_in_cycle += 1

                    # ---- issue / execute --------------------------------
                    ready = fetch_time + frontend_depth
                    if dep1 and dep1 <= window:
                        produced = complete[(index - dep1) & mask]
                        if produced > ready:
                            ready = produced
                    if dep2 and dep2 <= window:
                        produced = complete[(index - dep2) & mask]
                        if produced > ready:
                            ready = produced

                    if kind == meas_load:
                        if m_info is timing:
                            data_ready, check_done = hier_load(
                                addresses[index - base], ready)
                            pre_run()
                        else:
                            data_ready = ready + m_info
                            check_done = data_ready
                        done = (data_ready if data_ready > ready + 1
                                else ready + 1)
                        if check_done > latest_check:
                            latest_check = check_done
                        loads += 1
                    elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                        if m_info is timing:
                            store_done, check_done = hier_store(
                                addresses[index - base], ready,
                                full_block=kind == meas_store_full)
                            pre_run()
                        else:
                            store_done = ready + m_info
                            check_done = store_done
                        done = ready + 1
                        if check_done > latest_check:
                            latest_check = check_done
                        stores += 1
                        ready_for_lsq = (store_done if store_done > done
                                         else done)
                    else:
                        done = ready + latency
                    slot = index & mask
                    complete[slot] = done

                    # ---- commit -----------------------------------------
                    commit_time = done
                    if prev_commit > commit_time:
                        commit_time = prev_commit
                    drained = commit[(index - commit_width) & mask] + 1
                    if drained > commit_time:
                        commit_time = drained
                    commit[slot] = commit_time
                    prev_commit = commit_time
                    if is_memory:
                        if kind == meas_load:
                            mem_commit[mem_count & mem_mask] = commit_time
                        else:
                            mem_commit[mem_count & mem_mask] = (
                                commit_time if commit_time > ready_for_lsq
                                else ready_for_lsq)
                        mem_count += 1

                    # ---- branch misprediction ---------------------------
                    if kind == meas_mispredict:
                        redirect = done + mispredict_penalty
                        if redirect > fetch_blocked_until:
                            fetch_blocked_until = redirect
                        mispredictions += 1
                # the prepass finished with the last row; its observed
                # timing-free fraction gates the next chunk
                fast_fraction = pre.fast_fraction
                continue

            # ---- packed row loop (cold/miss-heavy chunk) ----------------
            # identical to run_packed, plus the slow-row count that gates
            # the next chunk (a row is slow when either of its hierarchy
            # calls resolved above the constant L1 latency)
            slow_rows = 0
            rows = zip(kinds, pcs, addresses, dep1s, dep2s, latencies)
            if count < window:
                for kind, pc, address, dep1, dep2, latency in rows:
                    index = count
                    count += 1

                    # ---- fetch ------------------------------------------
                    if fetched_in_cycle >= fetch_width:
                        fetch_cycle += 1
                        fetched_in_cycle = 0
                    fetch_time = (fetch_cycle
                                  if fetch_cycle >= fetch_blocked_until
                                  else fetch_blocked_until)

                    if index >= ruu:
                        occupancy = commit[(index - ruu) & mask]
                        if occupancy > fetch_time:
                            fetch_time = occupancy
                    is_memory = meas_load <= kind <= meas_store_full
                    if is_memory and mem_count >= lsq:
                        occupancy = mem_commit[(mem_count - lsq) & mem_mask]
                        if occupancy > fetch_time:
                            fetch_time = occupancy

                    line = pc >> iline_shift
                    if line != last_fetch_line:
                        ready, _, itlb_cycles = hier_ifetch(pc, fetch_time)
                        if ready - fetch_time - itlb_cycles != l1i_latency:
                            slow_rows += 1
                        if ready > fetch_time + l1i_latency:
                            if itlb_cycles:
                                itlb_stall += itlb_cycles
                            cache_delay = ready - fetch_time - itlb_cycles
                            if cache_delay > l1i_latency:
                                icache_stall += cache_delay
                            fetch_time = ready
                        last_fetch_line = line
                    if fetch_time > fetch_cycle:
                        fetch_cycle = fetch_time
                        fetched_in_cycle = 0
                    fetched_in_cycle += 1

                    # ---- issue / execute --------------------------------
                    ready = fetch_time + frontend_depth
                    if dep1 and dep1 <= index and dep1 <= window:
                        produced = complete[(index - dep1) & mask]
                        if produced > ready:
                            ready = produced
                    if dep2 and dep2 <= index and dep2 <= window:
                        produced = complete[(index - dep2) & mask]
                        if produced > ready:
                            ready = produced

                    if kind == meas_load:
                        data_ready, check_done = hier_load(address, ready)
                        delta = data_ready - ready
                        if delta != l1_latency and delta != l1_tlb_latency:
                            slow_rows += 1
                        done = (data_ready if data_ready > ready + 1
                                else ready + 1)
                        if check_done > latest_check:
                            latest_check = check_done
                        loads += 1
                    elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                        store_done, check_done = hier_store(
                            address, ready,
                            full_block=kind == meas_store_full)
                        delta = store_done - ready
                        if delta != l1_latency and delta != l1_tlb_latency:
                            slow_rows += 1
                        done = ready + 1
                        if check_done > latest_check:
                            latest_check = check_done
                        stores += 1
                        ready_for_lsq = (store_done if store_done > done
                                         else done)
                    else:
                        done = ready + latency
                    slot = index & mask
                    complete[slot] = done

                    # ---- commit -----------------------------------------
                    commit_time = done
                    if index > 0 and prev_commit > commit_time:
                        commit_time = prev_commit
                    if index >= commit_width:
                        drained = commit[(index - commit_width) & mask] + 1
                        if drained > commit_time:
                            commit_time = drained
                    commit[slot] = commit_time
                    prev_commit = commit_time
                    if is_memory:
                        if kind == meas_load:
                            mem_commit[mem_count & mem_mask] = commit_time
                        else:
                            mem_commit[mem_count & mem_mask] = (
                                commit_time if commit_time > ready_for_lsq
                                else ready_for_lsq)
                        mem_count += 1

                    # ---- branch misprediction ---------------------------
                    if kind == meas_mispredict:
                        redirect = done + mispredict_penalty
                        if redirect > fetch_blocked_until:
                            fetch_blocked_until = redirect
                        mispredictions += 1

                    if count >= window:
                        break

            for kind, pc, address, dep1, dep2, latency in rows:
                index = count
                count += 1

                # ---- fetch ----------------------------------------------
                if fetched_in_cycle >= fetch_width:
                    fetch_cycle += 1
                    fetched_in_cycle = 0
                fetch_time = (fetch_cycle if fetch_cycle >= fetch_blocked_until
                              else fetch_blocked_until)

                occupancy = commit[(index - ruu) & mask]
                if occupancy > fetch_time:
                    fetch_time = occupancy
                is_memory = meas_load <= kind <= meas_store_full
                if is_memory and mem_count >= lsq:
                    occupancy = mem_commit[(mem_count - lsq) & mem_mask]
                    if occupancy > fetch_time:
                        fetch_time = occupancy

                line = pc >> iline_shift
                if line != last_fetch_line:
                    ready, _, itlb_cycles = hier_ifetch(pc, fetch_time)
                    if ready - fetch_time - itlb_cycles != l1i_latency:
                        slow_rows += 1
                    if ready > fetch_time + l1i_latency:
                        if itlb_cycles:
                            itlb_stall += itlb_cycles
                        cache_delay = ready - fetch_time - itlb_cycles
                        if cache_delay > l1i_latency:
                            icache_stall += cache_delay
                        fetch_time = ready
                    last_fetch_line = line
                if fetch_time > fetch_cycle:
                    fetch_cycle = fetch_time
                    fetched_in_cycle = 0
                fetched_in_cycle += 1

                # ---- issue / execute ------------------------------------
                ready = fetch_time + frontend_depth
                if dep1 and dep1 <= window:
                    produced = complete[(index - dep1) & mask]
                    if produced > ready:
                        ready = produced
                if dep2 and dep2 <= window:
                    produced = complete[(index - dep2) & mask]
                    if produced > ready:
                        ready = produced

                if kind == meas_load:
                    data_ready, check_done = hier_load(address, ready)
                    delta = data_ready - ready
                    if delta != l1_latency and delta != l1_tlb_latency:
                        slow_rows += 1
                    done = data_ready if data_ready > ready + 1 else ready + 1
                    if check_done > latest_check:
                        latest_check = check_done
                    loads += 1
                elif is_memory:  # MEAS_STORE or MEAS_STORE_FULL
                    store_done, check_done = hier_store(
                        address, ready, full_block=kind == meas_store_full)
                    delta = store_done - ready
                    if delta != l1_latency and delta != l1_tlb_latency:
                        slow_rows += 1
                    done = ready + 1
                    if check_done > latest_check:
                        latest_check = check_done
                    stores += 1
                    ready_for_lsq = store_done if store_done > done else done
                else:
                    done = ready + latency
                slot = index & mask
                complete[slot] = done

                # ---- commit ---------------------------------------------
                commit_time = done
                if prev_commit > commit_time:
                    commit_time = prev_commit
                drained = commit[(index - commit_width) & mask] + 1
                if drained > commit_time:
                    commit_time = drained
                commit[slot] = commit_time
                prev_commit = commit_time
                if is_memory:
                    if kind == meas_load:
                        mem_commit[mem_count & mem_mask] = commit_time
                    else:
                        mem_commit[mem_count & mem_mask] = (
                            commit_time if commit_time > ready_for_lsq
                            else ready_for_lsq)
                    mem_count += 1

                # ---- branch misprediction -------------------------------
                if kind == meas_mispredict:
                    redirect = done + mispredict_penalty
                    if redirect > fetch_blocked_until:
                        fetch_blocked_until = redirect
                    mispredictions += 1

            fast_fraction = 1.0 - slow_rows / n_rows

        if loads:
            self.stats.add("loads", loads)
        if stores:
            self.stats.add("stores", stores)
        if mispredictions:
            self.stats.add("mispredictions", mispredictions)
        if itlb_stall:
            self.stats.add("itlb_stall_cycles", itlb_stall)
        if icache_stall:
            self.stats.add("icache_stall_cycles", icache_stall)
        end_cycle = prev_commit + 1 if count else start_cycle
        cycles = end_cycle - start_cycle
        self.stats.set("cycles", cycles)
        self.stats.set("instructions", count)
        return CoreResult(instructions=count, cycles=cycles,
                          last_check_done=latest_check, end_cycle=end_cycle)
