"""Analytic out-of-order superscalar core model.

Models the machine of Table 1 — 4-wide fetch/issue/commit, a 128-entry
register update unit (RUU), a 64-entry load/store queue — as a dataflow
schedule with resource constraints, computed in one pass over the
instruction stream (no cycle loop, so large sweeps stay fast):

* **fetch**: ``fetch_width`` per cycle, stalled by RUU/LSQ occupancy,
  I-cache misses and branch mispredictions;
* **issue**: when operands are ready (register dependencies resolve via
  producer completion times); loads query the memory hierarchy at issue;
* **commit**: in order, ``commit_width`` per cycle, after completion.

Two integrity-specific behaviours from Section 5.9 are modelled exactly:
data from memory is consumed *speculatively* as soon as it arrives (a
load's completion is its ``data_ready``, not its ``check_done``), and
``crypto`` instructions are verification barriers — they do not complete
until every previously-issued check has finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..cache.hierarchy import MemoryHierarchy
from ..common.config import CoreConfig
from ..common.stats import StatGroup
from .isa import Instruction

#: extra pipeline stages between fetch and earliest issue.
FRONTEND_DEPTH = 3
#: fetch-redirect penalty after a mispredicted branch resolves.
MISPREDICT_PENALTY = 3


@dataclass
class CoreResult:
    """Outcome of one simulation run."""

    instructions: int
    cycles: int
    last_check_done: int
    #: absolute cycle the run finished at (pass as the next run's start).
    end_cycle: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderCore:
    """The analytic OoO model used for every figure in the evaluation."""

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy):
        self.config = config
        self.hierarchy = hierarchy
        self.stats = StatGroup("core")

    def run(self, instructions: Iterable[Instruction],
            start_cycle: int = 0) -> CoreResult:
        """Schedule ``instructions``; ``start_cycle`` continues a previous
        run's clock so shared busy-until resources (bus, hash pipeline)
        stay consistent across warm-up and measurement."""
        cfg = self.config
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        ruu = cfg.ruu_entries
        lsq = cfg.lsq_entries
        hierarchy = self.hierarchy

        complete: list[int] = []   # completion time per instruction
        commit: list[int] = []     # commit time per instruction
        mem_commit: list[int] = [] # commit times of memory instructions

        fetch_cycle = start_cycle  # cycle the current fetch group issues in
        fetched_in_cycle = 0
        fetch_blocked_until = start_cycle  # mispredict redirects
        last_fetch_line = -1
        outstanding_checks = 0     # informational
        latest_check = 0
        count = 0

        for instruction in instructions:
            index = count
            count += 1

            # ---- fetch ------------------------------------------------------
            if fetched_in_cycle >= fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetch_time = max(fetch_cycle, fetch_blocked_until)

            # RUU occupancy: wait for instruction index-ruu to commit
            if index >= ruu:
                fetch_time = max(fetch_time, commit[index - ruu])
            # LSQ occupancy for memory operations
            if instruction.is_memory and len(mem_commit) >= lsq:
                fetch_time = max(fetch_time, mem_commit[len(mem_commit) - lsq])

            # I-cache: one lookup per new fetch line
            line = instruction.pc >> 5
            if line != last_fetch_line:
                ready, _ = hierarchy.ifetch(instruction.pc, fetch_time)
                if ready > fetch_time + hierarchy.config.l1i.latency_cycles:
                    self.stats.add("icache_stall_cycles",
                                   ready - fetch_time)
                    fetch_time = ready
                last_fetch_line = line
            if fetch_time > fetch_cycle:
                fetch_cycle = fetch_time
                fetched_in_cycle = 0
            fetched_in_cycle += 1

            # ---- issue / execute ---------------------------------------------
            ready = fetch_time + FRONTEND_DEPTH
            if instruction.dep1 and index - instruction.dep1 >= 0:
                ready = max(ready, complete[index - instruction.dep1])
            if instruction.dep2 and index - instruction.dep2 >= 0:
                ready = max(ready, complete[index - instruction.dep2])

            if instruction.kind == "load":
                data_ready, check_done = hierarchy.load(instruction.address,
                                                        ready)
                done = max(data_ready, ready + 1)
                latest_check = max(latest_check, check_done)
                self.stats.add("loads")
            elif instruction.kind == "store":
                store_done, check_done = hierarchy.store(
                    instruction.address, ready,
                    full_block=instruction.full_block,
                )
                # stores complete quickly; the LSQ entry is held until the
                # write has actually landed (store_done)
                done = ready + 1
                latest_check = max(latest_check, check_done)
                self.stats.add("stores")
                ready_for_lsq = max(store_done, done)
            elif instruction.kind == "crypto":
                # verification barrier: every outstanding check must finish
                done = max(ready, latest_check) + instruction.latency
                self.stats.add("crypto_barriers")
            else:
                done = ready + instruction.latency

            complete.append(done)

            # ---- commit --------------------------------------------------------
            commit_time = done
            if index > 0:
                commit_time = max(commit_time, commit[index - 1])
            if index >= commit_width:
                commit_time = max(commit_time, commit[index - commit_width] + 1)
            commit.append(commit_time)
            if instruction.is_memory:
                if instruction.kind == "store":
                    mem_commit.append(max(commit_time, ready_for_lsq))
                else:
                    mem_commit.append(commit_time)

            # ---- branch misprediction -------------------------------------------
            if instruction.kind == "branch" and instruction.mispredicted:
                fetch_blocked_until = max(fetch_blocked_until,
                                          done + MISPREDICT_PENALTY)
                self.stats.add("mispredictions")

        end_cycle = commit[-1] + 1 if commit else start_cycle
        cycles = end_cycle - start_cycle
        self.stats.set("cycles", cycles)
        self.stats.set("instructions", count)
        return CoreResult(instructions=count, cycles=cycles,
                          last_check_done=latest_check, end_cycle=end_cycle)
