"""Processor core models: the analytic out-of-order core and an in-order baseline."""

from .inorder import InOrderCore
from .isa import OP_LATENCY, Instruction
from .ooo import CoreResult, OutOfOrderCore

__all__ = [
    "InOrderCore",
    "OP_LATENCY",
    "Instruction",
    "CoreResult",
    "OutOfOrderCore",
]
