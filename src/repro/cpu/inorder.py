"""A single-issue in-order blocking core.

Kept as a second, much simpler core model: useful as a sanity baseline in
tests (the OoO model must never be slower than it) and for quick
experiments where overlap effects do not matter.
"""

from __future__ import annotations

from typing import Iterable

from ..cache.hierarchy import MemoryHierarchy
from ..common.stats import StatGroup
from .isa import Instruction
from .ooo import MISPREDICT_PENALTY, CoreResult


class InOrderCore:
    """One instruction at a time; loads block until data arrives."""

    def __init__(self, hierarchy: MemoryHierarchy):
        self.hierarchy = hierarchy
        self.stats = StatGroup("inorder_core")

    def run(self, instructions: Iterable[Instruction]) -> CoreResult:
        now = 0
        count = 0
        latest_check = 0
        for instruction in instructions:
            count += 1
            if instruction.kind == "load":
                ready, check = self.hierarchy.load(instruction.address, now)
                now = max(ready, now + 1)
                latest_check = max(latest_check, check)
            elif instruction.kind == "store":
                done, check = self.hierarchy.store(
                    instruction.address, now, full_block=instruction.full_block
                )
                now = max(done, now + 1)
                latest_check = max(latest_check, check)
            elif instruction.kind == "crypto":
                now = max(now, latest_check) + instruction.latency
            else:
                now += instruction.latency
            if instruction.kind == "branch" and instruction.mispredicted:
                now += MISPREDICT_PENALTY
        self.stats.set("cycles", now)
        self.stats.set("instructions", count)
        return CoreResult(instructions=count, cycles=max(now, 1),
                          last_check_done=latest_check)
