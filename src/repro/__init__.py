"""repro — caches and hash trees for efficient memory integrity verification.

A full reproduction of Gassend, Suh, Clarke, van Dijk and Devadas,
"Caches and Hash Trees for Efficient Memory Integrity Verification"
(HPCA 2003): the functional Merkle-tree verification schemes (naive,
chash, mhash, ihash), the adversary models they defeat, the certified-
execution application, and a full-system performance model (out-of-order
core, cache hierarchy, memory bus, hash engine) that regenerates every
figure of the paper's evaluation.

Quick start::

    from repro import MemoryVerifier, UntrustedMemory

    memory = UntrustedMemory(1 << 20)
    verifier = MemoryVerifier(memory, data_bytes=64 * 1024, scheme="chash")
    verifier.initialize()
    verifier.write(0, b"tamper-evident")
    assert verifier.read(0, 14) == b"tamper-evident"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .common import (
    IntegrityError,
    SchemeKind,
    SecureModeError,
    SystemConfig,
    table1_config,
)
from .crypto import HashFunction, Manufacturer, ProcessorSecret, XorMac
from .hashtree import (
    CachedHashTree,
    HashTree,
    IncrementalMacTree,
    MemoryVerifier,
    MultiBlockHashTree,
    TreeLayout,
)
from .memory import (
    DMAController,
    DMADevice,
    ReplayAdversary,
    SpliceAdversary,
    TamperAdversary,
    UntrustedMemory,
)
from .sim import SimResult, SimulatedSystem, run_benchmark

__version__ = "1.0.0"

__all__ = [
    "IntegrityError",
    "SchemeKind",
    "SecureModeError",
    "SystemConfig",
    "table1_config",
    "HashFunction",
    "Manufacturer",
    "ProcessorSecret",
    "XorMac",
    "CachedHashTree",
    "HashTree",
    "IncrementalMacTree",
    "MemoryVerifier",
    "MultiBlockHashTree",
    "TreeLayout",
    "DMAController",
    "DMADevice",
    "ReplayAdversary",
    "SpliceAdversary",
    "TamperAdversary",
    "UntrustedMemory",
    "SimResult",
    "SimulatedSystem",
    "run_benchmark",
    "__version__",
]
