"""Pure-Python column primitives for the vectorized kernels.

The batched fallback when numpy is absent: columns are plain lists,
masks are lists of bools, and each primitive is one comprehension over
the column — C-speed iteration without per-row simulator dispatch.  The
kernel algorithms in :mod:`repro.kernels.warm` and
:mod:`repro.kernels.measure` are shared verbatim with the numpy backend,
so the two are bit-identical by construction.
"""

from __future__ import annotations

NAME = "fallback"


def col_u8(seq):
    return list(seq)


def col_u64(seq):
    return list(seq)


def tolist(col):
    return col if type(col) is list else list(col)


def add(col, k):
    if not k:
        return col
    return [x + k for x in col]


def rshift(col, bits):
    return [x >> bits for x in col]


def block(col, offset_bits):
    mask = ~((1 << offset_bits) - 1)
    return [x & mask for x in col]


def eq(col, k):
    return [x == k for x in col]


def ge(col, k):
    return [x >= k for x in col]


def between(col, lo, hi):
    return [lo <= x <= hi for x in col]


def invert(mask):
    return [not m for m in mask]


def and_(a, b):
    return [x and y for x, y in zip(a, b)]


def or_(a, b):
    return [x or y for x, y in zip(a, b)]


def where(cond, a, b):
    return [x if c else y for c, x, y in zip(cond, a, b)]


def ne_prev(col, carry):
    """``out[i] = col[i] != col[i-1]``, with ``col[-1]`` taken as ``carry``."""
    out = [carry != col[0]] if col else []
    out.extend(x != y for x, y in zip(col[1:], col))
    return out


def last(col):
    return col[-1]


def isin(col, values):
    """Membership mask of ``col`` against a Python set of ints."""
    if not values:
        return [False] * len(col)
    return [x in values for x in col]


def count_true(mask, start=0, end=None):
    """Number of True rows in ``mask[start:end]``."""
    if start or end is not None:
        return sum(mask[start:end])
    return sum(mask)


def false_indices(mask):
    """Ascending indices where ``mask`` is False."""
    return [i for i, m in enumerate(mask) if not m]


def true_indices(mask):
    """Ascending indices where ``mask`` is True."""
    return [i for i, m in enumerate(mask) if m]


def take_where(col, mask, i, j):
    """``col[i:j]`` rows where ``mask`` holds, in order, as a Python list."""
    return [x for x, m in zip(col[i:j], mask[i:j]) if m]


def unique_recent(col, mask, i, j):
    """Unique ``col[i:j]`` values where ``mask`` holds, most recently
    seen first — the promotion order batched LRU application needs."""
    order: dict = {}
    pop = order.pop
    for x, m in zip(col[i:j], mask[i:j]):
        if m:
            pop(x, None)
            order[x] = None
    return list(reversed(order))


def unique_vals(col, mask, i, j):
    """Unique ``col[i:j]`` values where ``mask`` holds (order-free)."""
    return {x for x, m in zip(col[i:j], mask[i:j]) if m}
