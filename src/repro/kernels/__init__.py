"""Vectorized kernel backends for the packed hot loops.

The packed paths (PRs 2 and 5) turned warm-up and measurement into
column chunks, but still consume them row by row in interpreted Python.
This package batches the per-chunk work — classifying rows into
hit/miss columns, probing TLBs over whole address columns, and
precomputing the measured path's per-row latencies — behind one of two
interchangeable primitive sets:

* ``numpy``    — ndarray columns (optional ``[perf]`` extra);
* ``fallback`` — pure-Python ``array``/list batching, always available.

Both run the *same* kernel algorithm (:mod:`repro.kernels.warm` and
:mod:`repro.kernels.measure`); only the column primitives differ, and
every primitive is exact integer/boolean arithmetic, so the backends are
bit-identical to each other and to the packed oracle by construction.
``REPRO_KERNELS=packed`` keeps the PR-5 interpreted packed path as the
oracle — the same escape hatch ``REPRO_MEASURE=object`` provides one
level further down.  The oracle chain is therefore::

    object  --REPRO_MEASURE=object-->  packed  --REPRO_KERNELS=packed-->  vectorized

Backend choice deliberately never enters cell or warm fingerprints:
results are identical by construction, and the equivalence is enforced
by ``tests/test_kernels.py`` and the twin-symmetry pass of
``python -m repro check``.
"""

from __future__ import annotations

import os
from typing import Optional

#: environment override for the kernel backend used by warm + measured runs.
KERNELS_ENV = "REPRO_KERNELS"

#: accepted spellings, in documentation order.
KERNEL_BACKENDS = ("auto", "numpy", "fallback", "packed")


def numpy_available() -> bool:
    """Whether the numpy backend can be imported (no hard dependency)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_kernels(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``None`` defers to the ``REPRO_KERNELS`` environment variable, then
    to ``auto``; ``auto`` picks ``numpy`` when importable, else
    ``fallback``.  Unknown values raise — a silently ignored typo (the
    old ``REPRO_MEASURE=obj`` failure mode) must not send a sweep down
    an unintended path.
    """
    if name is None:
        name = os.environ.get(KERNELS_ENV, "auto")
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernels backend {name!r} (from the 'kernels' "
            f"parameter or ${KERNELS_ENV}); valid values: "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "fallback"
    return name


def load_ops(backend: str):
    """The primitive-ops module for a concrete (non-``auto``) backend."""
    if backend == "numpy":
        from . import ops_numpy
        return ops_numpy
    if backend == "fallback":
        from . import ops_fallback
        return ops_fallback
    raise ValueError(f"no ops module for backend {backend!r}")
