"""numpy column primitives for the vectorized kernels.

Every primitive is exact unsigned-integer or boolean arithmetic on
``uint64``/``bool_`` arrays — no floating point anywhere — so results
are bit-identical to :mod:`repro.kernels.ops_fallback` on any platform.
"""

from __future__ import annotations

import numpy as np

NAME = "numpy"

_U64 = np.uint64
_EMPTY_U64 = np.empty(0, dtype=_U64)


def col_u8(seq):
    return np.asarray(seq, dtype=np.uint8)


def col_u64(seq):
    return np.asarray(seq, dtype=_U64)


def tolist(col):
    return col.tolist()


def add(col, k):
    if not k:
        return col
    return col + _U64(k)


def rshift(col, bits):
    return col >> _U64(bits)


def block(col, offset_bits):
    shift = _U64(offset_bits)
    return (col >> shift) << shift


def eq(col, k):
    return col == _U64(k)


def ge(col, k):
    return col >= _U64(k)


def between(col, lo, hi):
    return (col >= _U64(lo)) & (col <= _U64(hi))


def invert(mask):
    return ~mask


def and_(a, b):
    return a & b


def or_(a, b):
    return a | b


def where(cond, a, b):
    return np.where(cond, a, b)


def ne_prev(col, carry):
    """``out[i] = col[i] != col[i-1]``, with ``col[-1]`` taken as ``carry``."""
    out = np.empty(len(col), dtype=bool)
    out[0] = int(col[0]) != carry
    np.not_equal(col[1:], col[:-1], out=out[1:])
    return out


def last(col):
    return int(col[-1])


def isin(col, values):
    """Membership mask of ``col`` against a Python set/iterable of ints."""
    if not values:
        return np.zeros(len(col), dtype=bool)
    table = np.fromiter(values, dtype=_U64, count=len(values))
    return np.isin(col, table)


def count_true(mask, start=0, end=None):
    """Number of True rows in ``mask[start:end]``."""
    return int(np.count_nonzero(mask[start:end]))


def false_indices(mask):
    """Ascending indices where ``mask`` is False."""
    return np.flatnonzero(~mask).tolist()


def true_indices(mask):
    """Ascending indices where ``mask`` is True."""
    return np.flatnonzero(mask).tolist()


def take_where(col, mask, i, j):
    """``col[i:j]`` rows where ``mask`` holds, in order, as a Python list."""
    return col[i:j][mask[i:j]].tolist()


def unique_recent(col, mask, i, j):
    """Unique ``col[i:j]`` values where ``mask`` holds, most recently
    seen first — the promotion order batched LRU application needs."""
    vals = col[i:j][mask[i:j]]
    if not len(vals):
        return []
    uniq, index = np.unique(vals[::-1], return_index=True)
    return uniq[np.argsort(index)].tolist()


def unique_vals(col, mask, i, j):
    """Unique ``col[i:j]`` values where ``mask`` holds (order-free)."""
    vals = col[i:j][mask[i:j]]
    return np.unique(vals).tolist() if len(vals) else []
