"""Column prepass for the vectorized measured path.

:class:`MeasurePrepass` turns one packed measured chunk into per-row
completion info the analytic schedule consumes as precomputed scalars.
The boundary it enforces is exact:

* A row is **timing-free** when it never reaches
  ``scheme.handle_data_miss``/``scheme.fill_l2`` — i.e. every structure
  it touches resolves at a constant latency (TLB walks included: their
  penalty is fixed).  For such a row the completion *delta* relative to
  the schedule's issue cycle is a constant, valid at whatever cycle the
  schedule later assigns the row.
* A row that can reach the scheme — an L1 miss whose block is absent
  from the L2, or whose L1 victim is dirty and absent from the L2 — is
  marked with the :data:`TIMING` sentinel.  The prepass *stops* in front
  of it; the schedule makes the real hierarchy call with the real cycle,
  then calls :meth:`MeasurePrepass.run` to resume.  State therefore
  evolves in exact row order, and every live call happens with the
  hierarchy in exactly the state the packed path would have.

The interpreter is a single forward walk over the chunk's *active* rows
(fetch-line changes and loads/stores; other rows never touch the
hierarchy).  Each active row is classified by membership in a live
residency set — seeded from ``resident_blocks()`` and updated on every
fill, so it always equals what ``probe()`` would answer.  Resident rows
run an inline twin of the cache/TLB hit paths: same set indexing, same
LRU promotion (skipped when the row repeats the previous row's block or
page — a just-accessed entry is already most recent), same dirty
marking, with the per-kind counters accumulated locally and flushed in
bulk at the end of the chunk (counter updates are additive, so deferring
them commutes with the live calls in between).  Non-resident rows fall
back to the real per-row hierarchy call — exact by construction — and
update the live set from the fill's peeked victim.  The walk mirrors
:meth:`CacheSim.access <repro.cache.cache.CacheSim.access>` and
:meth:`TLBSim.access <repro.cache.tlb.TLBSim.access>` including the
instruction side's default ``data`` counter kind, which is also what
:meth:`MemoryHierarchy.ifetch <repro.cache.hierarchy.MemoryHierarchy.ifetch>`
uses when probing the L1-I.
"""

from __future__ import annotations

from ..common.packed import MEAS_LOAD, MEAS_STORE, MEAS_STORE_FULL

#: marks a row whose hierarchy call must happen live, at schedule time.
TIMING = object()

#: below this timing-free fraction the *next* chunk runs through the
#: packed row loop — a miss row costs more through the walk (victim
#: peek, L2 probes, residency bookkeeping on top of the hierarchy call)
#: than through the packed body, so the prepass only pays for itself
#: when resident rows dominate the chunk.
MIN_FAST_FRACTION = 0.90

#: sub-row cursor sides: the fetch probe precedes the data access.
_IF = 0
_MEM = 1


class MeasurePrepass:
    """One chunk's columns and its resumable active-row interpreter."""

    __slots__ = (
        "hierarchy", "l1i", "l1d", "l2", "itlb", "dtlb",
        "n", "kinds", "pcs", "addresses", "carry",
        "i_blk_l", "i_page_l", "d_blk_l", "d_page_l",
        "if_rows", "mem_rows", "if_info", "mem_info", "fast_fraction",
        "live_l1i", "live_l1d",
        "_l1_latency", "_l1i_latency", "_miss_if", "_miss_delta",
        "_last_i_blk", "_last_i_page", "_last_d_blk", "_last_d_page",
        "_count_i", "_miss_i", "_count_d", "_miss_d", "_writes_d",
        "_slow_events", "_ifp", "_memp", "_pending",
    )

    def __init__(self, ops, hierarchy, kinds, pcs, addresses, carry):
        self.hierarchy = hierarchy
        self.l1i = l1i = hierarchy.l1i
        self.l1d = l1d = hierarchy.l1d
        self.l2 = hierarchy.l2
        self.itlb = itlb = hierarchy.itlb
        self.dtlb = dtlb = hierarchy.dtlb
        self.kinds = kinds
        self.pcs = pcs
        self.addresses = addresses
        n = len(kinds)
        self.n = n
        data_offset = hierarchy.scheme.data_address(0)
        kind_col = ops.col_u8(kinds)
        pc_col = ops.col_u64(pcs)
        addr_col = ops.col_u64(addresses)
        iline = ops.rshift(pc_col, hierarchy._iline_shift)
        new_line = ops.ne_prev(iline, carry)
        self.carry = ops.last(iline)
        is_mem = ops.between(kind_col, MEAS_LOAD, MEAS_STORE_FULL)
        i_blk = ops.block(ops.add(pc_col, data_offset), l1i._offset_bits)
        d_blk = ops.block(ops.add(addr_col, data_offset), l1d._offset_bits)
        self.i_blk_l = ops.tolist(i_blk)
        self.i_page_l = ops.tolist(ops.rshift(pc_col, itlb._page_bits))
        self.d_blk_l = ops.tolist(d_blk)
        self.d_page_l = ops.tolist(ops.rshift(addr_col, dtlb._page_bits))
        new_line_l = ops.tolist(new_line)
        is_mem_l = ops.tolist(is_mem)
        # the walk consumes the two event streams through monotone
        # cursors; the sentinel keeps the merge loop branch-free at EOF
        self.if_rows = ops.true_indices(new_line)
        self.mem_rows = ops.true_indices(is_mem)
        self.if_rows.append(n)
        self.mem_rows.append(n)
        self.live_l1i = l1i.resident_blocks()
        self.live_l1d = l1d.resident_blocks()
        # per-row completion info, ``None``-folded so the schedule loop
        # reads activity and latency from one slot: ``None`` = structure
        # not consulted, otherwise the constant delta the row resolves
        # to; rows that miss something overwrite their slot.
        l1i_latency = hierarchy.config.l1i.latency_cycles
        l1_latency = hierarchy._l1_latency
        self._l1i_latency = l1i_latency
        self._l1_latency = l1_latency
        fast_if = (l1i_latency, 0)
        self.if_info = [fast_if if nl else None for nl in new_line_l]
        self.mem_info = [l1_latency if m else None for m in is_mem_l]
        self._miss_if = (l1i_latency + itlb._miss_penalty,
                         itlb._miss_penalty)
        self._miss_delta = l1_latency + dtlb._miss_penalty
        self._last_i_blk = -1
        self._last_i_page = -1
        self._last_d_blk = -1
        self._last_d_page = -1
        self._count_i = 0
        self._miss_i = 0
        self._count_d = 0
        self._miss_d = 0
        self._writes_d = 0
        self._slow_events = 0
        self.fast_fraction = 1.0
        self._ifp = 0
        self._memp = 0
        self._pending = None

    # -- resumable interpretation ---------------------------------------------------

    def run(self) -> None:
        """Advance until a row needs a live call or the chunk ends.

        After a stop, the schedule performs the live hierarchy call the
        :data:`TIMING` slot demands, then calls :meth:`run` again; the
        deferred residency bookkeeping for that call is applied first.
        """
        if self._pending is not None:
            self._apply_pending()
        n = self.n
        if_rows = self.if_rows
        mem_rows = self.mem_rows
        ifp = self._ifp
        memp = self._memp
        next_if = if_rows[ifp]
        next_mem = mem_rows[memp]
        i_blk_l, i_page_l = self.i_blk_l, self.i_page_l
        d_blk_l, d_page_l = self.d_blk_l, self.d_page_l
        kinds = self.kinds
        if_info = self.if_info
        mem_info = self.mem_info
        live_l1i = self.live_l1i
        live_l1d = self.live_l1d
        l1i, l1d = self.l1i, self.l1d
        i_sets, d_sets = l1i._sets, l1d._sets
        i_shift, d_shift = l1i._offset_bits, l1d._offset_bits
        i_nsets, d_nsets = l1i._n_sets, l1d._n_sets
        i_lru, d_lru = l1i._lru, l1d._lru
        dirty_add = l1d._dirty.add
        itlb, dtlb = self.itlb, self.dtlb
        it_sets, dt_sets = itlb._sets, dtlb._sets
        it_nsets, dt_nsets = itlb._n_sets, dtlb._n_sets
        it_assoc, dt_assoc = itlb._associativity, dtlb._associativity
        miss_if = self._miss_if
        miss_delta = self._miss_delta
        store_kind = MEAS_STORE
        last_i_blk = self._last_i_blk
        last_i_page = self._last_i_page
        last_d_blk = self._last_d_blk
        last_d_page = self._last_d_page
        count_i = self._count_i
        miss_i = self._miss_i
        count_d = self._count_d
        miss_d = self._miss_d
        writes_d = self._writes_d
        try:
            while True:
                if next_if <= next_mem:
                    if next_if == n:
                        break
                    row = next_if
                    blk = i_blk_l[row]
                    if blk == last_i_blk:
                        # repeat of the previous fetch block: hit, already
                        # most recent in both L1-I and I-TLB
                        count_i += 1
                        ifp += 1
                        next_if = if_rows[ifp]
                        continue
                    if blk in live_l1i:
                        count_i += 1
                        last_i_blk = blk
                        if i_lru:
                            ways = i_sets[(blk >> i_shift) % i_nsets]
                            if ways[0] != blk:
                                ways.remove(blk)
                                ways.insert(0, blk)
                        page = i_page_l[row]
                        if page != last_i_page:
                            last_i_page = page
                            ways = it_sets[page % it_nsets]
                            if page in ways:
                                if ways[0] != page:
                                    ways.remove(page)
                                    ways.insert(0, page)
                            else:
                                miss_i += 1
                                if len(ways) >= it_assoc:
                                    ways.pop()
                                ways.insert(0, page)
                                if_info[row] = miss_if
                        ifp += 1
                        next_if = if_rows[ifp]
                        continue
                    # L1-I miss: fall back to the real per-row call
                    if not self._interp_if(row, blk):
                        ifp += 1  # the live call resolves this event
                        return
                    last_i_blk = blk
                    last_i_page = i_page_l[row]
                    ifp += 1
                    next_if = if_rows[ifp]
                    continue
                row = next_mem
                blk = d_blk_l[row]
                if blk == last_d_blk:
                    # repeat of the previous data block: hit, already
                    # most recent in both L1-D and D-TLB
                    count_d += 1
                    if kinds[row] >= store_kind:
                        writes_d += 1
                        dirty_add(blk)
                    memp += 1
                    next_mem = mem_rows[memp]
                    continue
                if blk in live_l1d:
                    count_d += 1
                    last_d_blk = blk
                    if d_lru:
                        ways = d_sets[(blk >> d_shift) % d_nsets]
                        if ways[0] != blk:
                            ways.remove(blk)
                            ways.insert(0, blk)
                    if kinds[row] >= store_kind:
                        writes_d += 1
                        dirty_add(blk)
                    page = d_page_l[row]
                    if page != last_d_page:
                        last_d_page = page
                        ways = dt_sets[page % dt_nsets]
                        if page in ways:
                            if ways[0] != page:
                                ways.remove(page)
                                ways.insert(0, page)
                        else:
                            miss_d += 1
                            if len(ways) >= dt_assoc:
                                ways.pop()
                            ways.insert(0, page)
                            mem_info[row] = miss_delta
                    memp += 1
                    next_mem = mem_rows[memp]
                    continue
                # L1-D miss: fall back to the real per-row call
                if not self._interp_mem(row, blk):
                    memp += 1  # the live call resolves this event
                    return
                last_d_blk = blk
                last_d_page = d_page_l[row]
                memp += 1
                next_mem = mem_rows[memp]
        finally:
            self._ifp = ifp
            self._memp = memp
            self._last_i_blk = last_i_blk
            self._last_i_page = last_i_page
            self._last_d_blk = last_d_blk
            self._last_d_page = last_d_page
            self._count_i = count_i
            self._miss_i = miss_i
            self._count_d = count_d
            self._miss_d = miss_d
            self._writes_d = writes_d
        self._flush()

    def _apply_pending(self) -> None:
        """Residency bookkeeping for the live call the schedule just
        made, stashed when the prepass stopped (the victim was peeked
        then; no state changed in between, so it is still exact)."""
        side, row, blk, victim = self._pending
        self._pending = None
        if side == _IF:
            live = self.live_l1i
            self._last_i_blk = blk
            self._last_i_page = self.i_page_l[row]
        else:
            live = self.live_l1d
            self._last_d_blk = blk
            self._last_d_page = self.d_page_l[row]
        if victim is not None:
            live.discard(victim)
        live.add(blk)

    def _interp_if(self, row: int, blk: int) -> bool:
        """Guaranteed-L1-I-miss fetch of ``row`` at ``now=0``; ``False``
        means the row needs a live call and the walk must stop."""
        self._slow_events += 1
        victim = self.l1i.victim_block(blk)
        if not self.l2.probe(blk):
            # the scheme will be consulted: stop in front of the row
            # (L1-I victims are never dirty — I-fills never write — so an
            # absent block in the L2 is the only instruction-side hazard)
            self.if_info[row] = TIMING
            self._pending = (_IF, row, blk, victim)
            return False
        ready, _, itlb_cycles = self.hierarchy.ifetch(self.pcs[row], 0)
        self.if_info[row] = (ready, itlb_cycles)
        live = self.live_l1i
        if victim is not None:
            live.discard(victim)
        live.add(blk)
        return True

    def _interp_mem(self, row: int, blk: int) -> bool:
        """Guaranteed-L1-D-miss access of ``row`` at ``now=0``; ``False``
        means the row needs a live call and the walk must stop."""
        self._slow_events += 1
        l1d = self.l1d
        l2 = self.l2
        victim = l1d.victim_block(blk)
        if not l2.probe(blk) or (victim is not None
                                 and victim in l1d._dirty
                                 and not l2.probe(victim)):
            # block fetch or dirty-victim writeback reaches the scheme
            self.mem_info[row] = TIMING
            self._pending = (_MEM, row, blk, victim)
            return False
        kind = self.kinds[row]
        if kind == MEAS_LOAD:
            delta, _ = self.hierarchy.load(self.addresses[row], 0)
        else:
            delta, _ = self.hierarchy.store(
                self.addresses[row], 0, full_block=kind == MEAS_STORE_FULL)
        self.mem_info[row] = delta
        live = self.live_l1d
        if victim is not None:
            live.discard(victim)
        live.add(blk)
        return True

    def _flush(self) -> None:
        """Bulk-apply the walk's accumulated hit counters; counter
        updates are additive, so deferring them to the end of the chunk
        commutes with the live calls made in between."""
        count_i = self._count_i
        if count_i:
            cache = self.l1i
            keys = cache.kind_keys("data")
            counters = cache._counters
            get = counters.get
            counters[keys[0]] = get(keys[0], 0) + count_i
            counters[keys[2]] = get(keys[2], 0) + count_i
            counters = self.itlb._counters
            get = counters.get
            counters["accesses"] = get("accesses", 0) + count_i
            miss_i = self._miss_i
            hits = count_i - miss_i
            if hits:
                counters["hits"] = get("hits", 0) + hits
            if miss_i:
                counters["misses"] = get("misses", 0) + miss_i
            self._count_i = 0
            self._miss_i = 0
        count_d = self._count_d
        if count_d:
            cache = self.l1d
            keys = cache.kind_keys("data")
            counters = cache._counters
            get = counters.get
            counters[keys[0]] = get(keys[0], 0) + count_d
            writes_d = self._writes_d
            if writes_d:
                counters[keys[1]] = get(keys[1], 0) + writes_d
            counters[keys[2]] = get(keys[2], 0) + count_d
            counters = self.dtlb._counters
            get = counters.get
            counters["accesses"] = get("accesses", 0) + count_d
            miss_d = self._miss_d
            hits = count_d - miss_d
            if hits:
                counters["hits"] = get("hits", 0) + hits
            if miss_d:
                counters["misses"] = get("misses", 0) + miss_d
            self._count_d = 0
            self._writes_d = 0
            self._miss_d = 0
        n = self.n
        if n:
            self.fast_fraction = 1.0 - self._slow_events / n
