"""Column planning for the vectorized warm-path kernel.

Everything here is *pure column math* over one packed warm chunk —
classification of rows into per-cache block/page columns and
hit-candidate masks.  The state-mutating half of the kernel (batched LRU
application, the slow-row interpreter) lives on
:meth:`repro.cache.hierarchy.MemoryHierarchy.warm_vec`, where the
twin-symmetry checker can pair its mutations against ``warm_packed``.

Correctness model (the sequential-dependence boundary):

* A row whose block and page are resident *at mask-build time* is a
  guaranteed hit as long as nothing was evicted since — hits only
  promote LRU entries, never change membership, so a run of
  mask-``True`` rows can be applied as one batch.
* Misses (mask ``False``) are interpreted row by row through the exact
  ``warm_packed`` code paths; each may fill (stale-``False`` rows are
  re-checked by the interpreter, so conservatism is safe) and may
  *evict*.  Evicted blocks/pages are the only stale-``True`` hazard;
  they go into a :class:`Poison` set consulted before batching, and the
  masks are rebuilt outright once enough slow rows accumulate.
"""

from __future__ import annotations

from ..common.packed import WARM_IFETCH, WARM_STORE

#: below this hit-candidate fraction a chunk is interpreted row by row —
#: the packed row body is only ~3 bound-method calls, so the batching
#: machinery pays for itself only when long hit runs dominate outright.
MIN_FAST_FRACTION = 0.995
#: hit runs shorter than this are applied row by row; per-span batching
#: overhead only amortizes over longer runs.
MIN_BATCH_ROWS = 32


class WarmPlan:
    """Per-chunk columns shared by mask builds and batch application."""

    __slots__ = ("n", "data_offset", "blk", "page", "is_if", "not_if",
                 "is_wr", "blk_l", "page_l", "is_if_l",
                 "codes_l", "values_l")


def build_plan(ops, codes, values, data_offset, page_bits,
               i_offset_bits, d_offset_bits) -> WarmPlan:
    """Classify one ``(codes, values)`` chunk into per-cache columns."""
    plan = WarmPlan()
    code_col = ops.col_u8(codes)
    value_col = ops.col_u64(values)
    phys = ops.add(value_col, data_offset)
    is_if = ops.eq(code_col, WARM_IFETCH)
    plan.is_if = is_if
    plan.not_if = ops.invert(is_if)
    plan.is_wr = ops.ge(code_col, WARM_STORE)
    if i_offset_bits == d_offset_bits:
        plan.blk = ops.block(phys, d_offset_bits)
    else:
        plan.blk = ops.where(is_if, ops.block(phys, i_offset_bits),
                             ops.block(phys, d_offset_bits))
    plan.page = ops.rshift(value_col, page_bits)
    plan.blk_l = ops.tolist(plan.blk)
    plan.page_l = ops.tolist(plan.page)
    plan.is_if_l = ops.tolist(is_if)
    plan.codes_l = list(codes)
    plan.values_l = list(values)
    plan.n = len(plan.codes_l)
    plan.data_offset = data_offset
    return plan


def fast_mask(ops, plan, live):
    """Hit-candidate mask: row block *and* page resident right now."""
    hit_i = ops.and_(ops.isin(plan.blk, live.l1i),
                     ops.isin(plan.page, live.itlb))
    hit_d = ops.and_(ops.isin(plan.blk, live.l1d),
                     ops.isin(plan.page, live.dtlb))
    return ops.where(plan.is_if, hit_i, hit_d)


class Residency:
    """Exact current L1/TLB membership, maintained incrementally by the
    row interpreter (fills add, evictions discard) so rows filled *after*
    the chunk's mask was built stop fragmenting the batch spans."""

    __slots__ = ("l1i", "l1d", "itlb", "dtlb")

    def __init__(self, l1i, l1d, itlb, dtlb):
        self.l1i = l1i
        self.l1d = l1d
        self.itlb = itlb
        self.dtlb = dtlb


class Poison:
    """Blocks/pages evicted since the chunk's mask was built and not
    since refilled — the only stale-``True`` hazard a batched span must
    screen against."""

    __slots__ = ("l1i", "l1d", "itlb", "dtlb")

    def __init__(self):
        self.l1i: set = set()
        self.l1d: set = set()
        self.itlb: set = set()
        self.dtlb: set = set()

    def empty(self) -> bool:
        return not (self.l1i or self.l1d or self.itlb or self.dtlb)
