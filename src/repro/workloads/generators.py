"""Synthetic instruction-stream generation.

A :class:`WorkloadProfile` captures the statistics that matter to the
memory system: footprint, access pattern, operation mix, dependency
distances (ILP), branch behaviour and streaming-store share.  A profile
plus a seed deterministically yields an instruction stream for the core
models.

Patterns:

``stream``
    Unit-stride sweeps over large arrays (scientific loops: swim, applu).
    Loads and stores walk separate cursors; stores can be marked
    ``full_block`` to model streams that overwrite whole cache lines.
``random``
    Uniform references over the footprint (mcf's sparse network).
``wset``
    Hot/cold working set: most references hit a hot region, the rest fall
    anywhere in the footprint (integer codes: gcc, twolf, vortex, vpr).
``mixed``
    Half stream, half wset (art's neural-net scans with tables).
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from math import log
from typing import Iterator, List, Tuple

from ..cpu.isa import OP_LATENCY, Instruction

BLOCK = 64  # generation granularity: one L2 block

#: Packed-row kind codes emitted by :meth:`InstructionStream.packed`.
#: A row is one *memory event* of the warm-up replay, not one instruction:
#: instruction-fetch rows are emitted only when the stream crosses into a
#: new I-cache line (the same dedup :meth:`MemoryHierarchy.warm` applies),
#: and non-memory instructions that stay within a line emit nothing.
#: (Canonical definitions live in :mod:`repro.common.packed`, below both
#: the producer and the consumer of the format; re-exported here.)
from ..common.packed import (  # noqa: E402  (re-export)
    MEAS_ALU,
    MEAS_BRANCH,
    MEAS_BRANCH_MISPREDICT,
    MEAS_FP,
    MEAS_LOAD,
    MEAS_STORE,
    MEAS_STORE_FULL,
    PACKED_CHUNK_INSTRUCTIONS,
    WARM_IFETCH,
    WARM_LOAD,
    WARM_STORE,
    WARM_STORE_FULL,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one benchmark (see repro.workloads.spec)."""

    name: str
    footprint_bytes: int
    code_bytes: int = 64 * 1024
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    fp_fraction: float = 0.0
    mispredict_rate: float = 0.05
    #: mean register-dependency distance; small = serial, large = high ILP.
    mean_dep_distance: float = 4.0
    #: probability a load's address depends on the previous load (chasing).
    serial_load_chain: float = 0.0
    pattern: str = "wset"
    hot_fraction: float = 0.9
    hot_bytes: int = 64 * 1024
    #: fraction of stores that belong to whole-block streaming sweeps.
    stream_store_fraction: float = 0.0
    #: mean consecutive 8-byte references per spatial run (wset/random);
    #: 1 disables spatial locality (true pointer chasing).
    spatial_run: float = 4.0
    #: fraction of non-streaming references that hit the stack/locals
    #: region — a few KB that lives in the L1 (real codes spend most of
    #: their references there, which is what keeps L1 miss rates low).
    stack_fraction: float = 0.55
    stack_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.pattern not in ("stream", "random", "wset", "mixed"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        total = self.load_fraction + self.store_fraction + self.branch_fraction
        if total > 0.95:
            raise ValueError("operation mix leaves no room for ALU work")
        if self.footprint_bytes < 2 * BLOCK:
            raise ValueError("footprint too small")


class _AddressStream:
    """Stateful address source implementing the four patterns."""

    WORD = 8  # reference granularity

    def __init__(self, profile: WorkloadProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng
        self.base = profile.code_bytes  # data segment sits above the code
        self.read_cursor = 0
        self.write_cursor = profile.footprint_bytes // 2
        self.run_cursor = 0
        self.run_remaining = 0
        # loop-invariant profile state, bound once (this object is consulted
        # for every memory reference the generator emits)
        self._footprint = profile.footprint_bytes
        self._stack_words = min(profile.stack_bytes, self._footprint) // self.WORD
        self._hot_words = min(profile.hot_bytes, self._footprint) // self.WORD
        self._footprint_words = self._footprint // self.WORD
        self._is_random = profile.pattern == "random"
        self._is_mixed = profile.pattern == "mixed"
        self._is_stream = profile.pattern == "stream"
        self._has_runs = profile.spatial_run > 1
        self._run_high = max(2, int(2 * profile.spatial_run))

    def state(self) -> Tuple[int, int, int, int]:
        """The mutable cursor state (everything not derived from the profile)."""
        return (self.read_cursor, self.write_cursor,
                self.run_cursor, self.run_remaining)

    def set_state(self, state: Tuple[int, int, int, int]) -> None:
        (self.read_cursor, self.write_cursor,
         self.run_cursor, self.run_remaining) = state

    def _wrap(self, offset: int) -> int:
        return offset % self._footprint

    def _fresh_locality_run(self) -> int:
        """Pick a new spatial run start (stack, hot or cold region)."""
        profile, rng = self.profile, self.rng
        roll = rng.random()
        if roll < profile.stack_fraction:
            region_words = self._stack_words
        elif self._is_random or rng.random() >= profile.hot_fraction:
            region_words = self._footprint_words
        else:
            region_words = self._hot_words
        start = rng.randrange(region_words) * self.WORD
        if self._has_runs:
            run = rng.randrange(1, self._run_high)
            # runs model accesses within one record/structure: they do not
            # cross a 64-byte block boundary (integer-code records are
            # small; sequential sweeps use the stream pattern instead)
            words_left_in_block = (BLOCK - start % BLOCK) // self.WORD - 1
            self.run_remaining = min(run, max(0, words_left_in_block))
        else:
            self.run_remaining = 0
        self.run_cursor = start
        return start

    def _locality_address(self) -> int:
        """wset/random reference with spatial runs of consecutive words."""
        if self.run_remaining > 0:
            self.run_remaining -= 1
            self.run_cursor = self._wrap(self.run_cursor + self.WORD)
            return self.run_cursor
        return self._fresh_locality_run()

    def load_address(self) -> int:
        stream = self._is_stream
        if self._is_mixed:
            stream = self.rng.random() < 0.5
        if stream:
            self.read_cursor = self._wrap(self.read_cursor + self.WORD)
            return self.base + self.read_cursor
        return self.base + self._locality_address()

    def store_address(self) -> tuple[int, bool]:
        """Returns (address, full_block)."""
        profile, rng = self.profile, self.rng
        if rng.random() < profile.stream_store_fraction:
            # unit-stride write sweep: the store opening a new block carries
            # the full-block mark (the sweep will overwrite all of it)
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            address = self.base + self.write_cursor
            return address, address % BLOCK == 0
        stream = self._is_stream
        if self._is_mixed:
            stream = rng.random() < 0.5
        if stream:
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            return self.base + self.write_cursor, False
        return self.base + self._locality_address(), False


class InstructionStream:
    """Resumable, deterministic instruction source for one (profile, seed).

    One stream owns the RNG, the address cursors and the program counter,
    so a run can be emitted in *segments* that concatenate bit-identically
    to a single :func:`generate_instructions` call:

    * :meth:`take` materializes the next ``count`` instructions as
      :class:`Instruction` objects (the measured suffix of a run);
    * :meth:`packed` emits the next ``count`` instructions as packed
      *memory-event* chunks for :meth:`MemoryHierarchy.warm_packed
      <repro.cache.hierarchy.MemoryHierarchy.warm_packed>` — no
      ``Instruction`` is ever allocated, and the dependency-distance
      values (which functional warm-up ignores) are drawn from the RNG in
      the exact same order but never computed;
    * :meth:`state` / :meth:`from_state` snapshot and resume the stream,
      which is what lets a warmed-hierarchy snapshot be shared between
      sweep cells: restore the snapshot, resume the stream, generate only
      the measured suffix.

    Both emission modes draw from the RNG in the identical order, so
    ``packed(w)`` followed by ``take(n)`` equals the ``[w:w+n]`` slice of
    the plain object stream (``tests/test_warm_replay.py`` proves it).
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self.rng = random.Random((_stable_hash(profile.name) ^ seed) & 0xFFFFFFFF)
        self.addresses = _AddressStream(profile, self.rng)
        self.pc = 0
        self.index = 0
        self.loads_emitted = 0
        self.last_load_index = 0
        #: I-cache-line dedup cursor for :meth:`packed` (mirrors the
        #: ``last_line`` tracking of the object-stream warm-up loop).
        self._warm_line = -1

    # -- snapshot / resume -------------------------------------------------------

    def state(self) -> tuple:
        """Picklable snapshot of everything that evolves as the stream runs."""
        return (
            self.rng.getstate(),
            self.addresses.state(),
            self.pc,
            self.index,
            self.loads_emitted,
            self.last_load_index,
            self._warm_line,
        )

    def restore(self, state: tuple) -> None:
        (rng_state, address_state, self.pc, self.index,
         self.loads_emitted, self.last_load_index, self._warm_line) = state
        self.rng.setstate(rng_state)
        self.addresses.set_state(address_state)

    @classmethod
    def from_state(cls, profile: WorkloadProfile, state: tuple) -> "InstructionStream":
        """Resume a stream snapshotted by :meth:`state` (seed-independent)."""
        stream = cls(profile, seed=0)
        stream.restore(state)
        return stream

    # -- object emission -----------------------------------------------------------

    def take(self, count: int) -> List[Instruction]:
        """Materialize the next ``count`` instructions.

        This is the per-cell hot path of every sweep: all bounds, fractions
        and callables are bound to locals before the loop, and the
        geometric dependency-distance draw inlines
        :meth:`random.Random.expovariate` (``1 + int(-log(1 - u) / lambd)``)
        so the stream — including the exact RNG draw sequence — matches the
        historical generator while the loop runs ~2x faster.
        """
        profile = self.profile
        rng_random = self.rng.random
        addresses = self.addresses
        load_address = addresses.load_address
        store_address = addresses.store_address
        instruction = Instruction
        load_fraction = profile.load_fraction
        store_cut = load_fraction + profile.store_fraction
        branch_cut = store_cut + profile.branch_fraction
        fp_fraction = profile.fp_fraction
        mispredict_rate = profile.mispredict_rate
        serial_load_chain = profile.serial_load_chain
        code_bytes = profile.code_bytes
        # geometric distance with the profile's mean; at least 1
        lambd = 1.0 / profile.mean_dep_distance
        pc = self.pc
        loads_emitted = self.loads_emitted
        last_load_index = self.last_load_index
        start = self.index
        out: List[Instruction] = []
        append = out.append

        for index in range(start, start + count):
            pc = (pc + 4) % code_bytes
            roll = rng_random()
            if roll < load_fraction:
                if (serial_load_chain and loads_emitted
                        and rng_random() < serial_load_chain):
                    # pointer chase: the address register comes from the
                    # previous load in program order
                    distance = index - last_load_index
                    if distance < 1:
                        distance = 1
                else:
                    distance = 1 + int(-log(1.0 - rng_random()) / lambd)
                append(instruction(kind="load", dep1=distance,
                                   address=load_address(), pc=pc))
                last_load_index = index
                loads_emitted += 1
            elif roll < store_cut:
                address, full = store_address()
                append(instruction(kind="store",
                                   dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                                   dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                                   address=address, pc=pc, full_block=full))
            elif roll < branch_cut:
                mispredicted = rng_random() < mispredict_rate
                append(instruction(kind="branch",
                                   dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                                   pc=pc, mispredicted=mispredicted))
            elif rng_random() < fp_fraction:
                append(instruction(kind="fp",
                                   dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                                   dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                                   pc=pc))
            else:
                append(instruction(kind="alu",
                                   dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                                   dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                                   pc=pc))

        self.pc = pc
        self.index = start + count
        self.loads_emitted = loads_emitted
        self.last_load_index = last_load_index
        return out

    def take_packed(
        self,
        count: int,
        chunk_instructions: int = PACKED_CHUNK_INSTRUCTIONS,
    ) -> Iterator[Tuple[List[int], List[int], List[int],
                        List[int], List[int], List[int]]]:
        """The next ``count`` instructions as packed measured-mode chunks.

        Yields ``(kinds, pcs, addresses, dep1s, dep2s, latencies)`` column
        tuples — one row per *instruction* (see :mod:`repro.common.packed`
        for the canonical format) — for :meth:`OutOfOrderCore.run_packed
        <repro.cpu.ooo.OutOfOrderCore.run_packed>`.  Unlike warm-mode
        :meth:`packed`, nothing is deduplicated or dropped: the timed
        schedule consumes every row, including its dependency distances
        and execution latency, so the columns carry exactly the fields of
        the :class:`~repro.cpu.isa.Instruction` objects :meth:`take` would
        build.  The RNG draw order is shared with :meth:`take`, so the
        stream can switch between packed and object emission at any
        instruction boundary without diverging.
        """
        remaining = count
        while remaining > 0:
            n = min(remaining, chunk_instructions)
            yield self._take_packed_chunk(n)
            remaining -= n

    def _take_packed_chunk(
        self, count: int
    ) -> Tuple[List[int], List[int], List[int],
               List[int], List[int], List[int]]:
        """Generate one measured-mode chunk of ``count`` instructions."""
        profile = self.profile
        rng_random = self.rng.random
        addresses = self.addresses
        load_address = addresses.load_address
        store_address = addresses.store_address
        load_fraction = profile.load_fraction
        store_cut = load_fraction + profile.store_fraction
        branch_cut = store_cut + profile.branch_fraction
        fp_fraction = profile.fp_fraction
        mispredict_rate = profile.mispredict_rate
        serial_load_chain = profile.serial_load_chain
        code_bytes = profile.code_bytes
        lambd = 1.0 / profile.mean_dep_distance
        log_ = log
        int_ = int
        lat_alu, lat_fp = OP_LATENCY["alu"], OP_LATENCY["fp"]
        lat_load, lat_store = OP_LATENCY["load"], OP_LATENCY["store"]
        lat_branch = OP_LATENCY["branch"]
        pc = self.pc
        loads_emitted = self.loads_emitted
        last_load_index = self.last_load_index
        start = self.index
        # measured chunks are transient (never disk-cached), so plain
        # lists beat typed arrays: see repro.common.packed
        kinds: List[int] = []
        pcs: List[int] = []
        addrs: List[int] = []
        dep1s: List[int] = []
        dep2s: List[int] = []
        latencies: List[int] = []
        kind_append = kinds.append
        pc_append = pcs.append
        addr_append = addrs.append
        dep1_append = dep1s.append
        dep2_append = dep2s.append
        latency_append = latencies.append

        for index in range(start, start + count):
            pc = (pc + 4) % code_bytes
            roll = rng_random()
            if roll < load_fraction:
                if (serial_load_chain and loads_emitted
                        and rng_random() < serial_load_chain):
                    distance = index - last_load_index
                    if distance < 1:
                        distance = 1
                else:
                    distance = 1 + int_(-log_(1.0 - rng_random()) / lambd)
                kind_append(MEAS_LOAD)
                addr_append(load_address())
                dep1_append(distance)
                dep2_append(0)
                latency_append(lat_load)
                last_load_index = index
                loads_emitted += 1
            elif roll < store_cut:
                address, full = store_address()
                kind_append(MEAS_STORE_FULL if full else MEAS_STORE)
                addr_append(address)
                dep1_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                dep2_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                latency_append(lat_store)
            elif roll < branch_cut:
                mispredicted = rng_random() < mispredict_rate
                kind_append(MEAS_BRANCH_MISPREDICT if mispredicted
                            else MEAS_BRANCH)
                addr_append(0)
                dep1_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                dep2_append(0)
                latency_append(lat_branch)
            elif rng_random() < fp_fraction:
                kind_append(MEAS_FP)
                addr_append(0)
                dep1_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                dep2_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                latency_append(lat_fp)
            else:
                kind_append(MEAS_ALU)
                addr_append(0)
                dep1_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                dep2_append(1 + int_(-log_(1.0 - rng_random()) / lambd))
                latency_append(lat_alu)
            pc_append(pc)

        self.pc = pc
        self.index = start + count
        self.loads_emitted = loads_emitted
        self.last_load_index = last_load_index
        return kinds, pcs, addrs, dep1s, dep2s, latencies

    # -- packed emission ------------------------------------------------------------

    def packed(
        self,
        count: int,
        line_bytes: int = 32,
        chunk_instructions: int = PACKED_CHUNK_INSTRUCTIONS,
    ) -> Iterator[Tuple[array, array]]:
        """The next ``count`` instructions as packed warm-up chunks.

        Yields ``(codes, values)`` pairs of parallel ``array`` columns: one
        row per *memory event*, with ``codes`` holding a ``WARM_*`` kind
        code and ``values`` the event's address (the instruction's ``pc``
        for :data:`WARM_IFETCH` rows, the data address otherwise; the §5.3
        full-block store mark is folded into :data:`WARM_STORE_FULL`).
        ``line_bytes`` is the L1-I block size the instruction-fetch dedup
        is keyed on — rows appear only when the pc crosses into a new line,
        exactly like the object-stream warm-up loop, so consuming the rows
        in order reproduces its cache/TLB state bit for bit.
        """
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        line_shift = line_bytes.bit_length() - 1
        remaining = count
        while remaining > 0:
            n = min(remaining, chunk_instructions)
            yield self._packed_chunk(n, line_shift)
            remaining -= n

    def _packed_chunk(self, count: int, line_shift: int) -> Tuple[array, array]:
        """Generate one packed chunk of ``count`` instructions.

        Draws from the RNG in the exact order of :meth:`take` — including
        the dependency-distance and mispredict draws whose values the
        warm-up never uses — so the stream can switch between packed and
        object emission at any instruction boundary without diverging.
        """
        profile = self.profile
        rng_random = self.rng.random
        addresses = self.addresses
        load_address = addresses.load_address
        store_address = addresses.store_address
        load_fraction = profile.load_fraction
        store_cut = load_fraction + profile.store_fraction
        branch_cut = store_cut + profile.branch_fraction
        serial_load_chain = profile.serial_load_chain
        code_bytes = profile.code_bytes
        pc = self.pc
        loads_emitted = self.loads_emitted
        last_load_index = self.last_load_index
        last_line = self._warm_line
        codes = array("B")
        values = array("Q")
        code_append = codes.append
        value_append = values.append
        start = self.index

        for index in range(start, start + count):
            pc = (pc + 4) % code_bytes
            line = pc >> line_shift
            if line != last_line:
                last_line = line
                code_append(WARM_IFETCH)
                value_append(pc)
            roll = rng_random()
            if roll < load_fraction:
                if not (serial_load_chain and loads_emitted
                        and rng_random() < serial_load_chain):
                    rng_random()  # dependency-distance draw (value unused)
                code_append(WARM_LOAD)
                value_append(load_address())
                last_load_index = index
                loads_emitted += 1
            elif roll < store_cut:
                address, full = store_address()
                rng_random()  # dep1 draw
                rng_random()  # dep2 draw
                code_append(WARM_STORE_FULL if full else WARM_STORE)
                value_append(address)
            elif roll < branch_cut:
                rng_random()  # mispredict draw
                rng_random()  # dep1 draw
            else:
                rng_random()  # fp-fraction draw
                rng_random()  # dep1 draw
                rng_random()  # dep2 draw

        self.pc = pc
        self.index = start + count
        self.loads_emitted = loads_emitted
        self.last_load_index = last_load_index
        self._warm_line = last_line
        return codes, values


def generate_instructions(
    profile: WorkloadProfile, count: int, seed: int = 0
) -> Iterator[Instruction]:
    """Deterministically synthesize ``count`` instructions for ``profile``.

    A lazy wrapper over :meth:`InstructionStream.take` (the single source
    of truth for the stream definition), materializing one packed-chunk-
    sized segment at a time so multi-million-instruction streams never
    exist in memory at once.
    """
    stream = InstructionStream(profile, seed)
    remaining = count
    while remaining > 0:
        n = min(remaining, PACKED_CHUNK_INSTRUCTIONS)
        yield from stream.take(n)
        remaining -= n


def _stable_hash(text: str) -> int:
    """Deterministic across interpreter runs (unlike builtin hash)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0xFFFFFFFF
    return value


def generate_list(profile: WorkloadProfile, count: int, seed: int = 0) -> List[Instruction]:
    """Materialized convenience wrapper around :func:`generate_instructions`."""
    return list(generate_instructions(profile, count, seed))
