"""Synthetic instruction-stream generation.

A :class:`WorkloadProfile` captures the statistics that matter to the
memory system: footprint, access pattern, operation mix, dependency
distances (ILP), branch behaviour and streaming-store share.  A profile
plus a seed deterministically yields an instruction stream for the core
models.

Patterns:

``stream``
    Unit-stride sweeps over large arrays (scientific loops: swim, applu).
    Loads and stores walk separate cursors; stores can be marked
    ``full_block`` to model streams that overwrite whole cache lines.
``random``
    Uniform references over the footprint (mcf's sparse network).
``wset``
    Hot/cold working set: most references hit a hot region, the rest fall
    anywhere in the footprint (integer codes: gcc, twolf, vortex, vpr).
``mixed``
    Half stream, half wset (art's neural-net scans with tables).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import log
from typing import Iterator, List

from ..cpu.isa import Instruction

BLOCK = 64  # generation granularity: one L2 block


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one benchmark (see repro.workloads.spec)."""

    name: str
    footprint_bytes: int
    code_bytes: int = 64 * 1024
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    fp_fraction: float = 0.0
    mispredict_rate: float = 0.05
    #: mean register-dependency distance; small = serial, large = high ILP.
    mean_dep_distance: float = 4.0
    #: probability a load's address depends on the previous load (chasing).
    serial_load_chain: float = 0.0
    pattern: str = "wset"
    hot_fraction: float = 0.9
    hot_bytes: int = 64 * 1024
    #: fraction of stores that belong to whole-block streaming sweeps.
    stream_store_fraction: float = 0.0
    #: mean consecutive 8-byte references per spatial run (wset/random);
    #: 1 disables spatial locality (true pointer chasing).
    spatial_run: float = 4.0
    #: fraction of non-streaming references that hit the stack/locals
    #: region — a few KB that lives in the L1 (real codes spend most of
    #: their references there, which is what keeps L1 miss rates low).
    stack_fraction: float = 0.55
    stack_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.pattern not in ("stream", "random", "wset", "mixed"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        total = self.load_fraction + self.store_fraction + self.branch_fraction
        if total > 0.95:
            raise ValueError("operation mix leaves no room for ALU work")
        if self.footprint_bytes < 2 * BLOCK:
            raise ValueError("footprint too small")


class _AddressStream:
    """Stateful address source implementing the four patterns."""

    WORD = 8  # reference granularity

    def __init__(self, profile: WorkloadProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng
        self.base = profile.code_bytes  # data segment sits above the code
        self.read_cursor = 0
        self.write_cursor = profile.footprint_bytes // 2
        self.run_cursor = 0
        self.run_remaining = 0
        # loop-invariant profile state, bound once (this object is consulted
        # for every memory reference the generator emits)
        self._footprint = profile.footprint_bytes
        self._stack_words = min(profile.stack_bytes, self._footprint) // self.WORD
        self._hot_words = min(profile.hot_bytes, self._footprint) // self.WORD
        self._footprint_words = self._footprint // self.WORD
        self._is_random = profile.pattern == "random"
        self._is_mixed = profile.pattern == "mixed"
        self._is_stream = profile.pattern == "stream"
        self._has_runs = profile.spatial_run > 1
        self._run_high = max(2, int(2 * profile.spatial_run))

    def _wrap(self, offset: int) -> int:
        return offset % self._footprint

    def _fresh_locality_run(self) -> int:
        """Pick a new spatial run start (stack, hot or cold region)."""
        profile, rng = self.profile, self.rng
        roll = rng.random()
        if roll < profile.stack_fraction:
            region_words = self._stack_words
        elif self._is_random or rng.random() >= profile.hot_fraction:
            region_words = self._footprint_words
        else:
            region_words = self._hot_words
        start = rng.randrange(region_words) * self.WORD
        if self._has_runs:
            run = rng.randrange(1, self._run_high)
            # runs model accesses within one record/structure: they do not
            # cross a 64-byte block boundary (integer-code records are
            # small; sequential sweeps use the stream pattern instead)
            words_left_in_block = (BLOCK - start % BLOCK) // self.WORD - 1
            self.run_remaining = min(run, max(0, words_left_in_block))
        else:
            self.run_remaining = 0
        self.run_cursor = start
        return start

    def _locality_address(self) -> int:
        """wset/random reference with spatial runs of consecutive words."""
        if self.run_remaining > 0:
            self.run_remaining -= 1
            self.run_cursor = self._wrap(self.run_cursor + self.WORD)
            return self.run_cursor
        return self._fresh_locality_run()

    def load_address(self) -> int:
        stream = self._is_stream
        if self._is_mixed:
            stream = self.rng.random() < 0.5
        if stream:
            self.read_cursor = self._wrap(self.read_cursor + self.WORD)
            return self.base + self.read_cursor
        return self.base + self._locality_address()

    def store_address(self) -> tuple[int, bool]:
        """Returns (address, full_block)."""
        profile, rng = self.profile, self.rng
        if rng.random() < profile.stream_store_fraction:
            # unit-stride write sweep: the store opening a new block carries
            # the full-block mark (the sweep will overwrite all of it)
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            address = self.base + self.write_cursor
            return address, address % BLOCK == 0
        stream = self._is_stream
        if self._is_mixed:
            stream = rng.random() < 0.5
        if stream:
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            return self.base + self.write_cursor, False
        return self.base + self._locality_address(), False


def generate_instructions(
    profile: WorkloadProfile, count: int, seed: int = 0
) -> Iterator[Instruction]:
    """Deterministically synthesize ``count`` instructions for ``profile``.

    This is the per-cell hot path of every sweep: all bounds, fractions and
    callables are bound to locals before the loop, and the geometric
    dependency-distance draw inlines :meth:`random.Random.expovariate`
    (``1 + int(-log(1 - u) / lambd)``) so the stream — including the exact
    RNG draw sequence — is unchanged while the loop runs ~2x faster.
    """
    rng = random.Random((_stable_hash(profile.name) ^ seed) & 0xFFFFFFFF)
    addresses = _AddressStream(profile, rng)
    rng_random = rng.random
    load_address = addresses.load_address
    store_address = addresses.store_address
    instruction = Instruction
    load_fraction = profile.load_fraction
    store_cut = load_fraction + profile.store_fraction
    branch_cut = store_cut + profile.branch_fraction
    fp_fraction = profile.fp_fraction
    mispredict_rate = profile.mispredict_rate
    serial_load_chain = profile.serial_load_chain
    code_bytes = profile.code_bytes
    # geometric distance with the profile's mean; at least 1
    lambd = 1.0 / profile.mean_dep_distance
    pc = 0
    loads_emitted = 0
    last_load_index = 0

    for index in range(count):
        pc = (pc + 4) % code_bytes
        roll = rng_random()
        if roll < load_fraction:
            if (serial_load_chain and loads_emitted
                    and rng_random() < serial_load_chain):
                # pointer chase: the address register comes from the
                # previous load in program order
                distance = index - last_load_index
                if distance < 1:
                    distance = 1
            else:
                distance = 1 + int(-log(1.0 - rng_random()) / lambd)
            yield instruction(kind="load", dep1=distance,
                              address=load_address(), pc=pc)
            last_load_index = index
            loads_emitted += 1
        elif roll < store_cut:
            address, full = store_address()
            yield instruction(kind="store",
                              dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                              dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                              address=address, pc=pc, full_block=full)
        elif roll < branch_cut:
            mispredicted = rng_random() < mispredict_rate
            yield instruction(kind="branch",
                              dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                              pc=pc, mispredicted=mispredicted)
        elif rng_random() < fp_fraction:
            yield instruction(kind="fp",
                              dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                              dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                              pc=pc)
        else:
            yield instruction(kind="alu",
                              dep1=1 + int(-log(1.0 - rng_random()) / lambd),
                              dep2=1 + int(-log(1.0 - rng_random()) / lambd),
                              pc=pc)


def _stable_hash(text: str) -> int:
    """Deterministic across interpreter runs (unlike builtin hash)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0xFFFFFFFF
    return value


def generate_list(profile: WorkloadProfile, count: int, seed: int = 0) -> List[Instruction]:
    """Materialized convenience wrapper around :func:`generate_instructions`."""
    return list(generate_instructions(profile, count, seed))
