"""Synthetic instruction-stream generation.

A :class:`WorkloadProfile` captures the statistics that matter to the
memory system: footprint, access pattern, operation mix, dependency
distances (ILP), branch behaviour and streaming-store share.  A profile
plus a seed deterministically yields an instruction stream for the core
models.

Patterns:

``stream``
    Unit-stride sweeps over large arrays (scientific loops: swim, applu).
    Loads and stores walk separate cursors; stores can be marked
    ``full_block`` to model streams that overwrite whole cache lines.
``random``
    Uniform references over the footprint (mcf's sparse network).
``wset``
    Hot/cold working set: most references hit a hot region, the rest fall
    anywhere in the footprint (integer codes: gcc, twolf, vortex, vpr).
``mixed``
    Half stream, half wset (art's neural-net scans with tables).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from ..cpu.isa import Instruction

BLOCK = 64  # generation granularity: one L2 block


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one benchmark (see repro.workloads.spec)."""

    name: str
    footprint_bytes: int
    code_bytes: int = 64 * 1024
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    fp_fraction: float = 0.0
    mispredict_rate: float = 0.05
    #: mean register-dependency distance; small = serial, large = high ILP.
    mean_dep_distance: float = 4.0
    #: probability a load's address depends on the previous load (chasing).
    serial_load_chain: float = 0.0
    pattern: str = "wset"
    hot_fraction: float = 0.9
    hot_bytes: int = 64 * 1024
    #: fraction of stores that belong to whole-block streaming sweeps.
    stream_store_fraction: float = 0.0
    #: mean consecutive 8-byte references per spatial run (wset/random);
    #: 1 disables spatial locality (true pointer chasing).
    spatial_run: float = 4.0
    #: fraction of non-streaming references that hit the stack/locals
    #: region — a few KB that lives in the L1 (real codes spend most of
    #: their references there, which is what keeps L1 miss rates low).
    stack_fraction: float = 0.55
    stack_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.pattern not in ("stream", "random", "wset", "mixed"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        total = self.load_fraction + self.store_fraction + self.branch_fraction
        if total > 0.95:
            raise ValueError("operation mix leaves no room for ALU work")
        if self.footprint_bytes < 2 * BLOCK:
            raise ValueError("footprint too small")


class _AddressStream:
    """Stateful address source implementing the four patterns."""

    WORD = 8  # reference granularity

    def __init__(self, profile: WorkloadProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng
        self.base = profile.code_bytes  # data segment sits above the code
        self.read_cursor = 0
        self.write_cursor = profile.footprint_bytes // 2
        self.run_cursor = 0
        self.run_remaining = 0

    def _wrap(self, offset: int) -> int:
        return offset % self.profile.footprint_bytes

    def _fresh_locality_run(self) -> int:
        """Pick a new spatial run start (stack, hot or cold region)."""
        profile, rng = self.profile, self.rng
        roll = rng.random()
        if roll < profile.stack_fraction:
            region = min(profile.stack_bytes, profile.footprint_bytes)
        elif profile.pattern == "random" or rng.random() >= profile.hot_fraction:
            region = profile.footprint_bytes
        else:
            region = min(profile.hot_bytes, profile.footprint_bytes)
        start = rng.randrange(region // self.WORD) * self.WORD
        if profile.spatial_run > 1:
            run = rng.randrange(1, max(2, int(2 * profile.spatial_run)))
            # runs model accesses within one record/structure: they do not
            # cross a 64-byte block boundary (integer-code records are
            # small; sequential sweeps use the stream pattern instead)
            words_left_in_block = (BLOCK - start % BLOCK) // self.WORD - 1
            self.run_remaining = min(run, max(0, words_left_in_block))
        else:
            self.run_remaining = 0
        self.run_cursor = start
        return start

    def _locality_address(self) -> int:
        """wset/random reference with spatial runs of consecutive words."""
        if self.run_remaining > 0:
            self.run_remaining -= 1
            self.run_cursor = self._wrap(self.run_cursor + self.WORD)
            return self.run_cursor
        return self._fresh_locality_run()

    def load_address(self) -> int:
        profile, rng = self.profile, self.rng
        pattern = profile.pattern
        if pattern == "mixed":
            pattern = "stream" if rng.random() < 0.5 else "wset"
        if pattern == "stream":
            self.read_cursor = self._wrap(self.read_cursor + self.WORD)
            offset = self.read_cursor
        else:
            offset = self._locality_address()
        return self.base + offset

    def store_address(self) -> tuple[int, bool]:
        """Returns (address, full_block)."""
        profile, rng = self.profile, self.rng
        if rng.random() < profile.stream_store_fraction:
            # unit-stride write sweep: the store opening a new block carries
            # the full-block mark (the sweep will overwrite all of it)
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            address = self.base + self.write_cursor
            return address, address % BLOCK == 0
        pattern = profile.pattern
        if pattern == "mixed":
            pattern = "stream" if rng.random() < 0.5 else "wset"
        if pattern == "stream":
            self.write_cursor = self._wrap(self.write_cursor + self.WORD)
            return self.base + self.write_cursor, False
        return self.base + self._locality_address(), False


def generate_instructions(
    profile: WorkloadProfile, count: int, seed: int = 0
) -> Iterator[Instruction]:
    """Deterministically synthesize ``count`` instructions for ``profile``."""
    rng = random.Random((_stable_hash(profile.name) ^ seed) & 0xFFFFFFFF)
    addresses = _AddressStream(profile, rng)
    pc = 0
    loads_emitted = 0
    last_load_index = 0

    def dep() -> int:
        # geometric distance with the profile's mean; at least 1
        mean = profile.mean_dep_distance
        distance = 1 + int(rng.expovariate(1.0 / mean))
        return distance

    for index in range(count):
        pc = (pc + 4) % profile.code_bytes
        roll = rng.random()
        if roll < profile.load_fraction:
            if (profile.serial_load_chain and loads_emitted
                    and rng.random() < profile.serial_load_chain):
                # pointer chase: the address register comes from the
                # previous load in program order
                distance = max(1, index - last_load_index)
            else:
                distance = dep()
            yield Instruction(kind="load", dep1=distance,
                              address=addresses.load_address(), pc=pc)
            last_load_index = index
            loads_emitted += 1
        elif roll < profile.load_fraction + profile.store_fraction:
            address, full = addresses.store_address()
            yield Instruction(kind="store", dep1=dep(), dep2=dep(),
                              address=address, pc=pc, full_block=full)
        elif roll < (profile.load_fraction + profile.store_fraction
                     + profile.branch_fraction):
            mispredicted = rng.random() < profile.mispredict_rate
            yield Instruction(kind="branch", dep1=dep(), pc=pc,
                              mispredicted=mispredicted)
        elif rng.random() < profile.fp_fraction:
            yield Instruction(kind="fp", dep1=dep(), dep2=dep(), pc=pc)
        else:
            yield Instruction(kind="alu", dep1=dep(), dep2=dep(), pc=pc)


def _stable_hash(text: str) -> int:
    """Deterministic across interpreter runs (unlike builtin hash)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0xFFFFFFFF
    return value


def generate_list(profile: WorkloadProfile, count: int, seed: int = 0) -> List[Instruction]:
    """Materialized convenience wrapper around :func:`generate_instructions`."""
    return list(generate_instructions(profile, count, seed))
