"""Synthetic workload generation and SPEC CPU2000 stand-in models."""

from .generators import WorkloadProfile, generate_instructions, generate_list
from .spec import BANDWIDTH_BOUND, BENCHMARK_ORDER, SPEC_PROFILES, spec_workload
from .tracefile import dump_trace, load_trace, parse_trace, save_trace

__all__ = [
    "WorkloadProfile",
    "generate_instructions",
    "generate_list",
    "BANDWIDTH_BOUND",
    "BENCHMARK_ORDER",
    "SPEC_PROFILES",
    "spec_workload",
    "dump_trace",
    "load_trace",
    "parse_trace",
    "save_trace",
]
