"""Synthetic workload generation and SPEC CPU2000 stand-in models."""

from .generators import (
    PACKED_CHUNK_INSTRUCTIONS,
    WARM_IFETCH,
    WARM_LOAD,
    WARM_STORE,
    WARM_STORE_FULL,
    InstructionStream,
    WorkloadProfile,
    generate_instructions,
    generate_list,
)
from .spec import BANDWIDTH_BOUND, BENCHMARK_ORDER, SPEC_PROFILES, spec_workload
from .tracefile import TraceParseError, dump_trace, load_trace, parse_trace, save_trace

__all__ = [
    "InstructionStream",
    "PACKED_CHUNK_INSTRUCTIONS",
    "WARM_IFETCH",
    "WARM_LOAD",
    "WARM_STORE",
    "WARM_STORE_FULL",
    "WorkloadProfile",
    "generate_instructions",
    "generate_list",
    "BANDWIDTH_BOUND",
    "BENCHMARK_ORDER",
    "SPEC_PROFILES",
    "spec_workload",
    "dump_trace",
    "TraceParseError",
    "load_trace",
    "parse_trace",
    "save_trace",
]
