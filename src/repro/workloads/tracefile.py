"""Instruction-trace files: save and replay workloads reproducibly.

The synthetic generators are deterministic, but a file format makes runs
portable across library versions and lets users drive the simulator with
traces from elsewhere (e.g. converted Pin/Valgrind memory traces).

Format: one instruction per line, ``#`` comments and blank lines ignored::

    kind dep1 dep2 address pc flags

``flags`` is a combination of ``m`` (mispredicted branch) and ``f``
(full-block store), or ``-`` for none.  All numbers are decimal.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, TextIO, Union

from ..cpu.isa import Instruction

_HEADER = "# repro instruction trace v1"


def dump_trace(instructions: Iterable[Instruction], stream: TextIO) -> int:
    """Write instructions to ``stream``; returns the count."""
    stream.write(_HEADER + "\n")
    count = 0
    for instruction in instructions:
        flags = ""
        if instruction.mispredicted:
            flags += "m"
        if instruction.full_block:
            flags += "f"
        stream.write(
            f"{instruction.kind} {instruction.dep1} {instruction.dep2} "
            f"{instruction.address} {instruction.pc} {flags or '-'}\n"
        )
        count += 1
    return count


def save_trace(instructions: Iterable[Instruction], path: str) -> int:
    """Write instructions to the file at ``path``; returns the count."""
    with open(path, "w", encoding="ascii") as stream:
        return dump_trace(instructions, stream)


def parse_trace(stream: Union[TextIO, io.StringIO]) -> Iterator[Instruction]:
    """Yield instructions from an open trace stream (validates each line)."""
    for line_number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        if len(fields) != 6:
            raise ValueError(
                f"trace line {line_number}: expected 6 fields, got {len(fields)}"
            )
        kind, dep1, dep2, address, pc, flags = fields
        try:
            yield Instruction(
                kind=kind,
                dep1=int(dep1),
                dep2=int(dep2),
                address=int(address),
                pc=int(pc),
                mispredicted="m" in flags,
                full_block="f" in flags,
            )
        except ValueError as error:
            raise ValueError(f"trace line {line_number}: {error}") from error


def load_trace(path: str) -> List[Instruction]:
    """Read a whole trace file into a list."""
    with open(path, "r", encoding="ascii") as stream:
        return list(parse_trace(stream))
