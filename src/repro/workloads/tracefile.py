"""Instruction-trace files: save and replay workloads reproducibly.

The synthetic generators are deterministic, but a file format makes runs
portable across library versions and lets users drive the simulator with
traces from elsewhere (e.g. converted Pin/Valgrind memory traces).

Format: one instruction per line, ``#`` comments and blank lines ignored::

    kind dep1 dep2 address pc flags

``flags`` is a combination of ``m`` (mispredicted branch) and ``f``
(full-block store), or ``-`` for none.  All numbers are decimal.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from ..cpu.isa import Instruction

_HEADER = "# repro instruction trace v1"

_KNOWN_FLAGS = frozenset("mf")


class TraceParseError(ValueError):
    """A malformed or truncated trace line.

    Carries ``source`` (file name, or None for anonymous streams) and
    ``line`` (1-based line number) so tooling can point at the exact
    offending input instead of re-parsing the message.  Subclasses
    :class:`ValueError`, so pre-existing ``except ValueError`` callers
    keep working.
    """

    def __init__(self, message: str, source: Optional[str] = None,
                 line: Optional[int] = None):
        where = f"trace line {line}"
        if source:
            where += f" of {source}"
        super().__init__(f"{where}: {message}")
        self.source = source
        self.line = line


def dump_trace(instructions: Iterable[Instruction], stream: TextIO) -> int:
    """Write instructions to ``stream``; returns the count."""
    stream.write(_HEADER + "\n")
    count = 0
    for instruction in instructions:
        flags = ""
        if instruction.mispredicted:
            flags += "m"
        if instruction.full_block:
            flags += "f"
        stream.write(
            f"{instruction.kind} {instruction.dep1} {instruction.dep2} "
            f"{instruction.address} {instruction.pc} {flags or '-'}\n"
        )
        count += 1
    return count


def save_trace(instructions: Iterable[Instruction], path: str) -> int:
    """Write instructions to the file at ``path``; returns the count."""
    with open(path, "w", encoding="ascii") as stream:
        return dump_trace(instructions, stream)


def parse_trace(stream: Union[TextIO, io.StringIO],
                source: Optional[str] = None) -> Iterator[Instruction]:
    """Yield instructions from an open trace stream (validates each line).

    Malformed lines raise :class:`TraceParseError` carrying ``source``
    (defaults to the stream's ``name``, when it has one) and the 1-based
    line number.
    """
    if source is None:
        name = getattr(stream, "name", None)
        source = name if isinstance(name, str) else None
    for line_number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        if len(fields) != 6:
            raise TraceParseError(
                f"expected 6 fields, got {len(fields)}",
                source=source, line=line_number,
            )
        kind, dep1, dep2, address, pc, flags = fields
        if flags != "-" and (not flags or not _KNOWN_FLAGS.issuperset(flags)):
            raise TraceParseError(
                f"bad flags {flags!r} (want '-' or a combination of 'm'/'f')",
                source=source, line=line_number,
            )
        try:
            yield Instruction(
                kind=kind,
                dep1=int(dep1),
                dep2=int(dep2),
                address=int(address),
                pc=int(pc),
                mispredicted="m" in flags,
                full_block="f" in flags,
            )
        except ValueError as error:
            raise TraceParseError(
                str(error), source=source, line=line_number
            ) from error


def load_trace(path: str) -> List[Instruction]:
    """Read a whole trace file into a list.

    The handle is closed whether parsing succeeds or raises mid-file
    (``parse_trace`` is lazy, so the failure surfaces while the file is
    still open).
    """
    stream = open(path, "r", encoding="ascii")
    try:
        return list(parse_trace(stream, source=path))
    finally:
        stream.close()
