"""SPEC CPU2000 stand-in workload models (Section 6.2).

The paper simulates nine SPEC CPU2000 benchmarks — gcc, gzip, mcf, twolf,
vortex, vpr (integer) and applu, art, swim (floating point) — chosen for
their varied ILP, cache miss rates and bandwidth demands.  SPEC binaries
and reference inputs are not redistributable, so each benchmark is modelled
by a :class:`~repro.workloads.generators.WorkloadProfile` that reproduces
its *class* of memory behaviour:

* **gcc / gzip** — cache-friendly integer codes: working sets fit the L2,
  misses are rare, verification overhead is small everywhere.
* **twolf / vortex / vpr** — working sets of a few hundred KB: they thrash
  a 256 KB L2 (the cache-contention victims of Figure 4) and settle at
  1-4 MB.
* **mcf** — pointer chasing over a footprint far beyond any L2: high miss
  rate, low ILP, both latency- and bandwidth-sensitive (the paper's worst
  chash case).
* **applu / swim** — unit-stride scientific sweeps with heavy streaming
  stores: enormous write-back traffic, which is what makes the naive
  scheme ~10x slower on them.
* **art** — streaming scans mixed with table lookups: bandwidth-bound
  reads.

Profiles are deterministic stand-ins, not cycle-accurate replays; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Dict, List

from ..cpu.isa import Instruction
from .generators import WorkloadProfile, generate_instructions

KB = 1024
MB = 1024 * KB

SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    "gcc": WorkloadProfile(
        name="gcc",
        footprint_bytes=2 * MB,
        code_bytes=96 * KB,
        load_fraction=0.26,
        store_fraction=0.12,
        branch_fraction=0.18,
        mispredict_rate=0.06,
        mean_dep_distance=3.0,
        pattern="wset",
        hot_fraction=0.93,
        hot_bytes=192 * KB,
        spatial_run=5.0,
        stack_fraction=0.72,
    ),
    "gzip": WorkloadProfile(
        name="gzip",
        footprint_bytes=1 * MB,
        code_bytes=32 * KB,
        load_fraction=0.22,
        store_fraction=0.10,
        branch_fraction=0.16,
        mispredict_rate=0.06,
        mean_dep_distance=2.5,
        pattern="wset",
        hot_fraction=0.99,
        hot_bytes=96 * KB,
        spatial_run=7.0,
        stack_fraction=0.72,
    ),
    "mcf": WorkloadProfile(
        name="mcf",
        footprint_bytes=3 * MB,
        code_bytes=16 * KB,
        load_fraction=0.35,
        store_fraction=0.09,
        branch_fraction=0.17,
        mispredict_rate=0.08,
        mean_dep_distance=2.2,
        serial_load_chain=0.35,
        pattern="random",
        spatial_run=1.0,
        stack_fraction=0.6,
    ),
    "twolf": WorkloadProfile(
        name="twolf",
        footprint_bytes=1 * MB,
        code_bytes=48 * KB,
        load_fraction=0.28,
        store_fraction=0.11,
        branch_fraction=0.15,
        mispredict_rate=0.07,
        mean_dep_distance=3.0,
        pattern="wset",
        hot_fraction=0.85,
        hot_bytes=440 * KB,
        spatial_run=3.0,
        stack_fraction=0.62,
    ),
    "vortex": WorkloadProfile(
        name="vortex",
        footprint_bytes=2 * MB,
        code_bytes=96 * KB,
        load_fraction=0.30,
        store_fraction=0.14,
        branch_fraction=0.14,
        mispredict_rate=0.04,
        mean_dep_distance=3.5,
        pattern="wset",
        hot_fraction=0.93,
        hot_bytes=512 * KB,
        spatial_run=4.0,
        stack_fraction=0.68,
    ),
    "vpr": WorkloadProfile(
        name="vpr",
        footprint_bytes=1 * MB,
        code_bytes=48 * KB,
        load_fraction=0.29,
        store_fraction=0.11,
        branch_fraction=0.14,
        mispredict_rate=0.07,
        mean_dep_distance=3.0,
        fp_fraction=0.15,
        pattern="wset",
        hot_fraction=0.87,
        hot_bytes=384 * KB,
        spatial_run=3.5,
        stack_fraction=0.62,
    ),
    "applu": WorkloadProfile(
        name="applu",
        footprint_bytes=12 * MB,
        code_bytes=64 * KB,
        load_fraction=0.31,
        store_fraction=0.21,
        branch_fraction=0.03,
        mispredict_rate=0.02,
        mean_dep_distance=7.0,
        fp_fraction=0.55,
        pattern="stream",
        stream_store_fraction=0.85,
        stack_fraction=0.0,
    ),
    "art": WorkloadProfile(
        name="art",
        footprint_bytes=3 * MB,
        code_bytes=16 * KB,
        load_fraction=0.30,
        store_fraction=0.08,
        branch_fraction=0.10,
        mispredict_rate=0.03,
        mean_dep_distance=5.0,
        fp_fraction=0.45,
        pattern="mixed",
        hot_fraction=0.8,
        hot_bytes=256 * KB,
        spatial_run=4.0,
        stack_fraction=0.35,
    ),
    "swim": WorkloadProfile(
        name="swim",
        footprint_bytes=12 * MB,
        code_bytes=16 * KB,
        load_fraction=0.29,
        store_fraction=0.25,
        branch_fraction=0.02,
        mispredict_rate=0.02,
        mean_dep_distance=7.0,
        fp_fraction=0.55,
        pattern="stream",
        stream_store_fraction=0.88,
        stack_fraction=0.0,
    ),
}

#: The order the paper's figures use: integer benchmarks, then FP.
BENCHMARK_ORDER: List[str] = [
    "gcc", "gzip", "mcf", "twolf", "vortex", "vpr", "applu", "art", "swim",
]

#: The paper's bandwidth-bound subset (Sections 6.3, 6.5, 6.6).
BANDWIDTH_BOUND: List[str] = ["mcf", "applu", "art", "swim"]


def spec_workload(name: str, count: int, seed: int = 0) -> List[Instruction]:
    """Materialize ``count`` instructions of the named benchmark model."""
    if name not in SPEC_PROFILES:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_ORDER}"
        )
    return list(generate_instructions(SPEC_PROFILES[name], count, seed))
