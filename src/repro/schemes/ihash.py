"""The ihash scheme: incremental MACs on the write-back path (Section 5.4.1).

Reads verify like mhash (the whole chunk is assembled and MACed), but a
dirty eviction avoids chunk assembly entirely: read the parent MAC through
the L2, read the block's *old* value straight from memory (unchecked — the
one-bit timestamps make that safe), swap the block's term in the MAC, and
write the block plus the updated entry.  That single extra block read is
why ihash tracks chash closely in Figure 8 except for the most
bandwidth-bound benchmarks.
"""

from __future__ import annotations

from .api import MAX_CASCADE_DEPTH
from .mhash import MHashScheme


class IHashScheme(MHashScheme):
    name = "ihash"

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        """Incremental write-back: parent MAC + one unchecked old read."""
        self.stats.add("writebacks")
        layout = self.layout
        chunk = layout.chunk_at_address(victim_address)
        location = layout.hash_location(chunk)
        slot, start = self.engine.begin_writeback(now)

        # 1. read the parent MAC entry with ReadAndCheck (through the L2)
        entry_ready = start
        if not location.in_secure_memory:
            lookup = self.l2.access(location.address, write=False, kind="hash")
            if lookup.hit:
                self.stats.add("hash_l2_hits")
                entry_ready = start + self.config.l2.latency_cycles
            else:
                self.stats.add("hash_l2_misses")
                if depth < MAX_CASCADE_DEPTH:
                    _, parent_done = self._fetch_and_verify_chunk(
                        location.parent_chunk, start, needed=None, write=False,
                        depth=depth + 1,
                    )
                    entry_ready = parent_done
                else:
                    self.stats.add("cascade_depth_overflows")

        # 2. read the old block value directly from memory — unchecked
        self.stats.add("unchecked_old_reads")
        old_ready = self.memory.read(start, self.block_bytes, kind="old")

        # 3. update the MAC: hash the old and the new block terms
        old_term = self.engine.hash_op(old_ready, self.block_bytes)
        new_term = self.engine.hash_op(start, self.block_bytes)
        mac_done = max(old_term, new_term, entry_ready)
        self.stats.add("mac_updates")

        # 4. write the block; dirty the entry in the L2 (visible together)
        self.memory.write(start, self.block_bytes, kind="writeback")
        if not location.in_secure_memory:
            self.l2.access(location.address, write=True, kind="hash")
        self.engine.finish_writeback(slot, mac_done)
