"""The naive scheme: tree machinery between L2 and memory, hashes uncached.

Every L2 miss triggers a full verification walk — ``depth`` extra chunk
reads from memory plus as many hash computations — and every dirty
eviction rewrites the whole path (read, modify, re-hash, write at each
level).  Nothing about the tree ever enters the L2, so the walk never
shortens: this is the log(N) bandwidth blow-up the paper's Figure 3/5
shows, with ~10x slowdowns for write-back-heavy benchmarks.
"""

from __future__ import annotations

from .api import MissOutcome, TimingScheme


class NaiveScheme(TimingScheme):
    name = "naive"

    def handle_data_miss(self, address: int, now: int, write: bool) -> MissOutcome:
        self.stats.add("data_misses")
        slot, start = self.engine.begin_check(now)
        data_ready, full_ready = self.memory.read_critical(
            start, self.block_bytes, kind="data")
        check_done = self._verify_path(address, full_ready, start)
        self.engine.finish_check(slot, check_done)
        self.fill_l2(address, now, dirty=write, kind="data")
        return MissOutcome(data_ready=data_ready, check_done=check_done)

    def _verify_path(self, address: int, data_ready: int, now: int) -> int:
        """Fetch and hash every ancestor chunk from memory."""
        layout = self.layout
        chunk_bytes = layout.chunk_bytes
        # hash the data chunk itself once it has arrived
        chain_done = self.engine.hash_op(data_ready, chunk_bytes)
        chunk = layout.chunk_at_address(address)
        location = layout.hash_location(chunk)
        while not location.in_secure_memory:
            self.stats.add("hash_chunk_reads")
            parent_ready = self.memory.read(now, chunk_bytes, kind="hash")
            parent_hashed = self.engine.hash_op(parent_ready, chunk_bytes)
            chain_done = max(chain_done, parent_hashed)
            location = layout.hash_location(location.parent_chunk)
        return chain_done

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        """Rewrite the whole path: the uncached tree has no deferral."""
        self.stats.add("writebacks")
        layout = self.layout
        chunk_bytes = layout.chunk_bytes
        slot, start = self.engine.begin_writeback(now)
        hashed = self.engine.hash_op(start, chunk_bytes)
        self.memory.write(start, self.block_bytes, kind="writeback")
        chunk = layout.chunk_at_address(victim_address)
        location = layout.hash_location(chunk)
        last = hashed
        while not location.in_secure_memory:
            self.stats.add("hash_chunk_reads")
            self.stats.add("hash_chunk_writes")
            parent_ready = self.memory.read(start, chunk_bytes, kind="hash")
            last = self.engine.hash_op(max(parent_ready, last), chunk_bytes)
            self.memory.write(parent_ready, chunk_bytes, kind="hash")
            location = layout.hash_location(location.parent_chunk)
        self.engine.finish_writeback(slot, last)
