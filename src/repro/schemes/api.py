"""Timing-scheme interface: how L2 misses and write-backs reach memory.

A :class:`TimingScheme` is the machinery between the L2 cache and main
memory.  The core never calls it directly — the
:class:`~repro.cache.hierarchy.MemoryHierarchy` forwards L2 data misses and
L2 victim write-backs, and the scheme decides what bus traffic, hash-engine
work and extra L2 (hash) accesses they cost:

* ``base``   — plain fetch/write-back, no verification;
* ``naive``  — full tree walk from memory on every miss, hashes uncached;
* ``chash``  — tree nodes cached in L2, walk stops at the first hit;
* ``mhash``  — chash with several L2 blocks per hash chunk;
* ``ihash``  — mhash with incremental MACs on the write-back path.

Timing convention: methods take ``now`` (cycle the miss reaches the L2
miss handler) and return a :class:`MissOutcome`; ``data_ready`` is when the
requested block is usable by the core (speculative execution continues
from there, Section 5.9), ``check_done`` is when its background
verification chain completes (crypto instructions wait for the maximum of
these).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.cache import CacheSim
from ..common.config import SystemConfig
from ..common.stats import StatGroup
from ..dram.bus import MainMemoryTiming
from ..hashengine.engine import HashEngineTiming
from ..hashtree.layout import TreeLayout

#: Cascaded evictions deeper than this are counted, not followed — the
#: timing error is negligible and it bounds recursion.
MAX_CASCADE_DEPTH = 24


@dataclass(frozen=True)
class MissOutcome:
    """What the core learns about one L2 miss."""

    data_ready: int
    check_done: int


class TimingScheme:
    """Common plumbing for the five schemes."""

    name = "abstract"

    def __init__(
        self,
        config: SystemConfig,
        l2: CacheSim,
        memory: MainMemoryTiming,
        engine: HashEngineTiming,
        layout: Optional[TreeLayout],
    ):
        self.config = config
        self.l2 = l2
        self.memory = memory
        self.engine = engine
        self.layout = layout
        self.stats = StatGroup(f"scheme_{self.name}")
        self.block_bytes = config.l2.block_bytes
        #: constant offset applied by :meth:`data_address` — precomputed so
        #: the per-reference hot path is one integer add.
        self._data_offset = (
            0 if layout is None else layout.first_leaf * layout.chunk_bytes
        )

    # -- interface used by the memory hierarchy -----------------------------------

    def handle_data_miss(self, address: int, now: int, write: bool) -> MissOutcome:
        """An L2 data (or instruction) miss at physical ``address``.

        Must fetch the block, arrange verification, fill the L2 and handle
        any victim write-back.  ``write`` marks a write-allocate fill.
        """
        raise NotImplementedError

    def data_address(self, program_address: int) -> int:
        """Map a program address into the protected physical segment."""
        return program_address + self._data_offset

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot_state(self) -> tuple:
        """Scheme-owned mutable state (all five schemes keep only counters;
        a future stateful scheme overrides both hooks together)."""
        return (dict(self.stats.counters),)

    def restore_state(self, snap: tuple) -> None:
        (counters,) = snap
        live = self.stats.counters
        live.clear()
        live.update(counters)

    # -- shared helpers ---------------------------------------------------------------

    def fill_l2(self, address: int, now: int, dirty: bool, kind: str,
                depth: int = 0) -> None:
        """Allocate a block in the L2, writing back the victim if dirty.

        Public because the hierarchy's §5.3 valid-bit store-allocate path
        fills the L2 directly (no fetch, no check) and still needs the
        scheme's victim-write-back cascade.
        """
        result = self.l2.fill(address, dirty=dirty, kind=kind)
        if result.victim_address is not None and result.victim_dirty:
            if depth >= MAX_CASCADE_DEPTH:
                self.stats.add("cascade_depth_overflows")
                # account the bus write at least, so bandwidth stays honest
                self.memory.write(now, self.block_bytes, kind="writeback")
                return
            self.handle_writeback(result.victim_address, now, depth + 1)

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        """An L2 dirty victim leaves the cache at ``now``."""
        raise NotImplementedError
