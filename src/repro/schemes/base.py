"""The unverified baseline: a plain L2 miss handler."""

from __future__ import annotations

from .api import MissOutcome, TimingScheme


class BaseScheme(TimingScheme):
    """No integrity machinery: fetch, fill, write back."""

    name = "base"

    def handle_data_miss(self, address: int, now: int, write: bool) -> MissOutcome:
        self.stats.add("data_misses")
        data_ready, _ = self.memory.read_critical(now, self.block_bytes,
                                                  kind="data")
        self.fill_l2(address, now, dirty=write, kind="data")
        return MissOutcome(data_ready=data_ready, check_done=data_ready)

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        self.stats.add("writebacks")
        self.memory.write(now, self.block_bytes, kind="writeback")
