"""The chash scheme: hash-tree machinery merged with the L2 (Section 5.3).

On a miss the fetched chunk is hashed and compared against its parent
entry, *where the parent lookup goes through the L2*: a cached ancestor is
trusted and terminates the walk, and fetched hash chunks allocate in the
L2 like data (that allocation is both the win — fewer than one extra
memory access per miss, Figure 5a — and the cost — cache pollution,
Figure 4).  Dirty evictions re-hash the block and write the new hash into
the parent entry through the cache, dirtying it in turn.
"""

from __future__ import annotations

from .api import MAX_CASCADE_DEPTH, MissOutcome, TimingScheme


class CHashScheme(TimingScheme):
    name = "chash"

    def handle_data_miss(self, address: int, now: int, write: bool) -> MissOutcome:
        self.stats.add("data_misses")
        data_ready, check_done = self._fetch_checked(address, now, kind="data",
                                                     depth=0)
        self.fill_l2(address, now, dirty=write, kind="data")
        return MissOutcome(data_ready=data_ready, check_done=check_done)

    # -- verification walk -------------------------------------------------------

    def _fetch_checked(self, address: int, now: int, kind: str,
                       depth: int) -> tuple[int, int]:
        """Fetch one chunk from memory and arrange its background check.

        A read-buffer slot is held from the fetch until *this* chunk's own
        hash comparison completes (hardware gives each buffered block its
        own slot; ancestors fetched along the walk claim their own).
        Returns ``(data_ready, chain_done)``.
        """
        slot, start = self.engine.begin_check(now)
        data_ready, full_ready = self.memory.read_critical(
            start, self.layout.chunk_bytes, kind=kind)
        hashed = self.engine.hash_op(full_ready, self.layout.chunk_bytes)
        expected_ready, chain_done = self._expected_hash(address, start, depth)
        own_check = max(hashed, expected_ready)
        self.engine.finish_check(slot, own_check)
        return data_ready, max(own_check, chain_done)

    def _expected_hash(self, address: int, now: int,
                       depth: int) -> tuple[int, int]:
        """Locate the parent hash for the chunk at ``address``.

        Returns ``(value_ready, chain_done)``: when the hash value can be
        compared against, and when the (possibly recursive) verification
        of everything fetched along the way completes.
        """
        layout = self.layout
        chunk = layout.chunk_at_address(address)
        location = layout.hash_location(chunk)
        if location.in_secure_memory:
            return now, now
        lookup = self.l2.access(location.address, write=False, kind="hash")
        if lookup.hit:
            self.stats.add("hash_l2_hits")
            ready = now + self.config.l2.latency_cycles
            return ready, ready
        self.stats.add("hash_l2_misses")
        if depth >= MAX_CASCADE_DEPTH:  # pragma: no cover - guard
            self.stats.add("cascade_depth_overflows")
            return now, now
        parent_address = layout.chunk_address(location.parent_chunk)
        self.stats.add("hash_chunk_reads")
        parent_ready, parent_chain = self._fetch_checked(parent_address, now,
                                                         kind="hash",
                                                         depth=depth + 1)
        self.fill_l2(parent_address, now, dirty=False, kind="hash",
                      depth=depth + 1)
        return parent_ready, parent_chain

    # -- write-back path ------------------------------------------------------------

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        """Hash the evicted block, store it, update the parent through L2."""
        self.stats.add("writebacks")
        layout = self.layout
        slot, start = self.engine.begin_writeback(now)
        hashed = self.engine.hash_op(start, layout.chunk_bytes)
        self.memory.write(start, self.block_bytes, kind="writeback")
        self.engine.finish_writeback(slot, hashed)
        chunk = layout.chunk_at_address(victim_address)
        location = layout.hash_location(chunk)
        if location.in_secure_memory:
            return
        lookup = self.l2.access(location.address, write=True, kind="hash")
        if lookup.hit:
            self.stats.add("hash_l2_hits")
            return
        self.stats.add("hash_l2_misses")
        if depth >= MAX_CASCADE_DEPTH:
            self.stats.add("cascade_depth_overflows")
            return
        # Write-allocate the parent: fetch, verify, then dirty it in L2.
        parent_address = layout.chunk_address(location.parent_chunk)
        self.stats.add("hash_chunk_reads")
        self._fetch_checked(parent_address, now, kind="hash", depth=depth + 1)
        self.fill_l2(parent_address, now, dirty=True, kind="hash", depth=depth + 1)
