"""Timing models of the five memory-integrity schemes of the paper."""

from typing import Optional

from ..cache.cache import CacheSim
from ..common.config import SchemeKind, SystemConfig
from ..dram.bus import MainMemoryTiming
from ..hashengine.engine import HashEngineTiming
from ..hashtree.layout import TreeLayout
from .api import MissOutcome, TimingScheme
from .base import BaseScheme
from .chash import CHashScheme
from .ihash import IHashScheme
from .mhash import MHashScheme
from .naive import NaiveScheme

_SCHEMES = {
    SchemeKind.BASE: BaseScheme,
    SchemeKind.NAIVE: NaiveScheme,
    SchemeKind.CHASH: CHashScheme,
    SchemeKind.MHASH: MHashScheme,
    SchemeKind.IHASH: IHashScheme,
}


def build_scheme(
    config: SystemConfig,
    l2: CacheSim,
    memory: MainMemoryTiming,
    engine: HashEngineTiming,
    layout: Optional[TreeLayout],
) -> TimingScheme:
    """Instantiate the timing scheme selected by ``config.scheme``."""
    cls = _SCHEMES[config.scheme]
    return cls(config, l2, memory, engine, layout)


__all__ = [
    "MissOutcome",
    "TimingScheme",
    "BaseScheme",
    "NaiveScheme",
    "CHashScheme",
    "MHashScheme",
    "IHashScheme",
    "build_scheme",
]
