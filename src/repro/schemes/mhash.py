"""The mhash scheme: several L2 blocks per hash chunk (Section 5.4).

Halves (or quarters) the hash memory overhead without touching the L2
block size, at the price of chunk-granularity traffic: verifying any one
block means assembling its whole chunk, and writing back a dirty block
means re-assembling, re-hashing and writing every dirty chunk-mate.
Figure 8 shows the resulting bandwidth cost relative to chash and ihash.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .api import MAX_CASCADE_DEPTH, MissOutcome, TimingScheme


class MHashScheme(TimingScheme):
    name = "mhash"

    def __init__(self, config, l2, memory, engine, layout):
        super().__init__(config, l2, memory, engine, layout)
        self.blocks_per_chunk = layout.chunk_bytes // config.l2.block_bytes

    # -- miss path -----------------------------------------------------------------

    def handle_data_miss(self, address: int, now: int, write: bool) -> MissOutcome:
        self.stats.add("data_misses")
        chunk = self.layout.chunk_at_address(address)
        data_ready, check_done = self._fetch_and_verify_chunk(
            chunk, now, needed=self.l2.block_address(address), write=write,
            depth=0,
        )
        return MissOutcome(data_ready=data_ready, check_done=check_done)

    def _fetch_and_verify_chunk(
        self,
        chunk: int,
        now: int,
        needed: Optional[int],
        write: bool,
        depth: int,
    ) -> Tuple[int, int]:
        """Assemble, verify and allocate one chunk.

        ``needed`` is the block address whose arrival time the core waits
        on (None for internal hash-chunk fetches).  Returns
        ``(data_ready, check_done)``.  A read-buffer slot is held from the
        first fetch until this chunk's own MAC/hash comparison completes.
        """
        layout = self.layout
        base = layout.chunk_address(chunk)
        slot, now = self.engine.begin_check(now)
        data_ready = now
        assembled = now
        for index in range(self.blocks_per_chunk):
            block_address = base + index * self.block_bytes
            if block_address == needed:
                self.stats.add("data_block_reads")
                data_ready, ready = self.memory.read_critical(
                    now, self.block_bytes, kind="data")
                self.fill_l2(block_address, now, dirty=write, kind="data",
                              depth=depth)
            elif self.l2.probe(block_address) and not self.l2.is_dirty(block_address):
                # clean in cache: equals memory, no bus traffic
                self.stats.add("chunk_blocks_from_cache")
                continue
            else:
                # uncached, or dirty (the hash covers the memory image)
                self.stats.add("chunk_assembly_reads")
                ready = self.memory.read(now, self.block_bytes, kind="hash")
                if not self.l2.probe(block_address):
                    self.fill_l2(block_address, now, dirty=False, kind="data",
                                  depth=depth)
            assembled = max(assembled, ready)
        assembled = max(assembled, data_ready)
        if needed is None:
            # internal fetch: the "data" the caller waits on is the chunk
            data_ready = assembled
        hashed = self.engine.hash_op(assembled, layout.chunk_bytes)
        entry_ready, chain_done = self._entry_lookup(chunk, now, depth)
        own_check = max(hashed, entry_ready)
        self.engine.finish_check(slot, own_check)
        return data_ready, max(own_check, chain_done)

    def _entry_lookup(self, chunk: int, now: int, depth: int) -> Tuple[int, int]:
        """Locate the tree entry; returns (value_ready, chain_done)."""
        location = self.layout.hash_location(chunk)
        if location.in_secure_memory:
            return now, now
        lookup = self.l2.access(location.address, write=False, kind="hash")
        if lookup.hit:
            self.stats.add("hash_l2_hits")
            ready = now + self.config.l2.latency_cycles
            return ready, ready
        self.stats.add("hash_l2_misses")
        if depth >= MAX_CASCADE_DEPTH:  # pragma: no cover - guard
            self.stats.add("cascade_depth_overflows")
            return now, now
        parent_ready, parent_chain = self._fetch_and_verify_chunk(
            location.parent_chunk, now, needed=None, write=False, depth=depth + 1
        )
        return parent_ready, parent_chain

    # -- write-back path ----------------------------------------------------------------

    def handle_writeback(self, victim_address: int, now: int, depth: int = 0) -> None:
        """Assemble the chunk, flush all its dirt, re-hash, update the entry."""
        self.stats.add("writebacks")
        layout = self.layout
        chunk = layout.chunk_at_address(victim_address)
        base = layout.chunk_address(chunk)
        slot, start = self.engine.begin_writeback(now)

        assembled = start
        dirty_blocks = 1  # the victim itself
        for index in range(self.blocks_per_chunk):
            block_address = base + index * self.block_bytes
            if block_address == self.l2.block_address(victim_address):
                continue  # data travelled with the eviction
            if self.l2.probe(block_address) and not self.l2.is_dirty(block_address):
                # clean in cache: equals memory, participates for free
                self.stats.add("chunk_blocks_from_cache")
                continue
            if self.l2.is_dirty(block_address):
                dirty_blocks += 1
                self.l2.mark_clean(block_address)
            # uncached or dirty: the memory image must come over the bus
            self.stats.add("chunk_assembly_reads")
            assembled = max(assembled,
                            self.memory.read(start, self.block_bytes,
                                             kind="hash"))
        # one hash to check the old image, one to generate the new entry
        checked = self.engine.hash_op(assembled, layout.chunk_bytes)
        entry_ready, _ = self._entry_lookup(chunk, start, depth)
        rehashed = self.engine.hash_op(max(assembled, checked, entry_ready),
                                       layout.chunk_bytes)
        for _ in range(dirty_blocks):
            self.stats.add("dirty_block_writes")
            self.memory.write(start, self.block_bytes, kind="writeback")
        self.engine.finish_writeback(slot, rehashed)
        self._update_entry(chunk, now, depth)

    def _update_entry(self, chunk: int, now: int, depth: int) -> None:
        """Write the new entry into the parent through the L2 (Write op)."""
        location = self.layout.hash_location(chunk)
        if location.in_secure_memory:
            return
        lookup = self.l2.access(location.address, write=True, kind="hash")
        if lookup.hit:
            self.stats.add("hash_l2_hits")
            return
        self.stats.add("hash_l2_misses")
        if depth >= MAX_CASCADE_DEPTH:
            self.stats.add("cascade_depth_overflows")
            return
        slot, start = self.engine.begin_check(now)
        _, parent_done = self._fetch_and_verify_chunk(
            location.parent_chunk, start, needed=None, write=False,
            depth=depth + 1,
        )
        self.engine.finish_check(slot, parent_done)
        # dirty the entry's block now that the parent chunk is resident
        self.l2.access(location.address, write=True, kind="hash")
