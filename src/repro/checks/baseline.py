"""Baseline record/diff for ``repro check --baseline FILE``.

Lets a new rule land *warn-only* for one PR: the first run records every
current finding to a JSON file; later runs fail only on findings **not**
in the baseline, and report baseline entries that no longer fire (so the
file can be shrunk and eventually deleted — the intended end state: a
baseline is a ratchet toward zero, not a parking lot).

Findings are matched by ``(path, rule, message)`` and deliberately *not*
by line, so unrelated edits shifting code up or down do not resurrect a
baselined finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set, Tuple

from .findings import Finding

_Key = Tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.path, finding.rule, finding.message)


def record_baseline(findings: List[Finding], path: Path) -> int:
    """Write the current findings as the baseline; returns the count."""
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = json.dumps({"version": 1, "findings": entries}, indent=2,
                         sort_keys=True)
    path.write_text(payload + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path) -> Set[_Key]:
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", []) if isinstance(data, dict) else []
    keys: Set[_Key] = set()
    for entry in entries:
        if isinstance(entry, dict):
            keys.add((str(entry.get("path", "")),
                      str(entry.get("rule", "")),
                      str(entry.get("message", ""))))
    return keys


def diff_baseline(findings: List[Finding], path: Path
                  ) -> Tuple[List[Finding], List[_Key]]:
    """``(new_findings, stale_entries)`` against the baseline at ``path``.

    *new* findings are not in the baseline (these should fail the run);
    *stale* entries are baselined findings that no longer fire (these
    should be pruned from the file).
    """
    baseline = load_baseline(path)
    new = [f for f in findings if _key(f) not in baseline]
    current = {_key(f) for f in findings}
    stale = sorted(baseline - current)
    return new, stale
