"""Finding records and output formats for ``python -m repro check``.

Every pass emits :class:`Finding` values — one per violation, carrying a
stable rule id, the file and line, and a human message.  :data:`RULES` is
the single registry of rule ids: waiver validation, ``--list-rules`` and
the docs all read from it, so a pass cannot emit (and a waiver cannot
name) a rule that is not documented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

#: rule id -> one-line description (the full reference lives in
#: ``docs/static_analysis.md``).
RULES = {
    "det-global-random": (
        "call into the shared module-level random generator; draw from a "
        "seeded random.Random instance threaded through the constructor"
    ),
    "det-unseeded-rng": (
        "random.Random() constructed without a seed argument; results "
        "would differ across processes"
    ),
    "det-wallclock": (
        "wall-clock source (time.time, datetime.now, ...) in simulation "
        "code; only monotonic duration clocks (time.perf_counter / "
        "time.monotonic) are allowed, for cost accounting"
    ),
    "det-entropy": (
        "OS entropy source (os.urandom, secrets, uuid, SystemRandom) in "
        "simulation code"
    ),
    "det-builtin-hash": (
        "builtin hash() call; str/bytes hashes vary with PYTHONHASHSEED — "
        "use a stable hash (e.g. workloads.generators._stable_hash)"
    ),
    "det-set-iteration": (
        "iteration over a set, whose order varies with PYTHONHASHSEED; "
        "wrap in sorted(...) or restructure"
    ),
    "det-local-import": (
        "import of an RNG/entropy module inside a function body; import "
        "at module level so the dependency is visible to this checker"
    ),
    "det-numpy-random": (
        "numpy.random call in simulation code; the kernel backends are "
        "pure column arithmetic and must not draw randomness"
    ),
    "det-numpy-sum": (
        "numpy reduction (sum/mean/prod/...) without an explicit dtype= "
        "in a numpy-importing module; the accumulator dtype follows the "
        "input dtype, so results are not bit-stable across backends"
    ),
    "snap-missing-field": (
        "attribute mutated on the warm path but neither captured by "
        "snapshot()/snapshot_state() nor on the counter-exclusion "
        "allowlist; warm-shared sweep cells would silently diverge"
    ),
    "snap-no-snapshot": (
        "class has warm-path entry points but no snapshot()/"
        "snapshot_state() method anywhere in its bases"
    ),
    "sym-counter-asymmetry": (
        "counter-free warm_* twin mutates a different functional-state "
        "attribute set than its counted counterpart (beyond the declared "
        "counter attributes)"
    ),
    "api-missing-method": (
        "scheme registered in repro.schemes does not implement the full "
        "SchemeAPI surface"
    ),
    "api-signature-mismatch": (
        "override signature differs from the SchemeAPI declaration "
        "(argument names, defaults, or arity)"
    ),
    "api-private-crossmodule": (
        "underscore-private method/function called across a module "
        "boundary; promote it to public API or move the caller"
    ),
    "lock-unguarded-shared": (
        "thread-shared mutable attribute accessed outside the lock that "
        "guards it elsewhere (or written with no lock at all in a "
        "lock-owning or thread-spawning class)"
    ),
    "lock-order-cycle": (
        "lock acquisition participates in a may-acquire cycle (two locks "
        "taken in opposite orders, or a non-reentrant lock re-acquired "
        "through a call chain) — a deadlock waiting for the right timing"
    ),
    "lock-blocking-call": (
        "blocking operation (HTTP round trip, thread join, subprocess, "
        "sleep, event wait) invoked while holding a lock; every other "
        "thread needing that lock stalls behind the I/O"
    ),
    "thread-unjoined": (
        "thread started but never joined on any shutdown path; daemon "
        "threads die mid-write on interpreter exit and non-daemon "
        "threads hang it"
    ),
    "wire-endpoint-unhandled": (
        "client request targets an endpoint/verb no server handler "
        "routes; the call can only ever produce a 404"
    ),
    "wire-endpoint-unused": (
        "server handler routes an endpoint no client ever requests; "
        "dead protocol surface (or a client that silently stopped "
        "calling it)"
    ),
    "wire-field-unread": (
        "client sends a payload field no server handler for that verb "
        "reads; the value silently falls on the floor"
    ),
    "wire-field-unsent": (
        "server handler reads a payload field no client sends; the "
        "handler only ever sees its fallback default"
    ),
    "wire-status-unhandled": (
        "server sends a status code no client comparison distinguishes "
        "from success; the client would misread the response"
    ),
    "wire-spec-drift": (
        "X_to_dict / X_from_dict key mismatch: a key written is never "
        "read back (or read but never written), so wire round-trips "
        "silently drop data"
    ),
    "waiver-missing-justification": (
        "repro-check waiver without a `-- <justification>` trailer; "
        "unjustified waivers do not suppress findings"
    ),
    "waiver-unknown-rule": (
        "repro-check waiver names a rule id that does not exist"
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule fired, and why."""

    path: str
    line: int
    rule: str
    message: str

    def text(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def github(self) -> str:
        """GitHub Actions workflow-command form (inline PR annotation)."""
        # the message payload must stay on one line for ::error parsing
        message = " ".join(self.message.split())
        return (f"::error file={self.path},line={self.line},"
                f"title={self.rule}::{message}")


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    """Render findings for the CLI; ``fmt`` is ``text`` or ``github``."""
    rows: List[str] = []
    for finding in findings:
        rows.append(finding.github() if fmt == "github" else finding.text())
    return "\n".join(rows)
