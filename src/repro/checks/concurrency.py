"""Lock-discipline pass: shared mutable state must stay under its lock.

The distributed layer (``store.py``/``dispatch.py``) is classic
shared-state threading: a :class:`LeaseBoard` mutated by every
``ThreadingHTTPServer`` handler thread, store counters bumped from
handler and worker contexts, heartbeat daemon threads.  This pass
rebuilds that ownership picture statically:

* **which classes are concurrent** — a class is in scope when it owns a
  lock (``self._x = threading.Lock()/RLock()`` — or the ``tsan``
  factories ``new_lock()``/``new_rlock()``), spawns a thread at one of
  its own methods (``threading.Thread(target=self._run)``), or carries
  ``threading.local`` state (the author already declared it
  thread-shared);
* **which attributes are shared-mutable** — attributes the class itself
  creates that are *written* outside ``__init__``/``__post_init__``
  (direct assignment, augmented assignment, ``del``, subscript stores,
  or calls to known container mutators like ``append``/``pop``/
  ``setdefault``).  Synchronization primitives themselves (locks,
  events, threads, ``threading.local``) are exempt: they are their own
  guard;
* **which lock owns an attribute** — the locks held at its write sites
  (``with self._lock:`` regions, propagated through underscore-private
  helpers that are only ever called with the lock held, e.g.
  ``LeaseBoard._expire``).

Any access (read or write) to a shared-mutable attribute outside its
owning lock is a ``lock-unguarded-shared`` finding; genuinely benign
lock-free paths carry a ``# repro-check: disable=...`` waiver with a
justification.  ``BaseHTTPRequestHandler`` subclasses are exempt from
*self*-attribute checking — a handler instance is per-request and
thread-confined — but the board/store objects they reach are exactly
the lock-owning classes this pass covers (and ``REPRO_TSAN=1`` checks
the cross-object reach at runtime).

Deliberate under-approximation: a method call on an attribute counts as
a write only when its name is a known container mutator.  Objects that
synchronize themselves (a store's ``record_cost``, a channel's
``request``) would otherwise taint every caller; the runtime sanitizer
covers what this loses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .astutils import ClassInfo, ModuleInfo, ProjectIndex
from .findings import Finding

#: threading/queue constructions that make an attribute a sync primitive
#: (its own guard) rather than plain shared data.
SYNC_TYPES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Thread", "Timer", "local",
    "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue",
})

#: the subset that guards *other* state (``with self.X:`` regions).
LOCK_TYPES = frozenset({"Lock", "RLock"})

#: tsan factory names (repro.checks.tsan) -> the lock kind they build.
LOCK_FACTORIES = {"new_lock": "Lock", "new_rlock": "RLock"}

#: method names that mutate their receiver (the write-detection inverse
#: of ``astutils.PURE_METHODS``).
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "appendleft", "popleft", "set",
})

#: constructor method names whose writes are publication-safe (the
#: object is not yet visible to other threads).
INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _sync_kind(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    """``threading.X()`` / from-imported ``X()`` / tsan factory -> kind."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        target = module.module_aliases.get(func.value.id)
        if target in ("threading", "queue") and func.attr in SYNC_TYPES:
            return func.attr
        return None
    if isinstance(func, ast.Name):
        if func.id in LOCK_FACTORIES:
            return LOCK_FACTORIES[func.id]
        imported = module.from_imports.get(func.id)
        if imported is not None:
            source, original = imported
            if source in ("threading", "queue") and original in SYNC_TYPES:
                return original
    return None


@dataclass
class Access:
    """One touch of ``self.<attr>`` with its syntactic lock context."""

    attr: str
    line: int
    write: bool
    held: FrozenSet[str]


@dataclass
class Acquire:
    """One ``with self.<lock>:`` entry, with the locks already held."""

    lock: str
    line: int
    held: FrozenSet[str]


@dataclass
class Blocking:
    """A call that can block (I/O, join, sleep) and its lock context."""

    what: str
    line: int
    held: FrozenSet[str]


@dataclass
class OwnCall:
    """A same-class method call and the locks held at the call site."""

    callee: str
    line: int
    held: FrozenSet[str]


@dataclass
class MethodFacts:
    """Everything the concurrency passes need about one method body."""

    name: str
    accesses: List[Access] = field(default_factory=list)
    acquires: List[Acquire] = field(default_factory=list)
    blocking: List[Blocking] = field(default_factory=list)
    calls: List[OwnCall] = field(default_factory=list)


#: blocking call names recognized on any receiver (network round trips).
_BLOCKING_ATTRS = frozenset({
    "request", "getresponse", "urlopen", "connect",
    "create_connection", "recv", "accept", "serve_forever",
})

#: (module, function) pairs that block when called as bare names.
_BLOCKING_IMPORTS = {
    ("time", "sleep"), ("concurrent.futures", "wait"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("socket", "create_connection"),
}

#: dotted module calls that block (``time.sleep(...)``, ``subprocess.*``).
_BLOCKING_MODULES = {"subprocess"}


class _FactWalker:
    """One pass over a method body, tracking ``with self.<lock>:`` depth.

    Mirrors the shape of :class:`astutils._MethodAnalyzer` but carries
    the held-lock context through every statement, classifies accesses
    as read vs write, and records acquisitions/blocking calls for the
    ordering pass.  Only direct ``self.<attr>`` chains are tracked —
    local aliases are a read at the binding site, which is all the
    discipline check needs.
    """

    def __init__(self, module: ModuleInfo, lock_attrs: Set[str],
                 class_methods: Set[str], method_name: str):
        self.module = module
        self.lock_attrs = lock_attrs
        self.class_methods = class_methods
        self.facts = MethodFacts(method_name)
        self.held: Tuple[str, ...] = ()
        #: local Name -> sync kind, for ``t = threading.Thread(...)``.
        self.local_sync: Dict[str, str] = {}

    # -- recording ---------------------------------------------------------

    def _held(self) -> FrozenSet[str]:
        return frozenset(self.held)

    def _access(self, attr: str, line: int, write: bool) -> None:
        self.facts.accesses.append(Access(attr, line, write, self._held()))

    def _blocking(self, what: str, line: int) -> None:
        self.facts.blocking.append(Blocking(what, line, self._held()))

    # -- expressions -------------------------------------------------------

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    def _attr_root(self, node: ast.AST) -> Optional[ast.Attribute]:
        """The ``self.<attr>`` at the base of an attr/subscript chain,
        unwrapping through calls (``self.x.setdefault(...)['k']``)."""
        while True:
            if isinstance(node, (ast.Attribute, ast.Subscript)) \
                    and self._self_attr(node) is None:
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            else:
                break
        if isinstance(node, ast.Attribute) \
                and self._self_attr(node) is not None:
            return node
        return None

    def _expr(self, node: Optional[ast.AST]) -> None:
        """Record reads/calls in an expression tree (value position)."""
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        attr = self._self_attr(node)
        if attr is not None:
            self._access(attr, node.lineno, write=False)
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child)

    def _dotted(self, node: ast.AST) -> Optional[Tuple[str, ...]]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        return None

    def _is_blocking_call(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            imported = self.module.from_imports.get(func.id)
            if imported in _BLOCKING_IMPORTS:
                return ".".join(imported)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        dotted = self._dotted(func)
        if dotted is not None and len(dotted) >= 2:
            target = self.module.module_aliases.get(dotted[0])
            if target in _BLOCKING_MODULES:
                return f"{target}.{func.attr}"
            if target == "time" and func.attr == "sleep":
                return "time.sleep"
        if func.attr in _BLOCKING_ATTRS:
            return func.attr
        if func.attr in ("join", "wait"):
            # only when the receiver is identifiably a thread/event —
            # ``", ".join(...)`` and ``os.path.join`` must not trip this
            receiver = func.value
            attr = self._self_attr(receiver)
            if attr is not None:
                return func.attr  # self-attr sync receivers filtered later
            if isinstance(receiver, ast.Name) \
                    and receiver.id in self.local_sync:
                return func.attr
        return None

    def _call(self, node: ast.Call) -> None:
        func = node.func
        blocking = self._is_blocking_call(node)
        if blocking is not None:
            receiver_attr = None
            if isinstance(func, ast.Attribute):
                receiver_attr = self._self_attr(func.value)
            # `.join`/`.wait` on self attrs is resolved by the caller
            # (it knows which attrs are threads/events); tag it
            self._blocking(blocking if receiver_attr is None
                           else f"{blocking}@{receiver_attr}", node.lineno)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                # ``self.X(...)``: a method call, or invoking a callable
                # stored in a data attribute (``self.clock()`` — a read)
                if func.attr in self.class_methods:
                    self.facts.calls.append(
                        OwnCall(func.attr, node.lineno, self._held()))
                else:
                    self._access(func.attr, node.lineno, write=False)
            else:
                attr = self._self_attr(receiver)
                if attr is not None:
                    # ``self.<attr>.method(...)``
                    self._access(attr, node.lineno,
                                 write=func.attr in MUTATING_METHODS)
                else:
                    root = self._attr_root(receiver)
                    if root is not None:
                        self._access(root.attr, node.lineno,
                                     write=func.attr in MUTATING_METHODS)
                    else:
                        self._expr(receiver)
        elif isinstance(func, ast.Name) and func.id in self.class_methods:
            self.facts.calls.append(
                OwnCall(func.id, node.lineno, self._held()))
        for arg in node.args:
            self._expr(arg)
        for keyword in node.keywords:
            self._expr(keyword.value)

    # -- write targets -----------------------------------------------------

    def _target(self, target: ast.AST, line: int) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._access(attr, line, write=True)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = self._attr_root(target)
            if root is not None:
                self._access(root.attr, line, write=True)
            else:
                self._expr(target.value)
            if isinstance(target, ast.Subscript):
                self._expr(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, line)
        elif isinstance(target, ast.Starred):
            self._target(target.value, line)
        # plain Name targets: local binding, nothing shared touched

    def _bind_local(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        """Track ``t = threading.Thread(...)`` for `.join` detection."""
        if isinstance(target, ast.Name) and value is not None:
            kind = _sync_kind(self.module, value)
            if kind is not None:
                self.local_sync[target.id] = kind

    # -- statements --------------------------------------------------------

    def run(self, fn: ast.FunctionDef) -> MethodFacts:
        self._block(fn.body)
        return self.facts

    def _block(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._statement(statement)

    def _with(self, stmt: ast.With) -> None:
        pushed = 0
        for item in stmt.items:
            attr = self._self_attr(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                self.facts.acquires.append(
                    Acquire(attr, item.context_expr.lineno, self._held()))
                self.held = self.held + (attr,)
                pushed += 1
            else:
                self._expr(item.context_expr)
        self._block(stmt.body)
        if pushed:
            self.held = self.held[:-pushed]

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._target(target, stmt.lineno)
                self._bind_local(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            self._expr(stmt.value)
            self._target(stmt.target, stmt.lineno)
            self._bind_local(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._target(stmt.target, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, stmt.lineno)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            self._with(stmt)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                self._expr(child)
        # nested defs/imports/pass: nothing shared


# -- the per-class concurrency model ---------------------------------------


@dataclass
class ClassModel:
    """The concurrency shape of one class (over its full MRO)."""

    cls: ClassInfo
    #: attribute -> sync kind, from init-method constructions.
    sync_attrs: Dict[str, str] = field(default_factory=dict)
    #: attributes the class itself ever assigns (incl. dataclass fields).
    known_attrs: Set[str] = field(default_factory=set)
    #: methods that run on a spawned thread (Thread targets, run()).
    entry_methods: Set[str] = field(default_factory=set)
    #: method name -> facts, for every MRO-defined method.
    facts: Dict[str, MethodFacts] = field(default_factory=dict)
    #: method name -> (defining module, function node).
    defined_in: Dict[str, Tuple[ModuleInfo, ast.FunctionDef]] = \
        field(default_factory=dict)
    #: method name -> locks guaranteed held on entry (propagated from
    #: call sites for underscore-private helpers).
    entry_held: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    handler_class: bool = False

    @property
    def lock_attrs(self) -> Set[str]:
        return {attr for attr, kind in self.sync_attrs.items()
                if kind in LOCK_TYPES}

    def reentrant(self, lock: str) -> bool:
        return self.sync_attrs.get(lock) == "RLock"


def _is_self_method(fn: ast.FunctionDef) -> bool:
    args = fn.args.posonlyargs + fn.args.args
    return bool(args) and args[0].arg == "self"


def build_class_model(index: ProjectIndex, cls: ClassInfo) -> ClassModel:
    """Collect sync attributes, thread entries and per-method facts.

    Memoized on the index: the discipline, ordering and unjoined checks
    all consume the same model, and the fact walk is the expensive part
    of these passes.
    """
    cache: Dict[int, ClassModel] = index.__dict__.setdefault(
        "_concurrency_models", {})
    cached = cache.get(id(cls))
    if cached is not None:
        return cached
    model = ClassModel(cls)
    cache[id(cls)] = model
    mro = index.mro(cls)
    model.handler_class = any("BaseHTTPRequestHandler" in c.bases
                              or c.name == "BaseHTTPRequestHandler"
                              for c in mro)
    thread_subclass = any("Thread" in c.bases for c in mro)
    method_names = index.all_method_names(cls)

    # dataclass-style class-level fields are constructor-assigned attrs
    for candidate in mro:
        for node in candidate.node.body:
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                model.known_attrs.add(node.target.id)

    for name in method_names:
        found = index.find_method(cls, name)
        if found is None:
            continue
        owner, fn = found
        if not _is_self_method(fn):
            continue
        model.defined_in[name] = (owner.module, fn)

    # first sweep: direct self assignments (sync detection needs the
    # full attr universe before facts are interpreted).  Init methods
    # are taken from EVERY class in the MRO, not just the resolving
    # one — a subclass __init__ shadows the base's in `defined_in`,
    # but `super().__init__()` still runs it, and that is where base
    # classes construct their locks.
    sweep: List[Tuple[str, ModuleInfo, ast.FunctionDef]] = [
        (name, module, fn)
        for name, (module, fn) in model.defined_in.items()
    ]
    seen_inits = {id(fn) for name, _m, fn in sweep
                  if name in INIT_METHODS}
    for candidate in mro:
        for init_name in INIT_METHODS:
            fn = candidate.methods.get(init_name)
            if fn is not None and id(fn) not in seen_inits \
                    and _is_self_method(fn):
                seen_inits.add(id(fn))
                sweep.append((init_name, candidate.module, fn))
    for name, module, fn in sweep:
        in_init = name in INIT_METHODS
        for node in ast.walk(fn):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    model.known_attrs.add(target.attr)
                    if in_init and value is not None:
                        kind = _sync_kind(module, value)
                        if kind is not None:
                            model.sync_attrs[target.attr] = kind
            # thread entry points: Thread(target=self.<m>) anywhere
            if isinstance(node, ast.Call) \
                    and _sync_kind(module, node) in ("Thread", "Timer"):
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        target_attr = keyword.value
                        if (isinstance(target_attr, ast.Attribute)
                                and isinstance(target_attr.value, ast.Name)
                                and target_attr.value.id == "self"
                                and target_attr.attr in method_names):
                            model.entry_methods.add(target_attr.attr)

    if thread_subclass and "run" in model.defined_in:
        model.entry_methods.add("run")
    if model.handler_class:
        model.entry_methods.update(model.defined_in)

    lock_attrs = model.lock_attrs
    for name, (module, fn) in model.defined_in.items():
        walker = _FactWalker(module, lock_attrs,
                             set(method_names), name)
        model.facts[name] = walker.run(fn)

    _propagate_entry_locks(model)
    return model


def _propagate_entry_locks(model: ClassModel) -> None:
    """Locks guaranteed held on entry to underscore-private helpers.

    A helper only ever called under ``with self._lock:`` (like
    ``LeaseBoard._expire``) inherits the lock; the intersection over
    call sites keeps this sound when one caller is lock-free.  Public
    methods always assume a lock-free external caller.  Iterated to a
    fixpoint so ``a -> _b -> _c`` chains propagate.
    """
    names = set(model.facts)
    model.entry_held = {name: frozenset() for name in names}
    for _ in range(len(names) + 1):
        changed = False
        for name in names:
            if not name.startswith("_") or name in INIT_METHODS:
                continue
            sites = [model.entry_held[caller] | call.held
                     for caller, facts in model.facts.items()
                     for call in facts.calls if call.callee == name]
            if not sites:
                continue
            combined: FrozenSet[str] = sites[0]
            for site in sites[1:]:
                combined = combined & site
            if combined != model.entry_held[name]:
                model.entry_held[name] = combined
                changed = True
        if not changed:
            break


def entry_closure(model: ClassModel) -> Set[str]:
    """Entry methods plus everything they transitively call in-class."""
    seen: Set[str] = set()
    queue = list(model.entry_methods)
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        facts = model.facts.get(name)
        if facts is not None:
            queue.extend(call.callee for call in facts.calls)
    return seen


# -- the discipline check --------------------------------------------------


def _shared_mutable_attrs(model: ClassModel) -> Set[str]:
    """Attributes written outside construction, minus sync primitives."""
    shared: Set[str] = set()
    for name, facts in model.facts.items():
        if name in INIT_METHODS:
            continue
        for access in facts.accesses:
            if access.write and access.attr in model.known_attrs \
                    and access.attr not in model.sync_attrs:
                shared.add(access.attr)
    return shared


def _effective_held(model: ClassModel, method: str,
                    held: FrozenSet[str]) -> FrozenSet[str]:
    return held | model.entry_held.get(method, frozenset())


def check_lock_discipline(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for cls in index.classes():
        model = build_class_model(index, cls)
        if model.handler_class:
            continue  # handler instances are per-request, thread-confined
        has_locks = bool(model.lock_attrs)
        concurrent = (has_locks or model.entry_methods
                      or "local" in model.sync_attrs.values())
        if not concurrent:
            continue
        shared = _shared_mutable_attrs(model)
        if not shared:
            continue
        closure = entry_closure(model)

        for attr in sorted(shared):
            # the owning lock: intersection of locks held at write sites
            writes = [(name, access)
                      for name, facts in model.facts.items()
                      if name not in INIT_METHODS
                      for access in facts.accesses
                      if access.attr == attr and access.write]
            reads = [(name, access)
                     for name, facts in model.facts.items()
                     if name not in INIT_METHODS
                     for access in facts.accesses
                     if access.attr == attr and not access.write]
            owning: Optional[FrozenSet[str]] = None
            for name, access in writes:
                held = _effective_held(model, name, access.held)
                owning = held if owning is None else (owning & held)
            if owning:
                # every access must hold the owning lock(s)
                for name, access in writes + reads:
                    held = _effective_held(model, name, access.held)
                    if not (held & owning):
                        _emit(findings, seen, model, name, access,
                              f"`self.{attr}` accessed without "
                              f"{_lock_names(owning)} which guards its "
                              f"writes elsewhere in {cls.name}")
            else:
                # no write is consistently guarded: in a concurrent
                # class that is a finding per unguarded write site
                has_sync = has_locks \
                    or "local" in model.sync_attrs.values()
                if not has_sync and not _crosses_thread(
                        model, attr, closure, writes, reads):
                    continue
                for name, access in writes:
                    held = _effective_held(model, name, access.held)
                    if not held:
                        _emit(findings, seen, model, name, access,
                              f"`self.{attr}` written with no lock held "
                              f"in {cls.name}, which "
                              + ("owns locks" if has_locks else
                                 "carries per-thread state" if has_sync
                                 else "runs its own threads"))
                if not has_sync:
                    for name, access in reads:
                        _emit(findings, seen, model, name, access,
                              f"`self.{attr}` read lock-free in "
                              f"{cls.name} while another thread "
                              f"mutates it")
    return sorted(findings)


def _crosses_thread(model: ClassModel, attr: str, closure: Set[str],
                    writes, reads) -> bool:
    """In a lock-free class: does the attr cross the thread boundary?"""
    touched_by_entry = any(name in closure for name, _ in writes + reads)
    touched_outside = any(name not in closure for name, _ in writes + reads)
    return touched_by_entry and touched_outside


def _lock_names(locks: FrozenSet[str]) -> str:
    return " / ".join(f"`self.{name}`" for name in sorted(locks))


def _emit(findings: List[Finding], seen: Set[Tuple[str, int, str]],
          model: ClassModel, method: str, access: Access,
          message: str) -> None:
    module, _fn = model.defined_in[method]
    key = (module.display, access.line, access.attr)
    if key in seen:
        return
    seen.add(key)
    findings.append(Finding(module.display, access.line,
                            "lock-unguarded-shared",
                            f"{message} (in `{method}`)"))
