"""Shared AST infrastructure for the ``repro check`` passes.

Two layers live here:

* a **project index** — every ``.py`` file parsed once, with classes,
  methods and a name-based MRO so passes can resolve inherited methods
  (e.g. a scheme's ``snapshot_state`` defined on ``TimingScheme``);
* a **mutation analyzer** — for one method, the set of ``self``
  attributes its body can mutate, with local-alias tracking so the hot
  loops' idiom (``ways = self._sets[index]; ways.insert(0, block)`` or
  ``l1d_warm = self.l1d.warm_access``) is attributed to the right
  attribute, plus the same-class methods it calls so passes can take a
  transitive closure over the warm path.

The analyzer deliberately over-approximates: a method call on an
attribute counts as a mutation unless its name is on
:data:`PURE_METHODS`.  For the snapshot-completeness pass a false
"mutation" of a snapshotted attribute is harmless, and a false mutation
of an unsnapshotted one surfaces as a finding to be allowlisted with a
justification — the safe failure direction for an integrity gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Method names the mutation analyzer treats as read-only.  Everything
#: else called on a tracked attribute counts as a potential mutation.
PURE_METHODS = frozenset({
    # snapshot/restore protocol reads
    "snapshot", "snapshot_state", "state", "getstate",
    # cache/TLB probes and metrics
    "probe", "is_dirty", "block_address", "miss_rate", "occupancy",
    "ratio", "as_dict", "summary",
    # container reads
    "get", "keys", "values", "items", "copy", "index", "count",
    # config/layout geometry (pure functions of construction parameters)
    "transfer_cycles", "hash_occupancy_cycles", "chunk_at_address",
    "hash_location", "chunk_address", "data_address", "earliest_free",
    "bandwidth_utilization", "bit_length",
    # spec/identity helpers
    "label", "normalized", "key", "build_config",
})


@dataclass
class ClassInfo:
    """One top-level class definition and its directly-defined methods."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: List[str]
    methods: Dict[str, ast.FunctionDef]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    #: path relative to the scan root, POSIX-style (fingerprint of scope).
    relkey: str
    #: path as reported in findings (repo-relative when possible).
    display: str
    tree: ast.Module
    lines: List[str]
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> imported module name ("random", "os.path", ...).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name) for from-imports.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def iter_py_files(root: Path,
                  exclude_parts: Iterable[str] = ()) -> List[Path]:
    """All ``.py`` files under ``root``, skipping excluded directories."""
    excluded = set(exclude_parts)
    files = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if excluded.intersection(relative.parts[:-1]):
            continue
        files.append(path)
    return files


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return str(path)


def load_module(path: Path, root: Optional[Path] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (never imports it)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    if root is not None and root in path.resolve().parents:
        relkey = path.resolve().relative_to(root).as_posix()
    else:
        relkey = path.name
    module = ModuleInfo(
        path=path,
        relkey=relkey,
        display=_display_path(path),
        tree=tree,
        lines=source.splitlines(),
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                module.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            module.classes[node.name] = ClassInfo(
                name=node.name, module=module, node=node,
                bases=bases, methods=methods,
            )
    return module


class ProjectIndex:
    """All parsed modules plus cross-module class/method resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.relkey: m for m in modules}
        self._by_class_name: Dict[str, List[ClassInfo]] = {}
        for module in modules:
            for cls in module.classes.values():
                self._by_class_name.setdefault(cls.name, []).append(cls)

    @classmethod
    def build(cls, paths: Sequence[Path],
              root: Optional[Path] = None) -> "ProjectIndex":
        return cls([load_module(path, root) for path in paths])

    def classes(self) -> Iterable[ClassInfo]:
        for module in self.modules.values():
            yield from module.classes.values()

    def resolve_class(self, name: str,
                      from_module: Optional[ModuleInfo] = None
                      ) -> Optional[ClassInfo]:
        """Resolve a class by name: same module first, else unique global."""
        if from_module is not None and name in from_module.classes:
            return from_module.classes[name]
        candidates = self._by_class_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Linearized bases by name lookup (cycle- and miss-tolerant)."""
        out: List[ClassInfo] = []
        seen: Set[int] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            out.append(current)
            for base in current.bases:
                resolved = self.resolve_class(base, current.module)
                if resolved is not None:
                    queue.append(resolved)
        return out

    def mro_names(self, cls: ClassInfo) -> Set[str]:
        return {c.name for c in self.mro(cls)}

    def find_method(self, cls: ClassInfo, name: str
                    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        for candidate in self.mro(cls):
            if name in candidate.methods:
                return candidate, candidate.methods[name]
        return None

    def all_method_names(self, cls: ClassInfo) -> Set[str]:
        names: Set[str] = set()
        for candidate in self.mro(cls):
            names.update(candidate.methods)
        return names


# -- mutation analysis -----------------------------------------------------------


@dataclass
class MethodEffects:
    """What one method body can do to ``self``."""

    #: attr -> (line of first mutation, method where it happened).
    mutations: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    #: same-class methods invoked (directly or through a local alias).
    own_calls: Set[str] = field(default_factory=set)


class _MethodAnalyzer:
    """Single linear walk over a method body, tracking local aliases."""

    def __init__(self, method_name: str, class_method_names: Set[str]):
        self.method_name = method_name
        self.class_methods = class_method_names
        self.effects = MethodEffects()
        #: local name -> self attributes it may alias.
        self.env: Dict[str, Set[str]] = {}
        #: local name -> same-class methods it may alias.
        self.own_alias: Dict[str, Set[str]] = {}

    # -- recording ----------------------------------------------------------------

    def record(self, attr: str, line: int) -> None:
        self.effects.mutations.setdefault(attr, (line, self.method_name))

    # -- expression analysis: returns the self-attr roots of a value ---------------

    def roots(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if node.attr in self.class_methods:
                    return set()
                return {node.attr}
            base = self.roots(node.value)
            if node.attr in PURE_METHODS:
                return set()
            return base
        if isinstance(node, ast.Subscript):
            self.roots(node.slice)
            return self.roots(node.value)
        if isinstance(node, ast.Call):
            self._call(node)
            return set()
        if isinstance(node, ast.BinOp):
            # `[0] * n`, `a + b`, `x % y` construct a fresh object for
            # built-in types — the result never aliases an operand, so
            # mutating it cannot reach tracked state.  (BoolOp and IfExp
            # stay in the generic branch: they *return* an operand.)
            self.roots(node.left)
            self.roots(node.right)
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for comp in node.generators:
                iter_roots = self.roots(comp.iter)
                self._bind_target(comp.target, iter_roots, set())
                for cond in comp.ifs:
                    self.roots(cond)
            for part in ("elt", "key", "value"):
                if hasattr(node, part):
                    self.roots(getattr(node, part))
            return set()
        # generic: union over child expressions (BinOp, BoolOp, Tuple, ...)
        combined: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                combined.update(self.roots(child))
        return combined

    def own_refs(self, node: Optional[ast.AST]) -> Set[str]:
        """Same-class methods an expression may evaluate to."""
        if isinstance(node, ast.Name):
            return set(self.own_alias.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and node.attr in self.class_methods):
                return {node.attr}
            return set()
        if isinstance(node, (ast.Tuple, ast.List)):
            refs: Set[str] = set()
            for element in node.elts:
                refs.update(self.own_refs(element))
            return refs
        return set()

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if func.attr in self.class_methods:
                    self.effects.own_calls.add(func.attr)
                elif (func.attr not in PURE_METHODS
                      and not func.attr.startswith("__")):
                    # calling a callable stored in a data attribute
                    self.record(func.attr, node.lineno)
            else:
                receiver_roots = self.roots(receiver)
                if (func.attr not in PURE_METHODS
                        and not func.attr.startswith("__")):
                    for attr in receiver_roots:
                        self.record(attr, node.lineno)
        elif isinstance(func, ast.Name):
            self.effects.own_calls.update(self.own_alias.get(func.id, ()))
            # a bound-method alias of a component mutates that component
            for attr in self.env.get(func.id, ()):
                self.record(attr, node.lineno)
        else:
            self.roots(func)
        for arg in node.args:
            self.roots(arg)
        for keyword in node.keywords:
            self.roots(keyword.value)

    # -- targets -------------------------------------------------------------------

    def _mutate_target(self, target: ast.AST, line: int) -> None:
        """An assignment *into* this target mutates which attributes?"""
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.record(target.attr, line)
            else:
                for attr in self.roots(target.value):
                    self.record(attr, line)
        elif isinstance(target, ast.Subscript):
            for attr in self.roots(target.value):
                self.record(attr, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutate_target(element, line)
        elif isinstance(target, ast.Starred):
            self._mutate_target(target.value, line)

    def _bind_target(self, target: ast.AST, roots: Set[str],
                     own: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(roots)
            self.own_alias[target.id] = set(own)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, roots, own)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, roots, own)
        else:
            self._mutate_target(target, getattr(target, "lineno", 0))

    def _assign(self, targets: Sequence[ast.AST],
                value: Optional[ast.AST], line: int) -> None:
        # element-wise for `a, b = self.x, self.y` style tuple assigns
        if (len(targets) == 1 and isinstance(targets[0], ast.Tuple)
                and isinstance(value, ast.Tuple)
                and len(targets[0].elts) == len(value.elts)):
            for target, element in zip(targets[0].elts, value.elts):
                self._assign([target], element, line)
            return
        roots = self.roots(value)
        own = self.own_refs(value)
        # a plain pure-method reference yields a fresh/read-only value
        if isinstance(value, ast.Attribute) and value.attr in PURE_METHODS:
            roots = set()
        for target in targets:
            if isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)):
                self._bind_target(target, roots, own)
            else:
                self._mutate_target(target, line)

    # -- statements ----------------------------------------------------------------

    def run(self, fn: ast.FunctionDef) -> MethodEffects:
        for arg in list(fn.args.posonlyargs) + list(fn.args.args):
            self.env.setdefault(arg.arg, set())
        self._block(fn.body)
        return self.effects

    def _block(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            self._assign([stmt.target], stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self._mutate_target(stmt.target, stmt.lineno)
            if isinstance(stmt.target, ast.Name):
                for attr in self.env.get(stmt.target.id, ()):
                    self.record(attr, stmt.lineno)
            self.roots(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.roots(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.roots(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.roots(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_roots = self.roots(stmt.iter)
            self._bind_target(stmt.target, iter_roots, self.own_refs(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                roots = self.roots(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, roots, set())
            self._block(stmt.body)
        elif isinstance(stmt, ast.Raise):
            self.roots(stmt.exc)
            self.roots(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self.roots(stmt.test)
            self.roots(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._mutate_target(target, stmt.lineno)
        # nested defs/imports/pass/etc: nothing to track


def method_effects(index: ProjectIndex, cls: ClassInfo,
                   method_name: str) -> Optional[MethodEffects]:
    """Effects of ``cls.method_name`` (resolved through the MRO)."""
    found = index.find_method(cls, method_name)
    if found is None:
        return None
    _, fn = found
    analyzer = _MethodAnalyzer(method_name, index.all_method_names(cls))
    return analyzer.run(fn)


def closure_mutations(index: ProjectIndex, cls: ClassInfo,
                      entries: Iterable[str]
                      ) -> Dict[str, Tuple[int, str]]:
    """Mutated self attributes over the same-class call closure of
    ``entries`` — what the snapshot and symmetry passes reason about."""
    mutations: Dict[str, Tuple[int, str]] = {}
    visited: Set[str] = set()
    queue = list(entries)
    while queue:
        name = queue.pop(0)
        if name in visited:
            continue
        visited.add(name)
        effects = method_effects(index, cls, name)
        if effects is None:
            continue
        for attr, where in effects.mutations.items():
            mutations.setdefault(attr, where)
        queue.extend(effects.own_calls)
    return mutations


def self_attribute_reads(fn: ast.FunctionDef) -> Set[str]:
    """Every ``self.<attr>`` mentioned anywhere in a method body."""
    reads: Set[str] = set()
    for node in ast.walk(fn):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            reads.add(node.attr)
    return reads


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None if the chain isn't Name-rooted."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
