"""Seeded determinism violations — parsed by the selftest, never run."""

import datetime
import os
import random
import time


def global_draw():
    return random.random()  # expect: det-global-random


def global_range():
    return random.randrange(10)  # expect: det-global-random


def unseeded():
    return random.Random()  # expect: det-unseeded-rng


def wallclock():
    return time.time()  # expect: det-wallclock


def wallclock_datetime():
    return datetime.datetime.now()  # expect: det-wallclock


def entropy():
    return os.urandom(8)  # expect: det-entropy


def seed_sensitive(tag):
    return hash(tag)  # expect: det-builtin-hash


def set_loop():
    pending = {"a", "b", "c"}
    for name in pending:  # expect: det-set-iteration
        print(name)


def set_comprehension(counters):
    return [n for n in set(counters)]  # expect: det-set-iteration


def local_import():
    import random as _random  # expect: det-local-import
    return _random


class PendingTracker:
    """Set-typed attribute iterated without an order: hash-seed bug."""

    def __init__(self):
        self.pending = set()

    def drain(self):
        for item in self.pending:  # expect: det-set-iteration
            print(item)
