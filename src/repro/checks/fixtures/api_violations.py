"""Seeded scheme-API conformance violations (parsed only).

This fixture carries its own ``TimingScheme`` and ``_SCHEMES`` registry
so the conformance pass resolves everything inside the fixture set."""


class TimingScheme:
    def __init__(self, config, l2, memory, engine, layout):
        self.config = config

    def handle_data_miss(self, address, now, is_store):
        raise NotImplementedError

    def handle_writeback(self, address, now):
        raise NotImplementedError

    def data_address(self, address):
        return address

    def snapshot_state(self):
        return ()


class HalfScheme(TimingScheme):  # expect: api-missing-method
    """Implements the miss path but leaves the writeback abstract."""

    def handle_data_miss(self, address, now, is_store):
        return now


class RenamedScheme(TimingScheme):
    """Renamed arguments break keyword call sites under one scheme."""

    def handle_data_miss(self, addr, now, write):  # expect: api-signature-mismatch
        return now

    def handle_writeback(self, address, now):
        return now


_SCHEMES = {
    "half": HalfScheme,
    "renamed": RenamedScheme,
}


def poke_private(thing):
    return thing._internal_step()  # expect: api-private-crossmodule
