"""Waiver syntax cases: one valid (suppresses), two invalid (do not)."""

import random


def justified():
    # repro-check: disable=det-global-random -- fixture: demonstrates a valid waiver covering the next line
    return random.random()


def missing_justification():
    return random.random()  # repro-check: disable=det-global-random  # expect: waiver-missing-justification,det-global-random


def unknown_rule():
    # repro-check: disable=det-no-such-rule -- fixture: rule id does not exist  # expect: waiver-unknown-rule
    return 1
