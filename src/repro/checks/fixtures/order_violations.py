"""Seeded lock-ordering / deadlock violations — parsed, never run."""

import threading
import time


class AbbaPair:
    """The classic ABBA deadlock: two locks taken in opposite orders."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.jobs = []
        self.results = []

    def forward(self):
        with self._a:
            with self._b:  # expect: lock-order-cycle
                self.jobs.append(1)

    def backward(self):
        with self._b:
            with self._a:  # expect: lock-order-cycle
                self.results.append(1)


class SleepyHolder:
    """Blocking operation reached while a lock is held."""

    def __init__(self):
        self._lock = threading.Lock()
        self.state = {}

    def tick(self):
        with self._lock:
            time.sleep(0.1)  # expect: lock-blocking-call
            self.state["t"] = 1


class Reacquirer:
    """Non-reentrant lock re-acquired through a same-class call chain."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, amount):
        with self._lock:
            self._bump(amount)  # expect: lock-order-cycle

    def _bump(self, amount):
        with self._lock:  # expect: lock-order-cycle
            self.total += amount


class FireAndForget:
    """Thread attribute started by one method, joined by none."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run, daemon=True)
        self.log = []

    def launch(self):
        self._worker.start()  # expect: thread-unjoined

    def _run(self):
        self.log.append("tick")


def run_batch(items):
    worker = threading.Thread(target=print, args=(items,))  # expect: thread-unjoined
    worker.start()
    return len(items)


def fire_anonymous(fn):
    threading.Thread(target=fn, daemon=True).start()  # expect: thread-unjoined
