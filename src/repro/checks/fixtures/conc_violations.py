"""Seeded lock-discipline violations — parsed by the selftest, never run."""

import threading


class SharedCounter:
    """All writes guarded by ``self._lock``; one read escapes it, and a
    second attribute is mutated with no lock at all."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.rate = 0.0

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        return self.count  # expect: lock-unguarded-shared

    def set_rate(self, value):
        self.rate = value  # expect: lock-unguarded-shared


class TwoLocks:
    """Consistently guarded writes, but one reader takes the wrong lock."""

    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()
        self.items = {}

    def put(self, key, value):
        with self._alpha:
            self.items[key] = value

    def evict(self, key):
        with self._alpha:
            self.items.pop(key, None)

    def wrong_lock_read(self, key):
        with self._beta:
            return self.items.get(key)  # expect: lock-unguarded-shared


class NoLockWorker:
    """Lock-free thread spawner whose results list crosses the thread
    boundary: mutated on the worker thread, harvested on the caller's."""

    def __init__(self):
        self.results = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()

    def _run(self):
        self.results.append(1)  # expect: lock-unguarded-shared

    def harvest(self):
        out = list(self.results)  # expect: lock-unguarded-shared
        self.results.clear()  # expect: lock-unguarded-shared
        return out

    def stop(self):
        self._thread.join()
