"""Seeded wire-protocol drift — client/server halves on purpose out of
sync.  Parsed by the selftest, never run."""

import json
from http.server import BaseHTTPRequestHandler


class MiniHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        parts = self.path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "jobs":
            job = parts[1]
            if job == "gone":
                self.send_json(302, {"moved": True})  # expect: wire-status-unhandled
                return
            self.send_json(200, {"job": job})
            return
        if parts[0] == "queue" and parts[1:] == ["drain"]:  # expect: wire-endpoint-unused
            self.send_json(200, {"drained": True})
            return
        if parts == ["metrics", "live"]:  # expect: wire-endpoint-unused
            self.send_json(200, {"up": True})
            return
        self.send_json(404, {"error": "no route"})

    def do_POST(self):
        parts = self.path.strip("/").split("/")
        payload = json.loads(self.read_body())
        if len(parts) == 1 and parts[0] == "jobs":
            name = payload.get("name")
            retries = payload.get("retries", 0)  # expect: wire-field-unsent
            self.send_json(201, {"queued": name, "retries": retries})
            return
        self.send_json(404, {"error": "no route"})

    def read_body(self):
        length = int(self.headers.get("Content-Length", 0))
        return self.rfile.read(length)

    def send_json(self, code, obj):
        self.send_response(code)
        self.end_headers()
        self.wfile.write(json.dumps(obj).encode("utf-8"))


class MiniClient:
    def __init__(self, channel):
        self.channel = channel

    def fetch(self, job_id):
        response = self.channel.request("GET", f"/jobs/{job_id}")
        if response.status == 404:
            return None
        if response.status >= 400:
            raise RuntimeError("coordinator error")
        return response

    def submit(self, name, priority):
        body = {"name": name,
                "priority": priority}  # expect: wire-field-unread
        return self.channel.request("POST", "/jobs", body)

    def cancel(self, job_id):
        return self.channel.request(
            "DELETE", f"/jobs/{job_id}")  # expect: wire-endpoint-unhandled


def job_to_dict(job):
    return {"id": job.id,
            "priority": job.priority,  # expect: wire-spec-drift
            "state": job.state}


def job_from_dict(data):
    return {"id": data["id"],
            "state": data.get("state", "new"),
            "retries": data.get("retries", 0)}  # expect: wire-spec-drift
