"""Fixture files for the ``repro check`` self-test.

These modules are **parsed, never imported** — they contain deliberate
violations, one per ``# expect: <rule[,rule]>`` annotation, and the
self-test (``python -m repro check --selftest``) asserts the checker
reports exactly those (file, line, rule) triples and nothing else.
The default ``repro check`` run excludes this directory.
"""
