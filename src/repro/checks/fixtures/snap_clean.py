"""Allowlist negative case (zero expects): a class named ``CacheSim``
rebinding its counter alias on the warm path exactly like the real one.
The counter-exclusion allowlist covers ``_counters``, so the snapshot
pass stays silent — proof the allowlist keys on the class name."""


class CacheSim:
    def __init__(self):
        self._sets = [[] for _ in range(4)]
        self.stats = {}
        self._counters = self.stats

    def warm_access(self, address):
        ways = self._sets[address % 4]
        ways.insert(0, address)
        self._counters = {}

    def divert_counters(self, on):
        self._counters = {} if on else self.stats

    def snapshot(self):
        return ([list(ways) for ways in self._sets], dict(self.stats))

    def restore(self, state):
        self._sets = [list(ways) for ways in state[0]]
        self.stats.clear()
        self.stats.update(state[1])
