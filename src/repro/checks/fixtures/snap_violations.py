"""Seeded snapshot-completeness violations (parsed only)."""


class LeakyCache:
    """Mutates ``_touched`` on the warm path but never snapshots it —
    the exact bug class that corrupts warm-shared sweep cells."""

    def __init__(self):
        self._sets = [0, 0, 0, 0]
        self._touched = 0
        self.stats = {}

    def warm_access(self, address):
        self._sets[address % 4] = address
        self._touched += 1  # expect: snap-missing-field

    def snapshot(self):
        return (list(self._sets), dict(self.stats))

    def restore(self, state):
        self._sets = list(state[0])
        self.stats = dict(state[1])


class Snapshotless:  # expect: snap-no-snapshot
    """Warm-path entry points with no snapshot protocol at all."""

    def __init__(self):
        self._lines = {}

    def warm_fill(self, address):
        self._lines[address] = True
