"""Clean determinism patterns — the negative cases (zero expects)."""

import random
import time


class SeededStream:
    """The idiom the lint demands: an injected, explicitly seeded RNG."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.pending = set()

    def draw(self):
        return self.rng.random()

    def ordered_drain(self):
        return [item for item in sorted(self.pending)]

    def _internal_step(self):
        return self.rng.getrandbits(8)


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
