"""Seeded numpy-determinism violations (parsed only)."""

import numpy as np


def jitter(column):
    noise = np.random.rand(len(column))  # expect: det-numpy-random
    return column + noise


def loose_total(mask):
    return mask.sum()  # expect: det-numpy-sum


def loose_module_total(column):
    return np.sum(column)  # expect: det-numpy-sum


def exact_total(mask, column):
    # the clean spellings: count_nonzero, or a pinned accumulator dtype
    return (int(np.count_nonzero(mask))
            + int(np.sum(column, dtype=np.uint64)))
