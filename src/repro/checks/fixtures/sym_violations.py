"""Seeded counter-symmetry violations (parsed only)."""


class SkewedTLB:
    """``warm_access`` forgets the recency-order update its counted twin
    performs — a warmed TLB would evict differently than a measured one."""

    def __init__(self):
        self._entries = {}
        self._order = []
        self._counters = {}
        self.stats = {}

    def access(self, vpn):
        self._entries[vpn] = True
        self._order.append(vpn)
        self._counters["hits"] = self._counters.get("hits", 0) + 1

    def warm_access(self, vpn):  # expect: sym-counter-asymmetry
        self._entries[vpn] = True

    def snapshot(self):
        return (dict(self._entries), list(self._order),
                dict(self._counters), dict(self.stats))

    def restore(self, state):
        self._entries = dict(state[0])
        self._order = list(state[1])
        self._counters = dict(state[2])
        self.stats = dict(state[3])


class LossyCore:
    """``run_packed`` forgets the redirect update its object twin
    performs — the packed fast path would schedule fetches differently
    than the oracle, breaking bit-identity (the ``_packed`` suffix
    pairing rule)."""

    def __init__(self):
        self._redirect = 0
        self._retired = []
        self.stats = {}

    def run(self, instructions):
        for instruction in instructions:
            self._retired.append(instruction)
            self._redirect = instruction
            self.stats["instructions"] = self.stats.get("instructions", 0) + 1

    def run_packed(self, chunks):  # expect: sym-counter-asymmetry
        for chunk in chunks:
            for instruction in chunk:
                self._retired.append(instruction)


class DriftingCore:
    """``run_vec`` forgets the fetch-line carry its packed oracle
    maintains — vectorized chunks would re-fetch the first line (the
    ``_vec`` suffix rule, pairing against ``run_packed`` first)."""

    def __init__(self):
        self._retired = []
        self._fetch_line = -1
        self.stats = {}

    def run_packed(self, chunks):
        for chunk in chunks:
            for instruction in chunk:
                self._retired.append(instruction)
                self._fetch_line = instruction

    def run_vec(self, chunks):  # expect: sym-counter-asymmetry
        for chunk in chunks:
            for instruction in chunk:
                self._retired.append(instruction)


class SkewedBatchedCache:
    """``access_batched`` forgets the dirty-bit update its per-row twin
    performs (the ``_batched`` suffix rule, falling back to ``access``
    when no ``access_packed`` exists)."""

    def __init__(self):
        self._ways = []
        self._dirty = {0}
        self._counters = {}
        self.stats = {}

    def access(self, block, write):
        self._ways.append(block)
        if write:
            self._dirty.add(block)
        self._counters["accesses"] = self._counters.get("accesses", 0) + 1

    def access_batched(self, blocks, writes):  # expect: sym-counter-asymmetry
        for block in blocks:
            self._ways.append(block)
        count = self._counters.get("accesses", 0)
        self._counters["accesses"] = count + len(blocks)
