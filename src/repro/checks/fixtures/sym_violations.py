"""Seeded counter-symmetry violations (parsed only)."""


class SkewedTLB:
    """``warm_access`` forgets the recency-order update its counted twin
    performs — a warmed TLB would evict differently than a measured one."""

    def __init__(self):
        self._entries = {}
        self._order = []
        self._counters = {}
        self.stats = {}

    def access(self, vpn):
        self._entries[vpn] = True
        self._order.append(vpn)
        self._counters["hits"] = self._counters.get("hits", 0) + 1

    def warm_access(self, vpn):  # expect: sym-counter-asymmetry
        self._entries[vpn] = True

    def snapshot(self):
        return (dict(self._entries), list(self._order),
                dict(self._counters), dict(self.stats))

    def restore(self, state):
        self._entries = dict(state[0])
        self._order = list(state[1])
        self._counters = dict(state[2])
        self.stats = dict(state[3])


class LossyCore:
    """``run_packed`` forgets the redirect update its object twin
    performs — the packed fast path would schedule fetches differently
    than the oracle, breaking bit-identity (the ``_packed`` suffix
    pairing rule)."""

    def __init__(self):
        self._redirect = 0
        self._retired = []
        self.stats = {}

    def run(self, instructions):
        for instruction in instructions:
            self._retired.append(instruction)
            self._redirect = instruction
            self.stats["instructions"] = self.stats.get("instructions", 0) + 1

    def run_packed(self, chunks):  # expect: sym-counter-asymmetry
        for chunk in chunks:
            for instruction in chunk:
                self._retired.append(instruction)
