"""Opt-in runtime sanitizer for the distributed layer (``REPRO_TSAN=1``).

The static passes in :mod:`.concurrency` / :mod:`.ordering` reason about
locks by *name*, one class at a time.  This module checks the same
properties dynamically, across objects, while the real test suite runs:

* :func:`new_lock` / :func:`new_rlock` — drop-in lock factories the
  concurrency classes use.  Plain ``threading`` primitives normally;
  with ``REPRO_TSAN=1`` in the environment they return
  :class:`InstrumentedLock`, which keeps a per-thread stack of held
  locks and a process-global acquisition-order graph.  Acquiring ``B``
  while holding ``A`` records the edge ``A -> B``; if ``B -> A`` was
  ever observed (directly or transitively), that is a **lock-order
  inversion** — two threads interleaving those paths deadlock.
* :func:`guarded_dict` / :func:`guarded_list` — container proxies bound
  to the lock that owns them.  Under TSAN every *mutation* asserts the
  current thread holds that lock; a mutation outside it is a **guard
  violation** (the runtime twin of ``lock-unguarded-shared``).

Violations are recorded, not raised: the suite runs to completion and
``tests/test_tsan.py`` asserts :func:`violations` is empty (and that
injected bugs are caught).  Set ``REPRO_TSAN_RAISE=1`` to fail fast at
the violation site instead, which gives the offending stack directly.

Everything here is stdlib-only and this module is dependency-free
inside ``repro`` (the sweep engine imports it, never the reverse), so
the sanitizer adds no import weight to production runs: with the env
var unset the factories return bare ``threading`` objects.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

__all__ = [
    "GuardError",
    "InstrumentedLock",
    "LockOrderError",
    "TsanError",
    "assert_clean",
    "guarded_dict",
    "guarded_list",
    "new_lock",
    "new_rlock",
    "reset",
    "tsan_enabled",
    "violations",
]


class TsanError(AssertionError):
    """Base class for sanitizer violations."""


class LockOrderError(TsanError):
    """Two locks observed in both acquisition orders."""


class GuardError(TsanError):
    """A guarded container mutated without its owning lock held."""


def tsan_enabled() -> bool:
    """Read the switch at call time so tests can flip it per-object."""
    return os.environ.get("REPRO_TSAN", "") == "1"


def _raise_mode() -> bool:
    return os.environ.get("REPRO_TSAN_RAISE", "") == "1"


# -- global sanitizer state ------------------------------------------------

#: guards the order graph and the violation log (never held while a
#: user lock is being acquired — only around bookkeeping).
_state_lock = threading.Lock()
#: acquisition-order edges: name -> names acquired while holding it.
_order_edges: Dict[str, Set[str]] = {}
#: first witness of each edge, for the violation message.
_edge_sites: Dict[Tuple[str, str], str] = {}
#: recorded violations, in observation order.
_violations: List[TsanError] = []
#: per-thread stack of held InstrumentedLock names.
_held = threading.local()


def _held_stack() -> List[str]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def violations() -> List[TsanError]:
    """Everything recorded since the last :func:`reset` (a copy)."""
    with _state_lock:
        return list(_violations)


def reset() -> None:
    """Clear the order graph and the violation log (between tests)."""
    with _state_lock:
        _order_edges.clear()
        _edge_sites.clear()
        _violations.clear()


def assert_clean() -> None:
    """Raise the first recorded violation, if any."""
    recorded = violations()
    if recorded:
        summary = "; ".join(str(v) for v in recorded[:5])
        raise TsanError(
            f"{len(recorded)} sanitizer violation(s): {summary}")


def _record(violation: TsanError) -> None:
    if _raise_mode():
        raise violation
    with _state_lock:
        _violations.append(violation)


def _reaches(start: str, goal: str) -> bool:
    """Is ``goal`` reachable from ``start`` in the order graph?

    Caller holds ``_state_lock``.
    """
    seen: Set[str] = set()
    queue = [start]
    while queue:
        node = queue.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        queue.extend(_order_edges.get(node, ()))
    return False


_ANON = threading.Lock()
_anon_counter = 0


def _auto_name(prefix: str) -> str:
    global _anon_counter
    with _ANON:
        _anon_counter += 1
        return f"{prefix}#{_anon_counter}"


class InstrumentedLock:
    """A lock proxy recording acquisition order and held-state.

    Wraps a real ``threading.Lock``/``RLock``; supports the context
    manager protocol and explicit ``acquire``/``release``, which is the
    full surface the sweep engine uses.
    """

    def __init__(self, inner, name: Optional[str] = None,
                 reentrant: bool = False):
        self._inner = inner
        self.name = name or _auto_name("lock")
        self._reentrant = reentrant

    # -- introspection -----------------------------------------------------

    def held_by_me(self) -> bool:
        return self.name in _held_stack()

    # -- acquisition bookkeeping -------------------------------------------

    def _note_acquire(self) -> None:
        stack = _held_stack()
        violation: Optional[LockOrderError] = None
        if stack:
            holder = stack[-1]
            if holder != self.name:
                with _state_lock:
                    edge = (holder, self.name)
                    if edge not in _edge_sites:
                        _edge_sites[edge] = f"{holder} -> {self.name}"
                    # adding holder -> self closes a cycle iff holder
                    # was already reachable *from* self; report only
                    # the edge that first closes it
                    if _reaches(self.name, holder) \
                            and not _reaches(holder, self.name):
                        violation = LockOrderError(
                            f"lock-order inversion: acquired "
                            f"{self.name!r} while holding {holder!r}, "
                            f"but the opposite order "
                            f"{self.name} -> {holder} was also "
                            f"observed")
                        if not _raise_mode():
                            _violations.append(violation)
                    _order_edges.setdefault(holder, set()).add(self.name)
        stack.append(self.name)
        if violation is not None and _raise_mode():
            raise violation

    def _note_release(self) -> None:
        stack = _held_stack()
        if self.name in stack:
            # remove the innermost occurrence (RLock re-entry safe)
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == self.name:
                    del stack[i]
                    break

    # -- lock protocol -----------------------------------------------------

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._note_acquire()
        return acquired

    def release(self) -> None:
        self._note_release()
        self._inner.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


def new_lock(name: Optional[str] = None
             ) -> Union[threading.Lock, InstrumentedLock]:
    """A mutex; instrumented under ``REPRO_TSAN=1``."""
    inner = threading.Lock()
    if not tsan_enabled():
        return inner
    return InstrumentedLock(inner, name, reentrant=False)


def new_rlock(name: Optional[str] = None
              ) -> Union[threading.RLock, InstrumentedLock]:
    """A re-entrant mutex; instrumented under ``REPRO_TSAN=1``."""
    inner = threading.RLock()
    if not tsan_enabled():
        return inner
    return InstrumentedLock(inner, name, reentrant=True)


# -- guarded containers ----------------------------------------------------


def _check_guard(lock, what: str, op: str) -> None:
    if isinstance(lock, InstrumentedLock) and not lock.held_by_me():
        _record(GuardError(
            f"guard violation: {op} on {what} without holding "
            f"{lock.name!r}"))


class GuardedDict(dict):
    """A dict whose mutations must happen under its owning lock."""

    def __init__(self, lock, name: str, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._tsan_lock = lock
        self._tsan_name = name

    def _tsan_check(self, op: str) -> None:
        _check_guard(self._tsan_lock, self._tsan_name, op)

    def __setitem__(self, key, value):
        self._tsan_check("__setitem__")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._tsan_check("__delitem__")
        super().__delitem__(key)

    def pop(self, *args):
        self._tsan_check("pop")
        return super().pop(*args)

    def popitem(self):
        self._tsan_check("popitem")
        return super().popitem()

    def clear(self):
        self._tsan_check("clear")
        super().clear()

    def update(self, *args, **kwargs):
        self._tsan_check("update")
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._tsan_check("setdefault")
        return super().setdefault(key, default)


class GuardedList(list):
    """A list whose mutations must happen under its owning lock."""

    def __init__(self, lock, name: str, iterable: Iterable = ()):
        super().__init__(iterable)
        self._tsan_lock = lock
        self._tsan_name = name

    def _tsan_check(self, op: str) -> None:
        _check_guard(self._tsan_lock, self._tsan_name, op)

    def append(self, value):
        self._tsan_check("append")
        super().append(value)

    def extend(self, iterable):
        self._tsan_check("extend")
        super().extend(iterable)

    def insert(self, index, value):
        self._tsan_check("insert")
        super().insert(index, value)

    def pop(self, index=-1):
        self._tsan_check("pop")
        return super().pop(index)

    def remove(self, value):
        self._tsan_check("remove")
        super().remove(value)

    def clear(self):
        self._tsan_check("clear")
        super().clear()

    def sort(self, **kwargs):
        self._tsan_check("sort")
        super().sort(**kwargs)

    def reverse(self):
        self._tsan_check("reverse")
        super().reverse()

    def __setitem__(self, index, value):
        self._tsan_check("__setitem__")
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self._tsan_check("__delitem__")
        super().__delitem__(index)

    def __iadd__(self, iterable):
        self._tsan_check("__iadd__")
        super().extend(iterable)
        return self


def guarded_dict(lock, name: str, *args, **kwargs) -> dict:
    """A dict owned by ``lock``; a plain dict when TSAN is off."""
    if isinstance(lock, InstrumentedLock):
        return GuardedDict(lock, name, *args, **kwargs)
    return dict(*args, **kwargs)


def guarded_list(lock, name: str, iterable: Iterable = ()) -> list:
    """A list owned by ``lock``; a plain list when TSAN is off."""
    if isinstance(lock, InstrumentedLock):
        return GuardedList(lock, name, iterable)
    return list(iterable)
