"""Determinism lint — pass 1 of ``python -m repro check``.

Simulation results must be bit-identical across processes, worker
counts, and ``PYTHONHASHSEED`` values; the sweep cache and warm-state
sharing (PRs 1–2) silently corrupt figures otherwise.  This pass bans
the ambient nondeterminism sources at the AST level:

* ``det-global-random`` — ``random.random()`` and friends share one
  process-global Mersenne Twister; draws must come from a seeded
  ``random.Random`` instance threaded through constructors.
* ``det-unseeded-rng`` — ``random.Random()`` with no seed argument.
* ``det-wallclock`` — ``time.time``/``datetime.now`` etc.; monotonic
  duration clocks (``perf_counter``, ``monotonic``) stay legal because
  the sweep runner uses them for cost accounting that never reaches a
  ``SimResult``.
* ``det-entropy`` — ``os.urandom``, ``secrets``, ``uuid.uuid1/4``,
  ``random.SystemRandom``.
* ``det-builtin-hash`` — builtin ``hash()``; str/bytes hashes vary
  with ``PYTHONHASHSEED``.
* ``det-set-iteration`` — ``for``-loops and comprehensions over values
  the pass can see are sets; iteration order varies with the hash seed.
  ``sorted(...)`` wrappers are naturally exempt (the loop iterates the
  list).
* ``det-local-import`` — ``import random`` inside a function hides the
  dependency from this checker; imports of RNG/entropy modules must be
  module-level.

Modules that import numpy (the ``repro.kernels`` backends) get two
additional rules:

* ``det-numpy-random`` — anything under ``numpy.random``: the legacy
  API shares global state, and even ``default_rng`` draws would have to
  be threaded like ``random.Random`` — the kernels are pure column
  arithmetic and must not draw randomness at all.
* ``det-numpy-sum`` — reductions (``sum``/``mean``/``prod``/``cumsum``/
  ``dot``) without an explicit ``dtype=``: the accumulator dtype then
  depends on the input dtype and platform (e.g. a ``bool_`` column sums
  to platform ``int_``), so results can differ between the numpy and
  fallback backends or across machines.  Pinning ``dtype`` (or using
  ``count_nonzero``) keeps the arithmetic exact and bit-stable.

Scope: only *simulation* packages are linted (``SIM_SCOPES``); crypto
key generation legitimately wants OS entropy and the analysis/report
layer may format timestamps.  Fixture runs pass ``assume_sim=True``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .astutils import ModuleInfo, ProjectIndex, dotted_parts
from .findings import Finding

#: first path segment under ``src/repro/`` that makes a file sim code.
SIM_SCOPES = {
    "cache", "cpu", "dram", "hashengine", "kernels", "schemes", "sim",
    "workloads", "common", "analysis",
}

#: banned wall-clock attributes of the ``time`` module.
_WALLCLOCK_TIME = {
    "time", "time_ns", "ctime", "localtime", "gmtime", "asctime",
    "strftime", "mktime",
}
#: banned ``datetime.datetime`` / ``datetime.date`` constructors.
_WALLCLOCK_DATETIME = {"now", "today", "utcnow", "fromtimestamp"}

#: ``random`` module functions drawing from the shared global generator.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes", "seed", "setstate", "getstate",
}

_ENTROPY_MODULES = {"secrets"}
_LOCAL_IMPORT_BAN = {"random", "secrets", "uuid"}

#: numpy reductions whose accumulator dtype follows the input dtype —
#: exact only when the call pins ``dtype=`` explicitly.
_NUMPY_REDUCTIONS = {"sum", "mean", "prod", "cumsum", "cumprod", "nansum",
                     "dot"}


def _imports_numpy(module: ModuleInfo) -> bool:
    """Whether the numpy-specific rules apply to this module."""
    if any(origin == "numpy" for origin in module.module_aliases.values()):
        return True
    return any(origin == "numpy"
               for origin, _ in module.from_imports.values())


def _is_sim_module(module: ModuleInfo, assume_sim: bool) -> bool:
    if assume_sim:
        return True
    parts = module.relkey.split("/")
    return len(parts) > 1 and parts[0] in SIM_SCOPES


def _resolve_call(module: ModuleInfo, node: ast.Call
                  ) -> Optional[Tuple[str, str]]:
    """Resolve a call to ``(module_name, function_name)`` if the callee
    is a dotted chain rooted at an imported module, or a from-imported
    name.  ``self.rng.random()`` resolves to nothing (Name root ``self``
    is not an import alias) and is correctly skipped."""
    parts = dotted_parts(node.func)
    if parts is None:
        return None
    head = parts[0]
    if len(parts) == 1:
        imported = module.from_imports.get(head)
        if imported is not None:
            return imported
        return None
    if head in module.module_aliases:
        origin = module.module_aliases[head]
        # "datetime.datetime.now" -> module datetime, chain datetime.now
        return origin, ".".join(parts[1:])
    imported = module.from_imports.get(head)
    if imported is not None:
        # from datetime import datetime; datetime.now()
        return imported[0], ".".join((imported[1],) + parts[1:])
    return None


class _SetTracker:
    """Per-function-scope knowledge of which names hold sets."""

    def __init__(self, self_sets: Set[str]):
        self.local_sets: Set[str] = set()
        self.self_sets = self_sets

    @staticmethod
    def is_set_expr(node: ast.AST, known: "_SetTracker") -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name):
            return node.id in known.local_sets
        if isinstance(node, ast.Attribute):
            return (isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in known.self_sets)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # set algebra: s1 | s2, s - t ... (only if either side is a set)
            return (_SetTracker.is_set_expr(node.left, known)
                    or _SetTracker.is_set_expr(node.right, known))
        return False


def _collect_self_sets(module: ModuleInfo) -> Dict[str, Set[str]]:
    """Class name -> self attributes assigned a set in ``__init__``."""
    out: Dict[str, Set[str]] = {}
    empty = _SetTracker(set())
    for cls in module.classes.values():
        attrs: Set[str] = set()
        init = cls.methods.get("__init__")
        if init is not None:
            for node in ast.walk(init):
                if isinstance(node, ast.Assign):
                    if _SetTracker.is_set_expr(node.value, empty):
                        for target in node.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                attrs.add(target.attr)
                elif (isinstance(node, ast.AnnAssign)
                      and isinstance(node.target, ast.Attribute)
                      and isinstance(node.target.value, ast.Name)
                      and node.target.value.id == "self"):
                    annotation = node.annotation
                    if (isinstance(annotation, ast.Name)
                            and annotation.id in {"set", "Set"}):
                        attrs.add(node.target.attr)
                    elif (isinstance(annotation, ast.Subscript)
                          and isinstance(annotation.value, ast.Name)
                          and annotation.value.id in {"set", "Set",
                                                      "FrozenSet"}):
                        attrs.add(node.target.attr)
        out[cls.name] = attrs
    return out


def _scope_nodes(body):
    """Walk a statement list without descending into nested functions,
    so each scope is linted exactly once."""
    queue = list(body)
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


def _scan_function_scope(module: ModuleInfo, fn: ast.AST,
                         self_sets: Set[str],
                         findings: List[Finding]) -> None:
    """Set-iteration lint for one function (or module) scope."""
    tracker = _SetTracker(self_sets)
    body = fn.body if isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)) else []

    # prepass: names assigned a set literal/call anywhere in this scope
    for node in _scope_nodes(body):
        if isinstance(node, ast.Assign):
            if _SetTracker.is_set_expr(node.value, tracker):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracker.local_sets.add(target.id)

    def flag(node: ast.AST, what: str) -> None:
        findings.append(Finding(
            module.display, node.lineno, "det-set-iteration",
            f"iteration over {what}; order varies with PYTHONHASHSEED — "
            "wrap in sorted(...)",
        ))

    for node in _scope_nodes(body):
        if isinstance(node, ast.For):
            if _SetTracker.is_set_expr(node.iter, tracker):
                flag(node, "a set")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                if _SetTracker.is_set_expr(comp.iter, tracker):
                    flag(comp.iter, "a set (in a comprehension)")


def check_determinism(index: ProjectIndex,
                      assume_sim: bool = False) -> List[Finding]:
    findings: List[Finding] = []
    for module in index.modules.values():
        if not _is_sim_module(module, assume_sim):
            continue
        self_sets_by_class = _collect_self_sets(module)
        _scan_module_calls(module, findings)
        _scan_local_imports(module, findings)
        if _imports_numpy(module):
            _scan_numpy_methods(module, findings)
        # set-iteration: module scope plus every function scope, with
        # methods knowing their class's set-typed attributes
        _scan_function_scope(module, module.tree, set(), findings)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            owner: Set[str] = set()
            for cls in module.classes.values():
                if node in cls.methods.values():
                    owner = self_sets_by_class.get(cls.name, set())
                    break
            _scan_function_scope(module, node, owner, findings)
    return findings


def _scan_module_calls(module: ModuleInfo,
                       findings: List[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        # builtin hash()
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            findings.append(Finding(
                module.display, node.lineno, "det-builtin-hash",
                "builtin hash() varies with PYTHONHASHSEED for "
                "str/bytes; use a stable hash",
            ))
            continue
        resolved = _resolve_call(module, node)
        if resolved is None:
            continue
        origin, chain = resolved
        leaf = chain.split(".")[-1]
        if origin == "random":
            if leaf == "Random":
                if not node.args and not node.keywords:
                    findings.append(Finding(
                        module.display, node.lineno, "det-unseeded-rng",
                        "random.Random() without a seed; pass an "
                        "explicit seed so runs are reproducible",
                    ))
            elif leaf == "SystemRandom":
                findings.append(Finding(
                    module.display, node.lineno, "det-entropy",
                    "random.SystemRandom draws OS entropy",
                ))
            elif leaf in _GLOBAL_RANDOM:
                findings.append(Finding(
                    module.display, node.lineno, "det-global-random",
                    f"random.{leaf}() uses the process-global generator; "
                    "draw from a seeded random.Random instance",
                ))
        elif origin == "numpy":
            if chain == "random" or chain.startswith("random."):
                findings.append(Finding(
                    module.display, node.lineno, "det-numpy-random",
                    f"numpy.{chain} draws numpy randomness; the kernel "
                    "backends are pure column arithmetic and must not "
                    "draw randomness at all",
                ))
            elif (leaf in _NUMPY_REDUCTIONS
                  and not any(kw.arg == "dtype" for kw in node.keywords)):
                findings.append(Finding(
                    module.display, node.lineno, "det-numpy-sum",
                    f"numpy.{chain}() without dtype=; the accumulator "
                    "dtype follows the input dtype, so results are not "
                    "bit-stable across backends/platforms — pin dtype "
                    "or use count_nonzero",
                ))
        elif origin == "os" and leaf == "urandom":
            findings.append(Finding(
                module.display, node.lineno, "det-entropy",
                "os.urandom draws OS entropy",
            ))
        elif origin in _ENTROPY_MODULES:
            findings.append(Finding(
                module.display, node.lineno, "det-entropy",
                f"{origin}.{leaf} draws OS entropy",
            ))
        elif origin == "uuid" and leaf in {"uuid1", "uuid4"}:
            findings.append(Finding(
                module.display, node.lineno, "det-entropy",
                f"uuid.{leaf} is nondeterministic",
            ))
        elif origin == "time" and leaf in _WALLCLOCK_TIME:
            findings.append(Finding(
                module.display, node.lineno, "det-wallclock",
                f"time.{leaf}() reads the wall clock; use "
                "time.perf_counter for durations",
            ))
        elif origin == "datetime" and leaf in _WALLCLOCK_DATETIME:
            findings.append(Finding(
                module.display, node.lineno, "det-wallclock",
                f"datetime {leaf}() reads the wall clock",
            ))


def _scan_numpy_methods(module: ModuleInfo,
                        findings: List[Finding]) -> None:
    """Method-form reductions (``mask.sum()``) in numpy-importing
    modules; the function-form (``np.sum(...)``) is handled by
    :func:`_scan_module_calls` via import resolution."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _NUMPY_REDUCTIONS:
            continue
        if _resolve_call(module, node) is not None:
            continue  # np.sum(...) — already linted as a module call
        if any(kw.arg == "dtype" for kw in node.keywords):
            continue
        findings.append(Finding(
            module.display, node.lineno, "det-numpy-sum",
            f".{func.attr}() without dtype= in a numpy-importing module; "
            "the accumulator dtype follows the array dtype, so results "
            "are not bit-stable across backends/platforms — pin dtype "
            "or use count_nonzero",
        ))


def _scan_local_imports(module: ModuleInfo,
                        findings: List[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            names: List[str] = []
            if isinstance(inner, ast.Import):
                names = [alias.name.split(".")[0] for alias in inner.names]
            elif isinstance(inner, ast.ImportFrom) and inner.module:
                names = [inner.module.split(".")[0]]
            for name in names:
                if name in _LOCAL_IMPORT_BAN:
                    findings.append(Finding(
                        module.display, inner.lineno, "det-local-import",
                        f"function-level import of {name!r}; move to "
                        "module level so determinism rules can see it",
                    ))
