"""Snapshot-completeness checker — pass 2 of ``python -m repro check``.

Warm-state snapshot sharing (PR 2) measures many sweep cells from one
restored ``MemoryHierarchy.snapshot()``.  The contract is: every
attribute the warm path can mutate is either captured by the class's
``snapshot()``/``snapshot_state()`` or on an explicit allowlist with a
written justification.  An attribute that slips through both nets is
exactly the bug class that corrupts warm-shared cells undetected — a
restored cell would start from different functional state than a
from-scratch one.

Mechanics: a *target* is any class that (a) has warm-path entry points
(``warm_*`` methods, ``divert_counters``/``set_warm_mode``, or the
``TimingScheme`` surface) and (b) has a snapshot method somewhere in its
bases — (a) without (b) is itself the ``snap-no-snapshot`` finding.
For each target the pass takes the same-class call closure of the entry
points (``astutils.closure_mutations``), collects every ``self.<attr>``
those methods can mutate (alias-aware: ``ways = self._sets[i]`` then
``ways.insert(...)`` counts against ``_sets``), and requires each to be
*read* somewhere in the snapshot method or allowlisted.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .astutils import (
    ClassInfo, ProjectIndex, closure_mutations, self_attribute_reads,
)
from .findings import Finding

#: Deliberately-unsnapshotted attributes, keyed by the class (anywhere
#: in the MRO) that owns the justification.  Every entry needs a reason:
#: this is the "counter-exclusion allowlist" the docs describe.
SNAPSHOT_ALLOWLIST: Dict[str, Dict[str, str]] = {
    "CacheSim": {
        "_counters": (
            "alias rebound by divert_counters between stats.counters and "
            "a scratch dict; snapshot captures stats.counters, the only "
            "binding that survives warm-up"
        ),
        "_kind_keys": (
            "pure memo of per-kind counter-key tuples; rebuilt on demand "
            "from immutable kind names, identical in every process"
        ),
    },
    "TLBSim": {
        "_counters": (
            "alias rebound by divert_counters; stats.counters is the "
            "snapshotted binding"
        ),
    },
    "TimingScheme": {
        "l2": (
            "borrowed component: MemoryHierarchy.snapshot() captures the "
            "L2 cache itself"
        ),
        "memory": (
            "borrowed component: MemoryHierarchy.snapshot() captures the "
            "DRAM model itself"
        ),
        "engine": (
            "borrowed component: MemoryHierarchy.snapshot() captures the "
            "hash engine itself"
        ),
    },
}

#: non-``warm_*`` entry points that run during warm-up when present.
EXTRA_ENTRIES = ("divert_counters", "set_warm_mode")

#: the scheme surface exercised while warming (misses happen during
#: warm-up too; only the timing accounting is diverted).
SCHEME_ENTRIES = ("handle_data_miss", "handle_writeback", "fill_l2")

_SNAPSHOT_METHODS = ("snapshot", "snapshot_state")


def _warm_entries(index: ProjectIndex, cls: ClassInfo) -> List[str]:
    entries: List[str] = []
    for name in sorted(index.all_method_names(cls)):
        if name.startswith("warm_") or name.startswith("_warm_"):
            entries.append(name)
    return entries


def _counted_twin(name: str) -> str:
    if name.startswith("warm_"):
        return name[len("warm_"):]
    if name.startswith("_warm_"):
        return "_" + name[len("_warm_"):]
    return name


def _allowlisted(index: ProjectIndex, cls: ClassInfo) -> Dict[str, str]:
    merged: Dict[str, str] = {}
    for name in index.mro_names(cls):
        merged.update(SNAPSHOT_ALLOWLIST.get(name, {}))
    return merged


def _snapshot_reads(index: ProjectIndex, cls: ClassInfo) -> Set[str]:
    reads: Set[str] = set()
    found_any = False
    for method in _SNAPSHOT_METHODS:
        found = index.find_method(cls, method)
        if found is not None:
            found_any = True
            reads.update(self_attribute_reads(found[1]))
    return reads if found_any else set()


def _has_snapshot(index: ProjectIndex, cls: ClassInfo) -> bool:
    return any(index.find_method(cls, m) is not None
               for m in _SNAPSHOT_METHODS)


def check_snapshots(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for cls in index.classes():
        warm = _warm_entries(index, cls)
        is_scheme = "TimingScheme" in index.mro_names(cls)
        if not warm and not is_scheme:
            continue

        entries = list(warm)
        all_methods = index.all_method_names(cls)
        for extra in EXTRA_ENTRIES:
            if extra in all_methods:
                entries.append(extra)
        if is_scheme:
            entries.extend(m for m in SCHEME_ENTRIES if m in all_methods)
        # counted twins run between warm-up and measurement restore too
        entries.extend(t for t in (_counted_twin(w) for w in warm)
                       if t in all_methods)

        if not _has_snapshot(index, cls):
            findings.append(Finding(
                cls.module.display, cls.node.lineno, "snap-no-snapshot",
                f"{cls.name} has warm-path entry points "
                f"({', '.join(warm) or 'scheme surface'}) but no "
                "snapshot()/snapshot_state() method in its bases",
            ))
            continue

        covered = _snapshot_reads(index, cls)
        allowlist = _allowlisted(index, cls)
        mutations = closure_mutations(index, cls, entries)
        for attr in sorted(mutations):
            if attr in covered or attr in allowlist:
                continue
            line, via = mutations[attr]
            findings.append(Finding(
                cls.module.display, line, "snap-missing-field",
                f"{cls.name}.{attr} is mutated on the warm path "
                f"(via {via}) but is neither read by "
                "snapshot()/snapshot_state() nor on the "
                "counter-exclusion allowlist",
            ))
    return findings
