"""Wire-protocol conformance: client builders vs server handlers.

The store/coordinator protocol is hand-rolled on both sides —
``HttpStore``/``CoordinatorClient`` build requests with f-string paths
and dict-literal payloads, ``_StoreHandler`` routes them with
``parts[i] == "lit"`` comparisons and reads payloads with
``payload.get("field")``.  Nothing but convention keeps the two sides
in sync, so drift shows up as a runtime 400/404 on a live cluster.
This pass recovers both halves from the AST and diffs them:

* **endpoints** — every client ``(verb, path-template)`` must match a
  route some handler tests for, and every route must have a client
  (``wire-endpoint-unhandled`` / ``wire-endpoint-unused``); f-string
  holes and unconstrained ``parts[i]`` positions are wildcards.
* **payload fields** — dict-literal keys a client sends must be read
  by a matching handler branch, and ``payload.get(...)`` keys a
  handler reads must be sent (``wire-field-unread`` /
  ``wire-field-unsent``).  Either side going through an opaque object
  (``json.dumps(entry)``, ``payload`` passed whole to a validator)
  turns the comparison off for that endpoint — over-approximation
  would manufacture findings.
* **status codes** — every literal code a handler sends must be
  distinguishable from success by some client comparison: a literal
  mention, or a range test (``>= 400``) that is true for the code and
  false for 200 (``wire-status-unhandled``).
* **dict round-trips** — module-level ``X_to_dict``/``X_from_dict``
  pairs must write and read the same literal keys
  (``wire-spec-drift``), unless a side uses dynamic keys.

The comparison is a *global union*: all clients in the scanned set vs
all handlers.  Both sides must be in scope (the default scan and the CI
explicit-paths run include ``store.py`` + ``dispatch.py`` together);
with only one side present the endpoint diff stays silent rather than
declaring everything unused.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .astutils import ModuleInfo, ProjectIndex, dotted_parts
from .findings import Finding

WILD = "*"

_HTTP_VERBS = frozenset({"GET", "PUT", "POST", "DELETE", "HEAD",
                         "PATCH", "OPTIONS"})
_HOLE = "\x00"  # f-string interpolation marker inside a rebuilt path

#: success-family codes a client never needs to single out.
_SUCCESS = frozenset({200, 201, 204})


@dataclass
class ClientCall:
    """One ``request("VERB", path, payload)`` site."""

    verb: str
    segments: Tuple[str, ...]
    module: ModuleInfo
    line: int
    #: field -> line of the dict-literal key; None = opaque payload.
    fields: Optional[Dict[str, int]]


@dataclass
class ServerRoute:
    """One route a ``do_<VERB>`` handler tests for."""

    verb: str
    segments: Tuple[str, ...]
    module: ModuleInfo
    line: int
    #: field -> line read in this route's branch; None = opaque body use.
    reads: Optional[Dict[str, int]]


@dataclass
class StatusModel:
    """Codes handlers send, and how clients discriminate status."""

    sends: List[Tuple[int, ModuleInfo, int]] = field(default_factory=list)
    literals: Set[int] = field(default_factory=set)
    ranges: List[Tuple[str, int]] = field(default_factory=list)

    def handled(self, code: int) -> bool:
        if code in _SUCCESS or code in self.literals:
            return True
        ops = {"Gt": lambda c, n: c > n, "GtE": lambda c, n: c >= n,
               "Lt": lambda c, n: c < n, "LtE": lambda c, n: c <= n}
        for op, bound in self.ranges:
            pred = ops[op]
            if pred(code, bound) and not pred(200, bound):
                return True
        return False


def _path_segments(template: str) -> Tuple[Tuple[str, ...], List[str]]:
    """A path template (holes as ``_HOLE``) -> (segments, query params)."""
    path, _, query = template.partition("?")
    path = path.strip("/")
    segments = tuple(
        WILD if _HOLE in token else token
        for token in (path.split("/") if path else [])
    )
    params = re.findall(r"(\w+)=", query)
    return segments, params


def _template_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append(_HOLE)
        return "".join(parts)
    return None


def _compatible(a: Sequence[str], b: Sequence[str]) -> bool:
    return len(a) == len(b) and all(
        x == WILD or y == WILD or x == y for x, y in zip(a, b))


# -- client side -----------------------------------------------------------


def _collect_clients(index: ProjectIndex) -> List[ClientCall]:
    calls: List[ClientCall] = []
    for module in index.modules.values():
        for fn in (node for node in ast.walk(module.tree)
                   if isinstance(node, ast.FunctionDef)):
            local_dicts = _local_dicts(fn)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("request", "_request")
                        and node.args):
                    continue
                verb_node = node.args[0]
                if not (isinstance(verb_node, ast.Constant)
                        and verb_node.value in _HTTP_VERBS
                        and len(node.args) >= 2):
                    continue
                template = _template_of(node.args[1])
                if template is None:
                    continue
                segments, _params = _path_segments(template)
                payload = node.args[2] if len(node.args) > 2 else None
                for keyword in node.keywords:
                    if keyword.arg in ("payload", "body"):
                        payload = keyword.value
                calls.append(ClientCall(
                    verb=str(verb_node.value), segments=segments,
                    module=module, line=node.args[1].lineno,
                    fields=_payload_fields(payload, local_dicts)))
    return calls


def _local_dicts(fn: ast.FunctionDef) -> Dict[str, ast.Dict]:
    out: Dict[str, ast.Dict] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Dict):
            out[node.targets[0].id] = node.value
    return out


def _payload_fields(payload: Optional[ast.AST],
                    local_dicts: Dict[str, ast.Dict]
                    ) -> Optional[Dict[str, int]]:
    """Literal payload keys; ``None`` when the payload is opaque."""
    if payload is None or (isinstance(payload, ast.Constant)
                           and payload.value is None):
        return {}
    if isinstance(payload, ast.Name) and payload.id in local_dicts:
        payload = local_dicts[payload.id]
    if not isinstance(payload, ast.Dict):
        return None
    fields: Dict[str, int] = {}
    for key in payload.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            fields[key.value] = key.lineno
        else:
            return None  # **expansion or computed key
    return fields


# -- server side -----------------------------------------------------------


def _handler_classes(index: ProjectIndex):
    for cls in index.classes():
        if any("BaseHTTPRequestHandler" in c.bases
               for c in index.mro(cls)):
            yield cls


def _path_vars(fn: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """(names holding ``self.path`` strings, names holding its parts)."""
    paths: Set[str] = set()
    parts: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        uses_self_path = any(
            isinstance(sub, ast.Attribute) and sub.attr == "path"
            and isinstance(sub.value, ast.Name) and sub.value.id == "self"
            for sub in ast.walk(node.value))
        if not uses_self_path:
            continue
        is_split = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "split"
            for sub in ast.walk(node.value))
        for target in node.targets:
            names = ([target] if isinstance(target, ast.Name)
                     else target.elts
                     if isinstance(target, (ast.Tuple, ast.List)) else [])
            for i, element in enumerate(names):
                if not isinstance(element, ast.Name):
                    continue
                if is_split:
                    parts.add(element.id)
                elif i == 0:
                    # `path, _, query = self.path.partition("?")`
                    paths.add(element.id)
    return paths, parts


@dataclass
class _Pattern:
    """Positional constraints recovered from one route test."""

    positions: Dict[int, str] = field(default_factory=dict)
    length: Optional[int] = None
    full: Optional[str] = None
    line: int = 0

    def segments(self, guards: Dict[int, str]) -> Optional[Tuple[str, ...]]:
        if self.full is not None:
            segs, _ = _path_segments(self.full)
            return segs
        if not self.positions and self.length is None:
            return None  # the test constrained nothing route-shaped
        positions = dict(guards)
        positions.update(self.positions)
        length = self.length
        if length is None:
            length = max(positions) + 1
        return tuple(positions.get(i, WILD) for i in range(length))


def _pattern_of(test: ast.expr, path_names: Set[str],
                part_names: Set[str]) -> _Pattern:
    pattern = _Pattern(line=getattr(test, "lineno", 0))
    for node in ast.walk(test):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)):
            continue
        left, right = node.left, node.comparators[0]
        if isinstance(left, ast.Constant):
            left, right = right, left
        # path == "/costs"
        if isinstance(left, ast.Name) and left.id in path_names \
                and isinstance(right, ast.Constant) \
                and isinstance(right.value, str):
            pattern.full = right.value
            pattern.line = node.lineno
        # parts == ["tenants"]  (full-list equality pins every position
        # *and* the length in one test)
        elif isinstance(left, ast.Name) and left.id in part_names \
                and isinstance(right, (ast.List, ast.Tuple)):
            literals = [element.value for element in right.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)]
            if len(literals) == len(right.elts):
                for offset, literal in enumerate(literals):
                    pattern.positions[offset] = literal
                pattern.length = len(literals)
                pattern.line = node.lineno
        # len(parts) == 2
        elif (isinstance(left, ast.Call)
              and isinstance(left.func, ast.Name)
              and left.func.id == "len" and left.args
              and isinstance(left.args[0], ast.Name)
              and left.args[0].id in part_names
              and isinstance(right, ast.Constant)
              and isinstance(right.value, int)):
            pattern.length = right.value
            pattern.line = pattern.line or node.lineno
        elif isinstance(left, ast.Subscript) \
                and isinstance(left.value, ast.Name) \
                and left.value.id in part_names:
            index = left.slice
            # parts[0] == "cells"
            if isinstance(index, ast.Constant) \
                    and isinstance(index.value, int) \
                    and isinstance(right, ast.Constant) \
                    and isinstance(right.value, str):
                pattern.positions[index.value] = right.value
                pattern.line = node.lineno
            # parts[1:] == ["seed"]
            elif isinstance(index, ast.Slice) and index.upper is None \
                    and isinstance(index.lower, ast.Constant) \
                    and isinstance(right, (ast.List, ast.Tuple)):
                start = index.lower.value
                literals = [element.value for element in right.elts
                            if isinstance(element, ast.Constant)]
                if len(literals) == len(right.elts):
                    for offset, literal in enumerate(literals):
                        pattern.positions[start + offset] = literal
                    pattern.length = start + len(literals)
                    pattern.line = node.lineno
    return pattern


def _guards_of(fn: ast.FunctionDef, part_names: Set[str]) -> Dict[int, str]:
    """``parts[0] != "work"`` early-outs pin positions for later tests."""
    guards: Dict[int, str] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], ast.NotEq)):
            continue
        left, right = node.left, node.comparators[0]
        if isinstance(left, ast.Constant):
            left, right = right, left
        if isinstance(left, ast.Subscript) \
                and isinstance(left.value, ast.Name) \
                and left.value.id in part_names \
                and isinstance(left.slice, ast.Constant) \
                and isinstance(left.slice.value, int) \
                and isinstance(right, ast.Constant) \
                and isinstance(right.value, str):
            guards[left.slice.value] = right.value
    return guards


def _payload_vars(fn: ast.FunctionDef) -> Set[str]:
    """Locals assigned from ``json.loads(...)`` (the decoded body)."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    dotted = dotted_parts(sub.func)
                    if dotted is not None and dotted[-1] == "loads":
                        out.add(node.targets[0].id)
    return out


def _branch_reads(scope: Sequence[ast.stmt],
                  payload_names: Set[str]) -> Optional[Dict[str, int]]:
    """Fields read from the payload inside one route branch.

    ``None`` when the payload escapes whole (passed to a call, stored)
    — the branch reads more than literal keys, so field diffing is off.
    """
    reads: Dict[str, int] = {}
    allowed: Set[int] = set()
    names: List[ast.Name] = []
    for stmt in scope:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in payload_names:
                allowed.add(id(node.func.value))
                if node.args and isinstance(node.args[0], ast.Constant):
                    reads[str(node.args[0].value)] = node.lineno
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in payload_names:
                allowed.add(id(node.value))
                if isinstance(node.slice, ast.Constant):
                    reads[str(node.slice.value)] = node.lineno
            elif isinstance(node, ast.Name) \
                    and node.id in payload_names:
                names.append(node)
    if any(id(name) not in allowed for name in names):
        return None
    return reads


def _helper_closure(cls, name: str) -> List[ast.FunctionDef]:
    """The method plus same-class helpers it transitively calls."""
    out: List[ast.FunctionDef] = []
    seen: Set[str] = set()
    queue = [name]
    while queue:
        current = queue.pop()
        if current in seen or current not in cls.methods:
            continue
        seen.add(current)
        fn = cls.methods[current]
        out.append(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                queue.append(node.func.attr)
    return out


def _collect_routes(index: ProjectIndex
                    ) -> Tuple[List[ServerRoute], StatusModel]:
    routes: List[ServerRoute] = []
    status = StatusModel()
    for cls in _handler_classes(index):
        module = cls.module
        for fn in cls.methods.values():
            _collect_sends(fn, module, status)
        for name, fn in cls.methods.items():
            if not name.startswith("do_"):
                continue
            verb = name[3:].upper()
            payload_names = _payload_vars(fn)
            functions = _helper_closure(cls, name)
            guards = _guards_of(fn, _path_vars(fn)[1])
            for scope in functions:
                path_names, part_names = _path_vars(scope)
                own_guards = guards if scope is fn else {}
                for node in ast.walk(scope):
                    if not isinstance(node, ast.If):
                        continue
                    pattern = _pattern_of(node.test, path_names,
                                          part_names)
                    segments = pattern.segments(own_guards)
                    if segments is None:
                        continue
                    # routes tested in the do_* body read their fields
                    # in that branch; routes recovered from a helper
                    # (e.g. a fingerprint parser) are handled by the
                    # whole method body
                    reads = _branch_reads(node.body, payload_names) \
                        if scope is fn \
                        else _branch_reads(fn.body, payload_names)
                    routes.append(ServerRoute(
                        verb=verb, segments=segments, module=module,
                        line=pattern.line or node.lineno, reads=reads))
    return routes, status


def _collect_sends(fn: ast.FunctionDef, module: ModuleInfo,
                   status: StatusModel) -> None:
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Call) and node.args
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            continue
        code = node.args[0]
        candidates = [code.body, code.orelse] \
            if isinstance(code, ast.IfExp) else [code]
        for candidate in candidates:
            if isinstance(candidate, ast.Constant) \
                    and isinstance(candidate.value, int) \
                    and 100 <= candidate.value <= 599:
                status.sends.append(
                    (candidate.value, module, candidate.lineno))


def _collect_status_checks(index: ProjectIndex,
                           status: StatusModel) -> None:
    for module in index.modules.values():
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            left, right = node.left, node.comparators[0]
            flipped = False
            if not _is_status_expr(left):
                left, right = right, left
                flipped = True
            if not _is_status_expr(left):
                continue
            op = node.ops[0]
            if isinstance(op, (ast.Eq, ast.NotEq)) \
                    and isinstance(right, ast.Constant) \
                    and isinstance(right.value, int):
                status.literals.add(right.value)
            elif isinstance(op, (ast.In, ast.NotIn)) \
                    and isinstance(right, (ast.Tuple, ast.List, ast.Set)):
                status.literals.update(
                    element.value for element in right.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, int))
            elif isinstance(op, (ast.Gt, ast.GtE, ast.Lt, ast.LtE)) \
                    and isinstance(right, ast.Constant) \
                    and isinstance(right.value, int):
                name = type(op).__name__
                if flipped:
                    name = {"Gt": "Lt", "GtE": "LtE",
                            "Lt": "Gt", "LtE": "GtE"}[name]
                status.ranges.append((name, right.value))


def _is_status_expr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "status"


# -- to_dict / from_dict symmetry ------------------------------------------


_TO_RE = re.compile(r"^(\w*?)_?to_dict$")
_FROM_RE = re.compile(r"^(\w*?)_?from_dict$")


def _dict_writes(fn: ast.FunctionDef
                 ) -> Tuple[Dict[str, int], bool]:
    """Literal keys a ``*_to_dict`` writes, plus a dynamic-keys flag."""
    keys: Dict[str, int] = {}
    dynamic = False
    returns_literal = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
                else:
                    dynamic = True
            returns_literal = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    if isinstance(target.slice, ast.Constant) \
                            and isinstance(target.slice.value, str):
                        keys.setdefault(target.slice.value,
                                        target.slice.lineno)
                    else:
                        dynamic = True
    if not returns_literal and not keys:
        dynamic = True  # opaque builder (e.g. returns to_canonical(...))
    return keys, dynamic


def _dict_reads(fn: ast.FunctionDef) -> Tuple[Dict[str, int], bool]:
    """Literal keys a ``*_from_dict`` reads, plus a dynamic flag."""
    keys: Dict[str, int] = {}
    dynamic = False
    if not fn.args.args and not fn.args.posonlyargs:
        return keys, True
    first = (fn.args.posonlyargs + fn.args.args)[0].arg
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == first and node.args:
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.setdefault(key.value, node.lineno)
            else:
                dynamic = True
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == first:
            if isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                keys.setdefault(node.slice.value, node.lineno)
            elif not isinstance(node.slice, ast.Slice):
                dynamic = True
    return keys, dynamic


def _check_spec_pairs(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    writers: Dict[str, Tuple[ModuleInfo, ast.FunctionDef]] = {}
    readers: Dict[str, Tuple[ModuleInfo, ast.FunctionDef]] = {}
    for module in index.modules.values():
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            to_match = _TO_RE.match(node.name)
            from_match = _FROM_RE.match(node.name)
            if to_match:
                writers[to_match.group(1)] = (module, node)
            elif from_match:
                readers[from_match.group(1)] = (module, node)
    for stem in sorted(set(writers) & set(readers)):
        write_module, writer = writers[stem]
        read_module, reader = readers[stem]
        written, write_dynamic = _dict_writes(writer)
        read, read_dynamic = _dict_reads(reader)
        if not read_dynamic and not write_dynamic:
            for key in sorted(set(written) - set(read)):
                findings.append(Finding(
                    write_module.display, written[key], "wire-spec-drift",
                    f"`{writer.name}` writes key {key!r} that "
                    f"`{reader.name}` never reads back"))
            for key in sorted(set(read) - set(written)):
                findings.append(Finding(
                    read_module.display, read[key], "wire-spec-drift",
                    f"`{reader.name}` reads key {key!r} that "
                    f"`{writer.name}` never writes"))
    return findings


# -- the pass --------------------------------------------------------------


def check_wire_protocol(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    calls = _collect_clients(index)
    routes, status = _collect_routes(index)
    _collect_status_checks(index, status)

    if calls and routes:
        for call in calls:
            matches = [route for route in routes
                       if route.verb == call.verb
                       and _compatible(call.segments, route.segments)]
            if not matches:
                findings.append(Finding(
                    call.module.display, call.line,
                    "wire-endpoint-unhandled",
                    f"client sends {call.verb} "
                    f"/{'/'.join(call.segments)} but no handler routes "
                    f"it; the request can only 404"))
                continue
            if call.fields is None \
                    or any(route.reads is None for route in matches):
                continue
            read: Set[str] = set()
            for route in matches:
                read.update(route.reads or {})
            for field_name, line in sorted(call.fields.items()):
                if field_name not in read:
                    findings.append(Finding(
                        call.module.display, line, "wire-field-unread",
                        f"payload field {field_name!r} sent with "
                        f"{call.verb} /{'/'.join(call.segments)} is "
                        f"read by no handler branch"))
        for route in routes:
            matches = [call for call in calls
                       if call.verb == route.verb
                       and _compatible(call.segments, route.segments)]
            if not matches:
                findings.append(Finding(
                    route.module.display, route.line,
                    "wire-endpoint-unused",
                    f"handler routes {route.verb} "
                    f"/{'/'.join(route.segments)} but no client "
                    f"requests it; dead protocol surface"))
                continue
            if route.reads is None \
                    or any(call.fields is None for call in matches):
                continue
            sent: Set[str] = set()
            for call in matches:
                sent.update(call.fields or {})
            for field_name, line in sorted(route.reads.items()):
                if field_name not in sent:
                    findings.append(Finding(
                        route.module.display, line, "wire-field-unsent",
                        f"handler reads payload field {field_name!r} "
                        f"on {route.verb} /{'/'.join(route.segments)} "
                        f"but no client sends it; only the fallback "
                        f"default ever arrives"))
    if calls:
        for code, module, line in status.sends:
            if not status.handled(code):
                findings.append(Finding(
                    module.display, line, "wire-status-unhandled",
                    f"server can answer HTTP {code} but no client "
                    f"status check distinguishes it from success"))
    findings.extend(_check_spec_pairs(index))
    return sorted(set(findings))
