"""Inline waivers: ``# repro-check: disable=<rule,...> -- <justification>``.

A waiver suppresses matching findings on its own line and on the line
directly below it (so it can sit at the end of the offending line or on
a comment line above).  Two things make a waiver *invalid* — and an
invalid waiver suppresses nothing, it instead becomes a finding itself:

* no ``-- <justification>`` trailer (``waiver-missing-justification``);
* a rule id that is not in the :data:`~repro.checks.findings.RULES`
  registry (``waiver-unknown-rule``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from .findings import Finding, RULES

_WAIVER_RE = re.compile(r"#\s*repro-check:\s*disable=([\w,\-]+)")
_JUSTIFICATION_RE = re.compile(r"--\s*(\S.*)")


def scan_waivers(display_path: str, lines: List[str]
                 ) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Parse waiver comments from one file's source lines.

    Returns ``(suppressions, findings)`` where ``suppressions`` maps a
    1-based line number to the rule ids waived there, and ``findings``
    are the violations of the waiver syntax itself.
    """
    suppressions: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        remainder = line[match.end():]
        justification = _JUSTIFICATION_RE.search(remainder)
        valid = True
        if justification is None:
            findings.append(Finding(
                display_path, lineno, "waiver-missing-justification",
                f"waiver for {','.join(rules)} has no "
                "`-- <justification>` trailer and is ignored",
            ))
            valid = False
        unknown = [r for r in rules if r not in RULES]
        for rule in unknown:
            findings.append(Finding(
                display_path, lineno, "waiver-unknown-rule",
                f"waiver names unknown rule {rule!r}",
            ))
        known = [r for r in rules if r in RULES]
        if valid and known:
            for covered in (lineno, lineno + 1):
                suppressions.setdefault(covered, set()).update(known)
    return suppressions, findings


def apply_waivers(findings: List[Finding],
                  suppressions_by_path: Dict[str, Dict[int, Set[str]]]
                  ) -> List[Finding]:
    """Drop findings covered by a valid waiver on/above their line."""
    kept: List[Finding] = []
    for finding in findings:
        waived = suppressions_by_path.get(finding.path, {})
        if finding.rule in waived.get(finding.line, ()):
            continue
        kept.append(finding)
    return kept
