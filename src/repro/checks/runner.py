"""Driver for ``python -m repro check``: build the index, run the
passes, apply waivers, and self-test against the seeded fixtures.

Every source file is parsed exactly once (into the shared
:class:`~repro.checks.astutils.ProjectIndex`) and every pass runs over
that one index; ``--verbose`` prints a per-pass timing line so a pass
that regresses the gate's speed is visible."""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .astutils import ProjectIndex, iter_py_files, load_module
from .concurrency import check_lock_discipline
from .conformance import check_conformance
from .determinism import check_determinism
from .findings import Finding
from .ordering import check_lock_ordering
from .snapshots import check_snapshots
from .symmetry import check_symmetry
from .waivers import apply_waivers, scan_waivers
from .wireproto import check_wire_protocol

#: directories never scanned by the default run: the fixtures contain
#: violations on purpose, and the checker does not lint itself.
EXCLUDED_DIRS = ("checks", "fixtures", "__pycache__")


def default_root() -> Path:
    """The ``src/repro`` package directory this module lives in."""
    return Path(__file__).resolve().parents[1]


def fixtures_root() -> Path:
    return Path(__file__).resolve().parent / "fixtures"


def build_index(root: Optional[Path] = None,
                paths: Optional[Sequence[Path]] = None,
                exclude: Sequence[str] = EXCLUDED_DIRS) -> ProjectIndex:
    root = root or default_root()
    if paths is None:
        paths = iter_py_files(root, exclude)
    return ProjectIndex([load_module(p, root) for p in paths])


def run_passes(index: ProjectIndex,
               assume_sim: bool = False,
               timings: Optional[List[Tuple[str, float]]] = None
               ) -> List[Finding]:
    passes: List[Tuple[str, Callable[[], List[Finding]]]] = [
        ("determinism",
         lambda: check_determinism(index, assume_sim=assume_sim)),
        ("snapshots", lambda: check_snapshots(index)),
        ("symmetry", lambda: check_symmetry(index)),
        ("conformance", lambda: check_conformance(index)),
        ("lock-discipline", lambda: check_lock_discipline(index)),
        ("lock-ordering", lambda: check_lock_ordering(index)),
        ("wire-protocol", lambda: check_wire_protocol(index)),
    ]
    findings: List[Finding] = []
    for name, run in passes:
        started = time.perf_counter()
        findings.extend(run())
        if timings is not None:
            timings.append((name, time.perf_counter() - started))

    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for module in index.modules.values():
        waived, waiver_findings = scan_waivers(module.display, module.lines)
        suppressions[module.display] = waived
        findings.extend(waiver_findings)
    return sorted(apply_waivers(findings, suppressions))


def collect_findings(root: Optional[Path] = None,
                     paths: Optional[Sequence[Path]] = None,
                     assume_sim: bool = False,
                     timings: Optional[List[Tuple[str, float]]] = None
                     ) -> List[Finding]:
    """The whole checker: every pass over the tree (or given files)."""
    started = time.perf_counter()
    index = build_index(root=root, paths=paths)
    if timings is not None:
        timings.append(("parse+index", time.perf_counter() - started))
    return run_passes(index, assume_sim=assume_sim, timings=timings)


# -- self-test against the seeded fixtures ---------------------------------------

_EXPECT_RE = re.compile(r"#\s*expect:\s*([\w,\- ]+)")


def _expected_findings(index: ProjectIndex) -> Set[Tuple[str, int, str]]:
    expected: Set[Tuple[str, int, str]] = set()
    for module in index.modules.values():
        for lineno, line in enumerate(module.lines, start=1):
            match = _EXPECT_RE.search(line)
            if match is None:
                continue
            for rule in match.group(1).split(","):
                rule = rule.strip()
                if rule:
                    expected.add((module.path.name, lineno, rule))
    return expected


def run_selftest() -> Tuple[bool, List[str]]:
    """Check the fixture files and compare against their ``# expect:``
    annotations — exact (file, line, rule) triples, no extras allowed."""
    root = fixtures_root()
    paths = iter_py_files(root, ("__pycache__",))
    index = ProjectIndex([load_module(p, root) for p in paths])
    findings = run_passes(index, assume_sim=True)
    triples = [(Path(f.path).name, f.line, f.rule) for f in findings]
    actual = set(triples)
    expected = _expected_findings(index)

    report: List[str] = []
    duplicates = sorted(t for t in actual if triples.count(t) > 1)
    for name, line, rule in duplicates:
        report.append(f"DUPLICATE  {name}:{line}: [{rule}] "
                      "reported more than once")
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for name, line, rule in missing:
        report.append(f"MISSING    {name}:{line}: [{rule}] "
                      "expected but not reported")
    for name, line, rule in unexpected:
        report.append(f"UNEXPECTED {name}:{line}: [{rule}] "
                      "reported but not expected")
    ok = not missing and not unexpected and not duplicates
    detail = (f"{len(missing)} missing, {len(unexpected)} unexpected, "
              f"{len(duplicates)} duplicated")
    report.append(
        f"selftest: {len(expected)} expected findings over "
        f"{len(paths)} fixture files -> {'OK' if ok else detail}"
    )
    return ok, report
