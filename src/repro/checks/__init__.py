"""``repro.checks`` — the AST-based static-analysis gate.

Seven passes over ``src/repro/`` prove the invariants the sweep cache,
warm-state sharing and the distributed layer depend on:

1. determinism lint (no ambient randomness/clock/hash-seed sensitivity),
2. snapshot completeness (every warm-path mutation captured or
   allowlisted),
3. counter symmetry (warm twins mutate the same functional state as
   their counted counterparts),
4. scheme-API conformance (registry classes implement the full
   ``TimingScheme`` surface; no cross-module private calls),
5. lock discipline (thread-shared mutable attributes only touched under
   the lock that owns them),
6. lock ordering (no acquisition cycles, no blocking calls under a
   lock, no unjoined threads),
7. wire-protocol conformance (client request builders vs server
   handlers: endpoints, verbs, payload fields, status codes, and
   ``*_to_dict``/``*_from_dict`` symmetry).

The :mod:`.tsan` module is the runtime twin of passes 5–6: with
``REPRO_TSAN=1`` the sweep engine's locks are instrumented and guard /
ordering violations are recorded while the real test suite runs.

Run it with ``python -m repro check``; see ``docs/static_analysis.md``.
"""

from .baseline import diff_baseline, load_baseline, record_baseline
from .concurrency import build_class_model, check_lock_discipline
from .conformance import check_conformance
from .determinism import SIM_SCOPES, check_determinism
from .findings import Finding, RULES, format_findings
from .ordering import check_lock_ordering
from .runner import (
    build_index, collect_findings, default_root, fixtures_root,
    run_passes, run_selftest,
)
from .snapshots import SNAPSHOT_ALLOWLIST, check_snapshots
from .symmetry import COUNTER_ATTRS, check_symmetry
from .waivers import apply_waivers, scan_waivers
from .wireproto import check_wire_protocol

__all__ = [
    "COUNTER_ATTRS",
    "Finding",
    "RULES",
    "SIM_SCOPES",
    "SNAPSHOT_ALLOWLIST",
    "apply_waivers",
    "build_class_model",
    "build_index",
    "check_conformance",
    "check_determinism",
    "check_lock_discipline",
    "check_lock_ordering",
    "check_snapshots",
    "check_symmetry",
    "check_wire_protocol",
    "collect_findings",
    "default_root",
    "diff_baseline",
    "fixtures_root",
    "format_findings",
    "load_baseline",
    "record_baseline",
    "run_passes",
    "run_selftest",
    "scan_waivers",
]
