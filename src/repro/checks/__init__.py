"""``repro.checks`` — the AST-based static-analysis gate.

Four passes over ``src/repro/`` prove the invariants the sweep cache
and warm-state sharing depend on:

1. determinism lint (no ambient randomness/clock/hash-seed sensitivity),
2. snapshot completeness (every warm-path mutation captured or
   allowlisted),
3. counter symmetry (warm twins mutate the same functional state as
   their counted counterparts),
4. scheme-API conformance (registry classes implement the full
   ``TimingScheme`` surface; no cross-module private calls).

Run it with ``python -m repro check``; see ``docs/static_analysis.md``.
"""

from .conformance import check_conformance
from .determinism import SIM_SCOPES, check_determinism
from .findings import Finding, RULES, format_findings
from .runner import (
    build_index, collect_findings, default_root, fixtures_root,
    run_passes, run_selftest,
)
from .snapshots import SNAPSHOT_ALLOWLIST, check_snapshots
from .symmetry import COUNTER_ATTRS, check_symmetry
from .waivers import apply_waivers, scan_waivers

__all__ = [
    "COUNTER_ATTRS",
    "Finding",
    "RULES",
    "SIM_SCOPES",
    "SNAPSHOT_ALLOWLIST",
    "apply_waivers",
    "build_index",
    "check_conformance",
    "check_determinism",
    "check_snapshots",
    "check_symmetry",
    "collect_findings",
    "default_root",
    "fixtures_root",
    "format_findings",
    "run_passes",
    "run_selftest",
    "scan_waivers",
]
