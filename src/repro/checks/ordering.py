"""Lock-ordering / deadlock lint over the may-acquire graph.

Built on the per-class concurrency model from :mod:`.concurrency`, this
pass hunts the three ways the distributed layer could stop making
progress rather than compute the wrong answer:

* ``lock-order-cycle`` — two locks ever acquired in opposite orders
  (classic ABBA deadlock), or a non-reentrant ``threading.Lock``
  re-acquired through a same-class call chain (instant self-deadlock:
  the thread waits on itself).  Edges come from nested ``with`` blocks
  *and* from calls made while holding a lock, closed transitively over
  same-class methods, so ``seed() -> with self._a: self._helper()``
  where ``_helper`` takes ``self._b`` contributes an ``_a -> _b`` edge.
* ``lock-blocking-call`` — a blocking operation (HTTP round trip,
  ``time.sleep``, ``subprocess``, a thread ``join`` or event ``wait``)
  reached while a lock is held.  One slow peer then stalls every thread
  that needs the lock — the precise failure mode the lease board's
  "snapshot under the lock, do I/O outside it" structure exists to
  avoid, so regressions should fail CI.
* ``thread-unjoined`` — a thread started but never joined: ``self.X``
  threads with a ``start()`` but no ``join`` anywhere in the class, and
  function-local threads that neither join nor escape the function
  (escaping threads are someone else's to join, like the worker handles
  the dispatch tests hold on to).

Scope note: the acquire graph is per *class*.  Cross-object chains
(a ``LeaseBoard`` method calling into a ``DirectoryStore`` that takes
its own lock) are invisible to name-based static analysis; the
``REPRO_TSAN=1`` sanitizer (:mod:`.tsan`) checks exactly those at
runtime with a global acquisition-order graph.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .astutils import ModuleInfo, ProjectIndex
from .concurrency import (
    ClassModel,
    MethodFacts,
    _sync_kind,
    build_class_model,
)
from .findings import Finding

#: sync kinds whose ``.join`` blocks (threads) / whose ``.wait`` blocks.
_JOINABLE = frozenset({"Thread", "Timer"})
_WAITABLE = frozenset({"Event", "Condition", "Barrier", "Semaphore",
                       "BoundedSemaphore"})


def _resolved_blocking(model: ClassModel, what: str) -> Optional[str]:
    """A walker blocking tag -> human description, or None if benign.

    ``join``/``wait`` tags carry their receiver attribute
    (``join@_thread``); they only block when the attribute is a
    thread/event, which keeps ``self.sep.join(...)`` quiet.
    """
    base, _, attr = what.partition("@")
    if not attr:
        return base
    kind = model.sync_attrs.get(attr)
    if base == "join":
        return f"self.{attr}.join" if kind in _JOINABLE else None
    if base == "wait":
        return f"self.{attr}.wait" if kind in _WAITABLE else None
    return f"self.{attr}.{base}"


def _acquire_closure(model: ClassModel) -> Dict[str, Set[str]]:
    """Method -> locks it may acquire, transitively over own calls."""
    closure: Dict[str, Set[str]] = {
        name: {acquire.lock for acquire in facts.acquires}
        for name, facts in model.facts.items()
    }
    for _ in range(len(closure) + 1):
        changed = False
        for name, facts in model.facts.items():
            for call in facts.calls:
                extra = closure.get(call.callee, set()) - closure[name]
                if extra:
                    closure[name] |= extra
                    changed = True
        if not changed:
            break
    return closure


def _blocking_closure(model: ClassModel) -> Dict[str, Optional[str]]:
    """Method -> one blocking op it may reach (transitively), if any."""
    closure: Dict[str, Optional[str]] = {}
    for name, facts in model.facts.items():
        closure[name] = next(
            (resolved for event in facts.blocking
             if (resolved := _resolved_blocking(model, event.what))),
            None)
    for _ in range(len(closure) + 1):
        changed = False
        for name, facts in model.facts.items():
            if closure[name] is not None:
                continue
            for call in facts.calls:
                reached = closure.get(call.callee)
                if reached is not None:
                    closure[name] = f"{reached} (via self.{call.callee})"
                    changed = True
                    break
        if not changed:
            break
    return closure


def _reachable(edges: Dict[str, Set[str]], start: str, goal: str) -> bool:
    seen: Set[str] = set()
    queue = [start]
    while queue:
        node = queue.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        queue.extend(edges.get(node, ()))
    return False


def check_lock_ordering(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for cls in index.classes():
        model = build_class_model(index, cls)
        if model.handler_class:
            continue
        _check_class(index, model, findings, seen)
    findings.extend(_check_unjoined(index))
    return sorted(set(findings))


def _check_class(index: ProjectIndex, model: ClassModel,
                 findings: List[Finding],
                 seen: Set[Tuple[str, int, str]]) -> None:
    if not model.lock_attrs and not any(
            facts.blocking for facts in model.facts.values()):
        return
    acquire_closure = _acquire_closure(model)
    blocking_closure = _blocking_closure(model)

    #: lock -> lock edges with the sites that witness them.
    edges: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}

    def edge(held: FrozenSet[str], lock: str, method: str, line: int,
             how: str) -> None:
        for outer in held:
            if outer == lock:
                continue
            edges.setdefault(outer, set()).add(lock)
            sites.setdefault((outer, lock), []).append((method, line, how))

    def emit(module: ModuleInfo, line: int, rule: str, msg: str) -> None:
        key = (module.display, line, rule)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(module.display, line, rule, msg))

    for name, facts in model.facts.items():
        module, _fn = model.defined_in[name]
        entry = model.entry_held.get(name, frozenset())
        for acquire in facts.acquires:
            held = acquire.held | entry
            edge(held, acquire.lock, name, acquire.line, "nested with")
            if acquire.lock in held \
                    and not model.reentrant(acquire.lock):
                emit(module, acquire.line, "lock-order-cycle",
                     f"non-reentrant `self.{acquire.lock}` re-acquired "
                     f"while already held in `{name}` "
                     f"({model.cls.name}); the thread deadlocks on "
                     f"itself — use threading.RLock or restructure")
        for call in facts.calls:
            held = call.held | entry
            if not held:
                continue
            for lock in acquire_closure.get(call.callee, ()):
                edge(held, lock, name, call.line,
                     f"call to self.{call.callee}")
                if lock in held and not model.reentrant(lock):
                    emit(module, call.line, "lock-order-cycle",
                         f"`self.{call.callee}` re-acquires non-"
                         f"reentrant `self.{lock}` already held at "
                         f"this call site in `{name}` "
                         f"({model.cls.name})")
        for event in facts.blocking:
            held = event.held | entry
            if not held:
                continue
            resolved = _resolved_blocking(model, event.what)
            if resolved is None:
                continue
            module, _fn = model.defined_in[name]
            emit(module, event.line, "lock-blocking-call",
                 f"blocking `{resolved}` while holding "
                 f"{_names(held)} in `{name}` ({model.cls.name}); "
                 f"move the I/O outside the lock")
        # blocking reached through a call made under a lock
        for call in facts.calls:
            held = call.held | entry
            if not held:
                continue
            reached = blocking_closure.get(call.callee)
            # only the *callee's* blocking matters here; its direct
            # events were reported above if this method has any
            if reached is not None:
                emit(module, call.line, "lock-blocking-call",
                     f"`self.{call.callee}` can block ({reached}) and "
                     f"is called holding {_names(held)} in `{name}` "
                     f"({model.cls.name})")

    # ABBA: an edge that its reverse direction can also witness
    for (outer, inner), witnesses in sorted(sites.items()):
        if _reachable(edges, inner, outer):
            for method, line, how in witnesses:
                module, _fn = model.defined_in[method]
                emit(module, line, "lock-order-cycle",
                     f"`self.{outer}` -> `self.{inner}` ({how} in "
                     f"`{method}`, {model.cls.name}) participates in an "
                     f"acquisition cycle: the opposite order is also "
                     f"taken, so two threads can deadlock")


def _names(locks: FrozenSet[str]) -> str:
    return " / ".join(f"`self.{name}`" for name in sorted(locks))


# -- unjoined threads ------------------------------------------------------


def _is_start_of(node: ast.Call, attr: str) -> bool:
    func = node.func
    return (isinstance(func, ast.Attribute) and func.attr == "start"
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and func.value.attr == attr)


def _check_unjoined(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in index.modules.values():
        # self-attr threads: started in some method, joined in none
        for cls in module.classes.values():
            model = build_class_model(index, cls)
            thread_attrs = {attr for attr, kind in model.sync_attrs.items()
                            if kind in _JOINABLE}
            for attr in sorted(thread_attrs):
                start_line: Optional[int] = None
                joined = False
                for name, (mod, fn) in model.defined_in.items():
                    for node in ast.walk(fn):
                        if isinstance(node, ast.Call) \
                                and _is_start_of(node, attr):
                            start_line = start_line or node.lineno
                        if (isinstance(node, ast.Attribute)
                                and node.attr == "join"
                                and isinstance(node.value, ast.Attribute)
                                and isinstance(node.value.value, ast.Name)
                                and node.value.value.id == "self"
                                and node.value.attr == attr):
                            joined = True
                if start_line is not None and not joined:
                    findings.append(Finding(
                        module.display, start_line, "thread-unjoined",
                        f"`self.{attr}` ({cls.name}) is started but no "
                        f"method ever joins it; give shutdown a join "
                        f"path"))
        # function-local threads that neither join nor escape
        for fn in _all_functions(module.tree):
            findings.extend(_local_unjoined(module, fn))
    return findings


def _all_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [node for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)]


def _local_unjoined(module: ModuleInfo,
                    fn: ast.FunctionDef) -> List[Finding]:
    findings: List[Finding] = []
    threads: Dict[str, int] = {}      # local name -> construction line
    started: Dict[str, int] = {}      # local name -> start() line
    joined: Set[str] = set()
    escaped: Set[str] = set()

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _sync_kind(module, node.value) in _JOINABLE:
            threads[node.targets[0].id] = node.lineno
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name):
                if func.attr == "start":
                    started.setdefault(func.value.id, node.lineno)
                elif func.attr == "join":
                    joined.add(func.value.id)
            # anonymous `threading.Thread(...).start()` can never join
            if isinstance(func, ast.Attribute) and func.attr == "start" \
                    and _sync_kind(module, func.value) in _JOINABLE:
                findings.append(Finding(
                    module.display, node.lineno, "thread-unjoined",
                    f"thread constructed and started in one expression "
                    f"in `{fn.name}`; nothing can ever join it"))
            # a thread passed to another call escapes this function
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in threads \
                        and not (isinstance(func, ast.Attribute)
                                 and func.value is arg):
                    escaped.add(arg.id)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            for name in _names_in(value):
                escaped.add(name)
        elif isinstance(node, ast.Assign):
            # stored into an attribute/subscript/container: escapes
            if any(not isinstance(t, ast.Name) for t in node.targets):
                for name in _names_in(node.value):
                    escaped.add(name)
        elif isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            for name in _names_in(node):
                if name in threads:
                    escaped.add(name)

    for name, line in started.items():
        if name in threads and name not in joined and name not in escaped:
            findings.append(Finding(
                module.display, threads[name], "thread-unjoined",
                f"local thread `{name}` in `{fn.name}` is started but "
                f"never joined and never escapes the function; it "
                f"outlives (or hangs) the caller"))
    return findings


def _names_in(node: Optional[ast.AST]) -> Set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
