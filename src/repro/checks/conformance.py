"""Scheme-API conformance — pass 4 of ``python -m repro check``.

The five schemes are interchangeable behind ``TimingScheme``: the
hierarchy calls the same surface on all of them, and the sweep engine
registers them in the ``_SCHEMES`` dict of ``repro.schemes``.  The pass
verifies three things:

* every registered scheme resolves each public ``TimingScheme`` method
  to a concrete (non-``NotImplementedError``) definition somewhere in
  its MRO (``api-missing-method``);
* overrides keep the base signature — argument names, kinds, and
  default counts (``api-signature-mismatch``), so call sites using
  keywords cannot break under one scheme only;
* single-underscore methods/functions are not called across module
  boundaries (``api-private-crossmodule``) — privates are free to churn
  precisely because nothing outside their module may depend on them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .astutils import ClassInfo, ModuleInfo, ProjectIndex
from .findings import Finding

_BASE_CLASS = "TimingScheme"
_REGISTRY_NAME = "_SCHEMES"


def _registry_classes(index: ProjectIndex
                      ) -> List[Tuple[ModuleInfo, int, ClassInfo]]:
    """Classes named as values of a top-level ``_SCHEMES = {...}``."""
    out: List[Tuple[ModuleInfo, int, ClassInfo]] = []
    for module in index.modules.values():
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if _REGISTRY_NAME not in targets:
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            for value in node.value.values:
                if isinstance(value, ast.Name):
                    cls = index.resolve_class(value.id, module)
                    if cls is not None:
                        out.append((module, value.lineno, cls))
    return out


def _is_abstract(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name == "NotImplementedError":
                return True
    return False


def _signature(fn: ast.FunctionDef):
    args = fn.args
    return (
        tuple(a.arg for a in args.posonlyargs),
        tuple(a.arg for a in args.args),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        args.kwarg.arg if args.kwarg else None,
        len(args.defaults),
        sum(1 for d in args.kw_defaults if d is not None),
    )


def _check_registry(index: ProjectIndex,
                    findings: List[Finding]) -> None:
    base_cls = index.resolve_class(_BASE_CLASS)
    entries = _registry_classes(index)
    if base_cls is None or not entries:
        return
    required = {
        name: fn for name, fn in base_cls.methods.items()
        if not name.startswith("_")
    }
    base_init = base_cls.methods.get("__init__")
    for module, _line, cls in entries:
        mro = index.mro(cls)
        if base_cls not in mro:
            findings.append(Finding(
                cls.module.display, cls.node.lineno, "api-missing-method",
                f"{cls.name} is registered in {_REGISTRY_NAME} but does "
                f"not derive from {_BASE_CLASS}",
            ))
            continue
        for name, base_fn in sorted(required.items()):
            found = index.find_method(cls, name)
            if found is None or _is_abstract(found[1]):
                findings.append(Finding(
                    cls.module.display, cls.node.lineno,
                    "api-missing-method",
                    f"{cls.name} does not implement "
                    f"{_BASE_CLASS}.{name} (missing or still "
                    "NotImplementedError)",
                ))
                continue
            owner, fn = found
            if owner is base_cls:
                continue
            if _signature(fn) != _signature(base_fn):
                findings.append(Finding(
                    owner.module.display, fn.lineno,
                    "api-signature-mismatch",
                    f"{owner.name}.{name} signature differs from "
                    f"{_BASE_CLASS}.{name}",
                ))
        # __init__ must stay compatible too: the registry constructs
        # every scheme through one call site
        if base_init is not None:
            found = index.find_method(cls, "__init__")
            if found is not None and found[0] is not base_cls:
                owner, fn = found
                if _signature(fn) != _signature(base_init):
                    findings.append(Finding(
                        owner.module.display, fn.lineno,
                        "api-signature-mismatch",
                        f"{owner.name}.__init__ signature differs from "
                        f"{_BASE_CLASS}.__init__",
                    ))


def _private_definitions(index: ProjectIndex) -> Dict[str, Set[str]]:
    """name -> modules defining a single-underscore method/function."""
    defs: Dict[str, Set[str]] = {}
    for module in index.modules.values():
        for node in module.tree.body:
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_private(node.name)):
                defs.setdefault(node.name, set()).add(module.relkey)
        for cls in module.classes.values():
            for name in cls.methods:
                if _is_private(name):
                    defs.setdefault(name, set()).add(module.relkey)
    return defs


def _is_private(name: str) -> bool:
    return (name.startswith("_") and not name.startswith("__")
            and not name.endswith("__"))


def _check_private_calls(index: ProjectIndex,
                         findings: List[Finding]) -> None:
    defs = _private_definitions(index)
    for module in index.modules.values():
        local_privates = {
            name for name, modules in defs.items()
            if module.relkey in modules
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not _is_private(func.attr):
                continue
            receiver = func.value
            if (isinstance(receiver, ast.Name)
                    and receiver.id in {"self", "cls"}):
                continue
            if func.attr not in defs:
                continue  # unknown private (stdlib etc.): skip
            if func.attr in local_privates:
                continue  # defined in this module: in-module use is fine
            origins = ", ".join(sorted(defs[func.attr]))
            findings.append(Finding(
                module.display, node.lineno, "api-private-crossmodule",
                f"call to underscore-private {func.attr!r} (defined in "
                f"{origins}) across a module boundary",
            ))


def check_conformance(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    _check_registry(index, findings)
    _check_private_calls(index, findings)
    return findings
