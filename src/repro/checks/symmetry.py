"""Counter-symmetry checker — pass 3 of ``python -m repro check``.

Packed warm-up replays through counter-free twins of the hot-path
methods: ``warm_access``/``access``, ``warm_fill``/``fill``,
``_warm_l1_miss``/``_l1_miss``, ...  The twins exist purely to skip
statistics bookkeeping, so they must perform the *same functional state
transitions* as their counted counterparts — otherwise a warmed cache is
not the cache the measured run would have produced, and the packed-warm
and object-warm paths silently diverge.

The same discipline covers the packed *measured* path: ``run_packed``
must drive the hierarchy and core state exactly like ``run``, and
``take_packed`` must advance the generator exactly like ``take`` —
anything less and the packed fast path stops being bit-identical to the
object oracle.

The pass pairs methods by naming convention (``warm_X`` ↔ ``X``,
``_warm_X`` ↔ ``_X``, ``X_packed`` ↔ ``X`` — which also pairs the
``warm_packed`` ↔ ``warm`` orchestrators — and the kernel-backend twins
``X_vec`` / ``X_batched`` ↔ ``X_packed``, falling back to ``X``; a
method without a twin is skipped), computes each side's
mutated-attribute set over its same-class call closure, subtracts the
declared counter attributes, and flags any remaining difference.
"""

from __future__ import annotations

from typing import List

from .astutils import ProjectIndex, closure_mutations
from .findings import Finding

#: statistics-only attributes the counted path may touch and the warm
#: path may not (or vice versa) without breaking functional symmetry.
COUNTER_ATTRS = frozenset({"stats", "_counters", "_kind_keys"})


def _twin_names(name: str) -> List[str]:
    """Candidate counted-twin names for ``name``, most specific first.

    ``warm_access`` pairs with ``access``; ``_warm_l1_miss`` with
    ``_l1_miss``; ``run_packed``/``take_packed`` with ``run``/``take``.
    ``warm_packed`` yields both ``packed`` (via the prefix rule) and
    ``warm`` (via the suffix rule) — whichever exists on the class wins.
    The vectorized kernel twins ``run_vec``/``access_batched`` pair with
    their packed oracle first (``run_packed``/``access_packed``), then
    with the plain counted method (``run``/``access``): the whole
    backend chain must drive the same functional state.
    """
    candidates: List[str] = []
    if name.startswith("warm_"):
        candidates.append(name[len("warm_"):])
    elif name.startswith("_warm_"):
        candidates.append("_" + name[len("_warm_"):])
    if name.endswith("_packed") and len(name) > len("_packed"):
        candidates.append(name[:-len("_packed")])
    for suffix in ("_vec", "_batched"):
        if name.endswith(suffix) and len(name) > len(suffix):
            base = name[:-len(suffix)]
            candidates.extend((base + "_packed", base))
    return [c for c in candidates if c and c != name]


def check_symmetry(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for cls in index.classes():
        # pair only methods defined directly on this class: inherited
        # pairs are checked on the defining class
        for warm_name, warm_fn in sorted(cls.methods.items()):
            twin = next((c for c in _twin_names(warm_name)
                         if index.find_method(cls, c) is not None), "")
            if not twin:
                continue  # orchestrator without a counted twin
            warm_set = set(closure_mutations(index, cls, [warm_name]))
            counted_set = set(closure_mutations(index, cls, [twin]))
            warm_only = sorted((warm_set - counted_set) - COUNTER_ATTRS)
            counted_only = sorted((counted_set - warm_set) - COUNTER_ATTRS)
            if not warm_only and not counted_only:
                continue
            details = []
            if counted_only:
                details.append(
                    f"{twin} also mutates {{{', '.join(counted_only)}}}")
            if warm_only:
                details.append(
                    f"{warm_name} also mutates {{{', '.join(warm_only)}}}")
            findings.append(Finding(
                cls.module.display, warm_fn.lineno, "sym-counter-asymmetry",
                f"{cls.name}.{warm_name} and {cls.name}.{twin} mutate "
                f"different functional state: {'; '.join(details)} "
                "(beyond the declared counter attributes)",
            ))
    return findings
